"""bench/clients.py: batching-factor sweep schema, scaling law, smoke."""

import pytest

from repro.bench.clients import (
    CLIENT_BENCH_PATH,
    CLIENT_SWEEP_FACTORS,
    SMOKE_SCALING_FLOOR,
    SWEEP_SCALING_FLOOR,
    client_point,
    client_sweep,
    load_committed,
    smoke,
)

ROW_KEYS = {
    "batch_requests", "n", "overlay", "rounds", "warmup_rounds",
    "request_nbytes", "message_nbytes", "requests_submitted",
    "requests_resolved", "batches_flushed", "measured_requests",
    "measured_time_s", "request_rate", "round_time_s", "events", "wall_s",
}


class TestClientPoint:
    def test_row_schema_and_sanity(self):
        row = client_point(4, rounds=6)
        assert ROW_KEYS <= set(row)
        assert row["batch_requests"] == 4 and row["n"] == 8
        # one closed-loop session per server, window 4: each measured
        # round carries exactly n x b requests
        assert row["measured_requests"] == 8 * 4 * (6 - 2)
        assert row["request_rate"] > 0 and row["round_time_s"] > 0
        # one batch message per origin per round
        assert row["batches_flushed"] == 8 * 6

    def test_deterministic_in_virtual_time(self):
        a = client_point(8, rounds=5)
        b = client_point(8, rounds=5)
        for key in ROW_KEYS - {"wall_s"}:
            assert a[key] == b[key], key

    def test_validation(self):
        with pytest.raises(ValueError):
            client_point(0)
        with pytest.raises(ValueError):
            client_point(1, rounds=2, warmup_rounds=2)


class TestClientSweep:
    def test_batching_scales_throughput(self):
        payload = client_sweep(factors=(1, 16), path=None)
        scaling = payload["summary"]["b=16"]["scaling_vs_b1"]
        # packing 16x the requests into one message must buy close to
        # 16x the rate (round time is latency-dominated at this size)
        assert scaling > 8.0
        assert payload["rows"][0]["request_rate"] > 0

    def test_committed_file_meets_the_acceptance_bar(self):
        committed = load_committed(CLIENT_BENCH_PATH)
        assert committed is not None, \
            "BENCH_clients.json missing; run python -m repro.bench.clients --sweep"
        assert committed["factors"] == sorted(CLIENT_SWEEP_FACTORS)
        assert committed["scaling_floor"] == SWEEP_SCALING_FLOOR
        assert committed["scaling_ok"] is True
        assert committed["scaling_max_vs_b1"] >= SWEEP_SCALING_FLOOR
        for row in committed["rows"]:
            assert ROW_KEYS <= set(row)

    def test_committed_rows_match_fresh_runs(self):
        """Virtual time is deterministic: re-running a committed factor
        must reproduce its rate exactly (guards silent model drift)."""
        committed = load_committed(CLIENT_BENCH_PATH)
        assert committed is not None
        row = committed["rows"][0]
        fresh = client_point(row["batch_requests"], rounds=row["rounds"],
                             warmup_rounds=row["warmup_rounds"])
        assert fresh["request_rate"] == pytest.approx(row["request_rate"])


class TestSmoke:
    def test_smoke_passes_and_reports(self):
        result = smoke(cap_wall_s=120.0)
        assert result["ok"], result
        assert result["scaling"] >= SMOKE_SCALING_FLOOR
        assert result["b1_request_rate"] > 0
