"""The million-session ingress sweep: row schema, dirty-set scaling
evidence, and the committed trajectory's acceptance bar."""

import pytest

from repro.bench.ingress import (
    DIRTY_ACTIVE,
    DIRTY_COST_CEILING,
    DIRTY_TOTAL,
    INGRESS_BENCH_PATH,
    SWEEP_SESSION_COUNTS,
    _percentile,
    ingress_point,
    load_committed,
)

ROW_KEYS = {
    "backend", "num_sessions", "active_sessions", "request_rate",
    "flush_s_per_round", "latency_rounds_p50", "latency_rounds_p99",
    "latency_s_p50", "latency_s_p99", "measured_requests", "wall_s",
}


class TestPercentile:
    def test_nearest_rank(self):
        samples = list(range(1, 101))
        assert _percentile(samples, 0.50) == 50
        assert _percentile(samples, 0.99) == 99
        assert _percentile([7], 0.99) == 7
        assert _percentile([], 0.5) is None


class TestIngressPoint:
    def test_row_schema_and_closed_loop_accounting(self):
        row = ingress_point(40, active=20, steps=3, warmup_steps=1)
        assert ROW_KEYS <= set(row)
        assert row["num_sessions"] == 40 and row["active_sessions"] == 20
        # window=1 closed loop: every step's submissions resolve in-step
        assert row["requests_resolved"] == row["requests_submitted"]
        assert row["measured_requests"] > 0
        assert row["latency_samples"] == row["measured_requests"]
        assert row["latency_rounds_p50"] >= 1
        assert row["flush_calls"] == 2
        assert row["request_rate"] > 0

    def test_idle_sessions_do_not_change_the_agreed_stream(self):
        """Deterministic in virtual time: the active population's agreed
        request count and rate are identical whether or not idle rows
        pad the session table."""
        busy = ingress_point(30, steps=3, warmup_steps=1)
        padded = ingress_point(300, active=30, steps=3, warmup_steps=1)
        assert padded["measured_requests"] == busy["measured_requests"]
        assert padded["request_rate"] == pytest.approx(
            busy["request_rate"])

    def test_validation(self):
        with pytest.raises(ValueError):
            ingress_point(0)
        with pytest.raises(ValueError):
            ingress_point(10, active=11)
        with pytest.raises(ValueError):
            ingress_point(10, steps=2, warmup_steps=2)


class TestCommittedTrajectory:
    def test_committed_file_meets_the_acceptance_bar(self):
        committed = load_committed(INGRESS_BENCH_PATH)
        assert committed is not None, \
            "BENCH_ingress.json missing; run python -m repro.bench.ingress --sweep"
        assert committed["session_counts"] == sorted(SWEEP_SESSION_COUNTS)
        by_count = {row["num_sessions"]: row for row in committed["rows"]}
        # the headline row: C = 10^5 sustained, with latency percentiles
        top = by_count[100_000]
        assert top["requests_resolved"] >= 100_000
        assert top["latency_rounds_p50"] is not None
        assert top["latency_rounds_p99"] is not None
        assert top["latency_s_p99"] is not None
        # the dirty-set evidence: 10^5 total with 10^3 active costs about
        # the same per round as 10^3 all-active (within the 2x ceiling)
        verdict = committed["dirty_scaling"]
        assert verdict["total_sessions"] == DIRTY_TOTAL
        assert verdict["active_sessions"] == DIRTY_ACTIVE
        assert verdict["ceiling"] == DIRTY_COST_CEILING
        assert verdict["ratio"] <= verdict["ceiling"]
        assert verdict["ok"] is True
        # the real-runtime leg rode along
        assert committed["tcp_row"]["backend"] == "tcp"
        assert committed["tcp_row"]["requests_resolved"] > 0
