"""bench/shards.py: shard-scaling sweep schema, scaling law, smoke."""

import pytest

from repro.bench.shards import (
    SHARD_BENCH_PATH,
    SHARD_SWEEP_COUNTS,
    SMOKE_EFFICIENCY_FLOOR,
    load_committed,
    shard_point,
    shard_sweep,
    smoke,
)

ROW_KEYS = {
    "num_shards", "n_per_group", "overlay_per_shard", "total_servers",
    "rounds", "max_batch", "distribution", "num_keys",
    "requests_submitted", "requests_delivered", "per_shard_request_rate",
    "aggregate_request_rate", "sim_time_s", "events", "wall_s", "seed",
}


class TestShardPoint:
    def test_row_schema_and_sanity(self):
        row = shard_point(2, rounds=6)
        assert ROW_KEYS <= set(row)
        assert row["num_shards"] == 2
        assert row["total_servers"] == 16
        assert len(row["per_shard_request_rate"]) == 2
        assert all(r > 0 for r in row["per_shard_request_rate"])
        assert row["aggregate_request_rate"] == \
            pytest.approx(sum(row["per_shard_request_rate"]))
        assert row["requests_delivered"] > 0
        assert row["events"] > 0 and row["sim_time_s"] > 0

    def test_deterministic(self):
        a = shard_point(2, rounds=5, seed=3)
        b = shard_point(2, rounds=5, seed=3)
        for key in ROW_KEYS - {"wall_s"}:
            assert a[key] == b[key], key

    def test_zipf_distribution_also_runs(self):
        row = shard_point(2, rounds=4, distribution="zipf")
        assert row["distribution"] == "zipf"
        assert row["aggregate_request_rate"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_point(0)


class TestShardSweep:
    def test_scaling_is_near_linear(self):
        payload = shard_sweep(counts=(1, 2), path=None, seed=1)
        eff = payload["summary"]["G=2"]["scaling_efficiency"]
        assert eff == pytest.approx(1.0, abs=0.1)
        assert payload["counts"] == [1, 2]
        assert len(payload["rows"]) == 2

    def test_committed_file_schema_and_scaling(self):
        committed = load_committed(SHARD_BENCH_PATH)
        assert committed is not None, \
            "BENCH_shards.json must be committed (python -m " \
            "repro.bench.shards --sweep)"
        assert committed["counts"] == list(SHARD_SWEEP_COUNTS)
        assert len(committed["rows"]) == len(SHARD_SWEEP_COUNTS)
        for row in committed["rows"]:
            assert ROW_KEYS <= set(row)
        for G in SHARD_SWEEP_COUNTS:
            eff = committed["summary"][f"G={G}"]["scaling_efficiency"]
            assert eff >= 0.9, \
                f"G={G} scaling efficiency {eff} is not near-linear"


class TestSmoke:
    def test_smoke_passes_on_current_tree(self):
        result = smoke(cap_wall_s=60.0)
        assert result["ok"], result
        assert result["scaling_efficiency"] >= SMOKE_EFFICIENCY_FLOOR
