"""bench/perf.py: schema, plumbing and floor-check logic."""

import json

import pytest

from repro.bench.perf import (
    PERF_BENCH_PATH,
    SMOKE_TOLERANCE,
    load_committed,
    perf_point,
    perf_sweep,
    smoke,
)

ROW_KEYS = {
    "n", "overlay", "degree", "transport", "workload", "pipeline_depth",
    "data_plane", "coalesce", "rounds", "wall_s", "events",
    "events_per_sec", "events_coalesced", "messages_sent", "sim_time_s",
    "median_latency_s", "steady_request_rate", "peak_rss_kib", "repeats",
}


class TestPerfPoint:
    def test_row_schema_and_sanity(self):
        row = perf_point(8, depth=1, rounds=3)
        assert ROW_KEYS <= set(row)
        assert row["n"] == 8
        assert row["overlay"].startswith("GS(8,")
        assert row["events"] > 0
        assert row["wall_s"] > 0
        assert row["events_per_sec"] > 0
        assert row["peak_rss_kib"] > 0
        assert row["steady_request_rate"] > 0
        assert row["data_plane"] == "bitmask"
        assert row["coalesce"] is True

    def test_legacy_configuration_runs(self):
        row = perf_point(8, depth=1, rounds=3, data_plane="set",
                         coalesce=False)
        assert row["data_plane"] == "set"
        assert row["coalesce"] is False
        assert row["events_coalesced"] == 0

    def test_coalescing_reduces_events(self):
        fast = perf_point(8, depth=1, rounds=4)
        slow = perf_point(8, depth=1, rounds=4, data_plane="set",
                          coalesce=False)
        assert fast["events_coalesced"] > 0
        assert fast["events"] < slow["events"]
        # both configurations agree on the protocol outcome up to the
        # documented coalescing refinement of receive-slot contention
        assert fast["steady_request_rate"] == \
            pytest.approx(slow["steady_request_rate"], rel=0.05)
        assert fast["median_latency_s"] > 0

    def test_pipeline_depth_recorded(self):
        row = perf_point(8, depth=2, rounds=4)
        assert row["pipeline_depth"] == 2

    def test_run_allconcur_data_plane_plumbing(self):
        """harness.run_allconcur exposes the same data-plane switches; the
        two planes agree on the protocol outcome."""
        from repro.bench.harness import run_allconcur

        fast = run_allconcur(8, rounds=4, batch_requests=16,
                             skip_rounds=1, seed=3)
        slow = run_allconcur(8, rounds=4, batch_requests=16,
                             skip_rounds=1, seed=3,
                             data_plane="set", coalesce=False)
        assert fast.rounds == slow.rounds
        # coalescing coarsens receive contention (documented in
        # sim/network.py), shifting timing metrics by up to ~10%
        assert fast.steady_request_rate == \
            pytest.approx(slow.steady_request_rate, rel=0.10)


class TestSweepAndSmoke:
    def test_mini_sweep_payload(self, tmp_path):
        path = str(tmp_path / "BENCH_perf.json")
        payload = perf_sweep(sizes=(8,), depths=(1,), path=path,
                             baseline_sizes=(8,),
                             reference={"depth1": {"pre_pr_wall_s": 1.0}})
        assert payload["sizes"] == [8]
        assert {r["data_plane"] for r in payload["rows"]} == \
            {"bitmask", "set"}
        assert "floors" in payload
        assert payload["floors"]["smoke_gs8_events_per_sec"] > 0
        with open(path) as fh:
            assert json.load(fh) == payload

    def test_committed_trajectory_has_speedup_claim(self):
        committed = load_committed(PERF_BENCH_PATH)
        assert committed is not None, "BENCH_perf.json must be committed"
        sizes = {row["n"] for row in committed["rows"]}
        # the scale sweep reaches beyond the figure modules' size limit
        assert {16, 32, 64, 128, 256} <= sizes
        anchor = committed["summary"]["GS(16,4)/fig8/depth1"]
        assert anchor["speedup_vs_pre_pr"] >= 5.0
        assert committed["floors"]["smoke_gs8_events_per_sec"] > 0

    def test_smoke_against_committed_floor(self):
        result = smoke(cap_wall_s=5.0)
        assert result["events"] > 0
        assert result["floor"] is not None
        assert result["ok"], (
            f"events/sec {result['events_per_sec']:,.0f} fell more than "
            f"{SMOKE_TOLERANCE:.0%} below floor {result['floor']}")

    def test_smoke_fails_without_committed_file(self, tmp_path):
        result = smoke(cap_wall_s=0.5, path=str(tmp_path / "missing.json"))
        assert result["floor"] is None
        assert result["ok"] is False
