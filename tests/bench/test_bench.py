"""Benchmark harness and per-figure generators (scaled-down smoke runs)."""

import math

import pytest

from repro.bench import (
    fig5,
    fig6,
    fig8,
    fig9,
    fig10,
    headline,
    overlay_for,
    run_allconcur,
    table3,
)
from repro.bench.harness import allconcur_estimate
from repro.bench.reporting import (
    format_gbps,
    format_rate,
    format_seconds,
    format_table,
)
from repro.sim import IBV_PARAMS, TCP_PARAMS


class TestReporting:
    def test_format_seconds_units(self):
        assert format_seconds(35e-6) == "35.0us"
        assert format_seconds(3.2e-3) == "3.20ms"
        assert format_seconds(2.0) == "2.000s"
        assert format_seconds(math.inf) == "unstable"

    def test_format_rate(self):
        assert format_rate(1.5e6) == "1.5M/s"
        assert format_rate(2500) == "2.5K/s"
        assert format_rate(12) == "12.0/s"

    def test_format_gbps(self):
        assert format_gbps(1.075e9) == "8.600Gbps"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "no rows" in format_table([])


class TestHarness:
    def test_overlay_cache_and_degree(self):
        g1 = overlay_for(16)
        g2 = overlay_for(16)
        assert g1 is g2
        assert g1.degree == 4

    def test_run_allconcur_result_fields(self):
        res = run_allconcur(8, rounds=3, batch_requests=64, skip_rounds=1)
        assert res.n == 8
        assert res.median_latency > 0
        assert res.agreement_throughput > 0
        assert res.aggregated_throughput == pytest.approx(
            8 * res.agreement_throughput)
        assert res.source == "sim"
        assert res.as_row()["n"] == 8

    def test_model_estimate_matches_simulation_order_of_magnitude(self):
        sim = run_allconcur(16, rounds=4, batch_requests=512, skip_rounds=1)
        model = allconcur_estimate(16, batch_requests=512)
        assert model.source == "model"
        ratio = sim.agreement_throughput / model.agreement_throughput
        assert 0.2 < ratio < 5.0


class TestTable3AndFig5:
    def test_table3_rows_match_paper_except_borderline(self):
        rows = table3.generate_table3(sizes=(6, 8, 16, 22, 32, 64, 90))
        for row in rows:
            assert row["degree"] == row["paper_degree"]
            assert row["diameter"] == row["paper_diameter"]
            assert row["quasiminimal"]
            assert row["achieved_nines"] >= 6.0

    def test_fig5_gs_tracks_target_binomial_does_not(self):
        rows = fig5.generate_fig5(sizes=(8, 64, 512, 32768))
        for row in rows:
            assert row["gs_nines"] >= 6.0
        # binomial over-provisions at small n and under-provisions at large n
        assert rows[0]["binomial_nines"] > 6.0
        assert rows[-1]["binomial_nines"] < 6.0


class TestFigureGenerators:
    def test_fig6_single_request_vs_models(self):
        row = fig6.single_request_run(8, TCP_PARAMS)
        assert row["median_latency_s"] < 200e-6
        assert row["model_work_s"] > 0
        assert row["ci_low_s"] <= row["median_latency_s"] <= row["ci_high_s"]

    def test_fig6_ibv_faster_than_tcp(self):
        tcp = fig6.single_request_run(8, TCP_PARAMS)
        ibv = fig6.single_request_run(8, IBV_PARAMS)
        assert ibv["median_latency_s"] < tcp["median_latency_s"]

    def test_fig8_latency_flat_then_unstable(self):
        low = fig8.latency_for_rate(8, 1e3, params=IBV_PARAMS, rounds=4)
        high = fig8.latency_for_rate(8, 1e9, params=IBV_PARAMS, rounds=4)
        assert low["median_latency_s"] < 1e-3
        assert high["source"] == "model-unstable"
        assert math.isinf(high["median_latency_s"])

    def test_fig9a_game_latency_within_frame_budget(self):
        row = fig9.game_latency(32, 200.0, rounds=4, sim_limit=64)
        assert row["source"] == "sim"
        assert row["median_latency_s"] < fig9.FRAME_BUDGET_S

    def test_fig9a_model_used_beyond_sim_limit(self):
        row = fig9.game_latency(512, 400.0, sim_limit=64)
        assert row["source"] == "model"
        assert row["median_latency_s"] < fig9.FRAME_BUDGET_S

    def test_fig9b_exchange_latency_scales_with_n(self):
        small = fig9.exchange_latency(8, 1e5, rounds=4, sim_limit=64)
        large = fig9.exchange_latency(512, 1e5, sim_limit=64)
        assert small["median_latency_s"] < large["median_latency_s"]

    def test_fig10_shapes(self):
        rows = fig10.generate_fig10(sizes=(8,), batches=(256, 2048),
                                    systems=("allgather", "allconcur",
                                             "leader"),
                                    rounds=3, sim_limit=32)
        summary = fig10.summarize(rows)
        # who wins: unreliable > AllConcur > leader-based
        assert summary["min_speedup_vs_leader"] > 5.0
        assert 0.3 < summary["avg_overhead_vs_unreliable"] < 0.8

    def test_fig10_larger_batches_increase_throughput(self):
        small = fig10.throughput_point("allconcur", 8, 128, rounds=3)
        large = fig10.throughput_point("allconcur", 8, 4096, rounds=3)
        assert large["agreement_throughput_Bps"] > \
            small["agreement_throughput_Bps"]

    def test_headline_report_structure(self):
        rows = headline.generate_headline(simulate=False, sim_limit=8)
        claims = {r["claim"] for r in rows}
        assert any("Libpaxos" in r["claim"] or "leader" in r["claim"]
                   for r in rows)
        assert all({"claim", "paper", "measured", "source"} <= set(r)
                   for r in rows)
        assert len(rows) >= 6
