"""Metric kernels cross-checked against networkx and hand-computed values."""

import networkx as nx
import pytest

from repro.graphs import (
    Digraph,
    average_shortest_path,
    binary_hypercube,
    binomial_graph,
    complete_digraph,
    diameter,
    eccentricity,
    fault_diameter_exact,
    gs_digraph,
    is_optimally_connected,
    max_vertex_disjoint_paths,
    moore_bound_diameter,
    ring_digraph,
    vertex_connectivity,
    vertex_disjoint_paths,
)


class TestDiameter:
    def test_complete_graph_diameter_one(self):
        assert diameter(complete_digraph(5)) == 1

    def test_ring_diameter(self):
        assert diameter(ring_digraph(6)) == 5

    def test_hypercube_diameter(self):
        assert diameter(binary_hypercube(4)) == 4

    def test_binomial_12_diameter_two(self):
        # §4.2.3: the 12-vertex binomial graph has D = 2
        assert diameter(binomial_graph(12)) == 2

    def test_single_vertex(self):
        assert diameter(Digraph(1)) == 0

    def test_eccentricity(self):
        g = ring_digraph(4)
        assert eccentricity(g, 0) == 3

    def test_eccentricity_raises_on_disconnected(self):
        g = Digraph(3, [(0, 1)])
        with pytest.raises(ValueError, match="unreachable"):
            eccentricity(g, 0)

    def test_diameter_with_exclusion(self):
        g = complete_digraph(4)
        assert diameter(g, excluded={0}) == 1

    def test_matches_networkx_on_random_regular(self):
        from repro.graphs import random_regular_digraph

        g = random_regular_digraph(20, 3, seed=7)
        nxg = g.to_networkx()
        assert diameter(g) == nx.diameter(nxg)

    def test_average_shortest_path(self):
        g = complete_digraph(4)
        assert average_shortest_path(g) == pytest.approx(1.0)

    def test_average_shortest_path_ring(self):
        g = ring_digraph(4)
        # distances from any vertex: 1, 2, 3 -> mean 2
        assert average_shortest_path(g) == pytest.approx(2.0)


class TestMooreBound:
    def test_values_from_table3(self):
        # D_L column of Table 3
        assert moore_bound_diameter(6, 3) == 2
        assert moore_bound_diameter(90, 5) == 3
        assert moore_bound_diameter(1024, 11) == 3

    def test_rejects_degree_below_two(self):
        with pytest.raises(ValueError):
            moore_bound_diameter(8, 1)

    def test_monotone_in_n(self):
        assert moore_bound_diameter(1000, 4) >= moore_bound_diameter(10, 4)


class TestConnectivity:
    @pytest.mark.parametrize("n", [4, 5, 7])
    def test_complete_graph(self, n):
        assert vertex_connectivity(complete_digraph(n)) == n - 1

    def test_ring_connectivity_one(self):
        assert vertex_connectivity(ring_digraph(5)) == 1

    def test_disconnected_graph_zero(self):
        assert vertex_connectivity(Digraph(4, [(0, 1), (1, 0)])) == 0

    def test_hypercube(self):
        assert vertex_connectivity(binary_hypercube(3)) == 3

    def test_binomial_12_connectivity_six(self):
        # §4.2.3: the binomial graph with n = 12 has k = 6
        assert vertex_connectivity(binomial_graph(12)) == 6

    def test_matches_networkx(self):
        from repro.graphs import random_regular_digraph

        for seed in (1, 2, 3):
            g = random_regular_digraph(12, 3, seed=seed)
            assert vertex_connectivity(g) == nx.node_connectivity(
                g.to_networkx())

    def test_gs_optimally_connected(self):
        assert is_optimally_connected(gs_digraph(11, 3))

    def test_single_vertex_zero(self):
        assert vertex_connectivity(Digraph(1)) == 0


class TestDisjointPaths:
    def test_count_equals_connectivity_bound(self):
        g = binomial_graph(9)
        k = vertex_connectivity(g)
        assert max_vertex_disjoint_paths(g, 0, 4) >= k

    def test_paths_are_vertex_disjoint(self):
        g = binomial_graph(9)
        paths = vertex_disjoint_paths(g, 0, 4)
        internal = [set(p[1:-1]) for p in paths]
        for i, a in enumerate(internal):
            for b in internal[i + 1:]:
                assert not (a & b)

    def test_paths_are_valid_paths(self):
        g = gs_digraph(8, 3)
        for path in vertex_disjoint_paths(g, 0, 5):
            assert path[0] == 0 and path[-1] == 5
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    def test_limit_k(self):
        g = complete_digraph(6)
        paths = vertex_disjoint_paths(g, 0, 1, k=2)
        assert len(paths) == 2

    def test_same_vertex_rejected(self):
        with pytest.raises(ValueError):
            max_vertex_disjoint_paths(complete_digraph(3), 1, 1)


class TestExactFaultDiameter:
    def test_complete_graph_unchanged(self):
        assert fault_diameter_exact(complete_digraph(5), 2) == 1

    def test_bidirectional_ring_grows(self):
        from repro.graphs import bidirectional_ring

        g = bidirectional_ring(6)
        assert diameter(g) == 3
        # removing one vertex leaves a 5-vertex path: diameter 4
        assert fault_diameter_exact(g, 1) == 4

    def test_requires_f_below_k(self):
        with pytest.raises(ValueError):
            fault_diameter_exact(ring_digraph(5), 1)

    def test_zero_failures_is_diameter(self):
        g = binomial_graph(8)
        assert fault_diameter_exact(g, 0) == diameter(g)
