"""Unit tests for the core Digraph container."""

import numpy as np
import pytest

from repro.graphs import Digraph


@pytest.fixture
def triangle() -> Digraph:
    return Digraph(3, [(0, 1), (1, 2), (2, 0)], name="tri")


class TestConstruction:
    def test_empty_graph(self):
        g = Digraph(0)
        assert g.n == 0
        assert g.num_edges == 0
        assert g.degree == 0

    def test_vertex_count(self, triangle):
        assert triangle.n == 3
        assert len(triangle) == 3

    def test_edge_count(self, triangle):
        assert triangle.num_edges == 3

    def test_duplicate_edges_collapse(self):
        g = Digraph(2, [(0, 1), (0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Digraph(2, [(0, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Digraph(2, [(0, 2)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Digraph(-1)

    def test_name_default_and_custom(self, triangle):
        assert triangle.name == "tri"
        assert "Digraph" in Digraph(2).name

    def test_repr_contains_stats(self, triangle):
        text = repr(triangle)
        assert "n=3" in text and "edges=3" in text


class TestAccessors:
    def test_successors_sorted_tuple(self):
        g = Digraph(4, [(0, 3), (0, 1), (0, 2)])
        assert g.successors(0) == (1, 2, 3)

    def test_predecessors(self, triangle):
        assert triangle.predecessors(0) == (2,)
        assert triangle.predecessors(1) == (0,)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1
        assert triangle.degree == 1

    def test_degree_is_max_in_or_out(self):
        g = Digraph(4, [(0, 1), (0, 2), (0, 3), (1, 0)])
        assert g.degree == 3

    def test_vertices_iteration(self, triangle):
        assert list(triangle.vertices()) == [0, 1, 2]

    def test_edges_iteration_sorted_by_source(self):
        g = Digraph(3, [(2, 0), (0, 1), (1, 2)])
        assert list(g.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_accessor_vertex_validation(self, triangle):
        with pytest.raises(ValueError):
            triangle.successors(5)
        with pytest.raises(ValueError):
            triangle.predecessors(-1)

    def test_is_regular(self, triangle):
        assert triangle.is_regular()
        assert not Digraph(3, [(0, 1), (0, 2)]).is_regular()


class TestDerivedGraphs:
    def test_reverse_swaps_edges(self, triangle):
        rev = triangle.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.n == triangle.n

    def test_reverse_involution(self, triangle):
        assert triangle.reverse().reverse() == triangle

    def test_subgraph_without_removes_incident_edges(self, triangle):
        sub = triangle.subgraph_without({1})
        assert sub.num_edges == 1   # only (2, 0) survives
        assert sub.has_edge(2, 0)
        assert sub.out_degree(1) == 0

    def test_subgraph_without_keeps_vertex_count(self, triangle):
        assert triangle.subgraph_without({0}).n == 3

    def test_subgraph_without_validates(self, triangle):
        with pytest.raises(ValueError):
            triangle.subgraph_without({7})

    def test_relabel_drop_vertex(self):
        g = Digraph(3, [(0, 1), (1, 2), (2, 0)])
        relabelled = g.relabel([0, -1, 1], 2)
        assert relabelled.n == 2
        assert relabelled.has_edge(1, 0)   # old (2, 0)
        assert relabelled.num_edges == 1

    def test_relabel_requires_full_mapping(self, triangle):
        with pytest.raises(ValueError):
            triangle.relabel([0, 1])

    def test_copy_equals_original(self, triangle):
        assert triangle.copy() == triangle

    def test_equality_and_hash(self):
        a = Digraph(3, [(0, 1), (1, 2)])
        b = Digraph(3, [(1, 2), (0, 1)])
        c = Digraph(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"


class TestMatrixAndTraversal:
    def test_adjacency_matrix(self, triangle):
        mat = triangle.adjacency_matrix()
        assert mat.shape == (3, 3)
        assert mat[0, 1] and mat[1, 2] and mat[2, 0]
        assert mat.sum() == 3

    def test_bfs_distances(self, triangle):
        dist = triangle.bfs_distances(0)
        assert list(dist) == [0, 1, 2]

    def test_bfs_unreachable_marked_minus_one(self):
        g = Digraph(3, [(0, 1)])
        dist = g.bfs_distances(0)
        assert dist[2] == -1

    def test_bfs_with_exclusion(self, triangle):
        dist = triangle.bfs_distances(0, excluded={1})
        assert dist[2] == -1

    def test_bfs_from_excluded_source(self, triangle):
        dist = triangle.bfs_distances(0, excluded={0})
        assert list(dist) == [-1, -1, -1]

    def test_shortest_path(self, triangle):
        assert triangle.shortest_path(0, 2) == [0, 1, 2]

    def test_shortest_path_none_when_disconnected(self):
        g = Digraph(3, [(0, 1)])
        assert g.shortest_path(1, 0) is None

    def test_shortest_path_excluded(self, triangle):
        assert triangle.shortest_path(0, 2, excluded={1}) is None

    def test_strongly_connected(self, triangle):
        assert triangle.is_strongly_connected()
        assert not Digraph(3, [(0, 1), (1, 2)]).is_strongly_connected()

    def test_strongly_connected_with_exclusion(self):
        # removing the cut vertex 1 disconnects 0 from 2
        g = Digraph(3, [(0, 1), (1, 2), (2, 1), (1, 0)])
        assert g.is_strongly_connected()
        assert g.is_strongly_connected(excluded={0})
        assert not g.is_strongly_connected(excluded={1})

    def test_single_vertex_is_strongly_connected(self):
        assert Digraph(1).is_strongly_connected()


class TestAdjacencyMasks:
    def test_masks_match_adjacency(self):
        from repro.graphs import gs_digraph

        g = gs_digraph(16, 4)
        succ, pred = g.adjacency_masks()
        for v in g.vertices():
            assert succ[v] == sum(1 << s for s in g.successors(v))
            assert pred[v] == sum(1 << p for p in g.predecessors(v))

    def test_masks_transpose_consistent(self):
        from repro.graphs import binomial_graph

        g = binomial_graph(9)
        succ, pred = g.adjacency_masks()
        for u, v in g.edges():
            assert succ[u] >> v & 1
            assert pred[v] >> u & 1
