"""Reliability model (§4.2.2, §4.4) and overlay selection (Table 3, Fig. 5)."""

import math

import pytest

from repro.graphs import (
    ReliabilityModel,
    binomial_degree,
    degree_for_reliability,
    failure_probability,
    nines,
    reliability,
    reliability_nines,
    required_connectivity,
    select_overlay,
    table3_row,
    unreliability,
)
from repro.graphs.reliability import DAYS, DEFAULT_MTTF, DEFAULT_PERIOD, YEARS


class TestFailureProbability:
    def test_exponential_model(self):
        p = failure_probability(DEFAULT_PERIOD, DEFAULT_MTTF)
        assert p == pytest.approx(1 - math.exp(-1 / 730.5), rel=1e-9)

    def test_zero_period(self):
        assert failure_probability(0.0, DEFAULT_MTTF) == 0.0

    def test_monotone_in_period(self):
        assert failure_probability(2 * DAYS) > failure_probability(DAYS)

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_probability(-1.0)
        with pytest.raises(ValueError):
            failure_probability(DAYS, 0.0)


class TestReliability:
    def test_zero_tolerance_means_any_failure_kills(self):
        p = 0.01
        assert unreliability(10, 1, p) == pytest.approx(1 - (1 - p) ** 10)

    def test_reliability_plus_unreliability(self):
        assert reliability(20, 3, 0.01) + unreliability(20, 3, 0.01) == \
            pytest.approx(1.0)

    def test_monotone_in_connectivity(self):
        p = 0.001
        values = [reliability_nines(64, k, p) for k in range(1, 6)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_n(self):
        p = 0.001
        assert reliability_nines(8, 3, p) > reliability_nines(512, 3, p)

    def test_k_above_n_is_certain(self):
        assert unreliability(4, 5, 0.5) == 0.0
        assert nines(reliability(4, 5, 0.5)) == math.inf

    def test_k_zero(self):
        assert unreliability(4, 0, 0.001) == 1.0

    def test_degenerate_probabilities(self):
        assert unreliability(10, 2, 0.0) == 0.0
        assert unreliability(10, 2, 1.0) == 1.0

    def test_nines_definition(self):
        assert nines(0.999999) == pytest.approx(6.0, rel=1e-6)
        with pytest.raises(ValueError):
            nines(-0.1)

    def test_matches_scipy_binomial_tail(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        n, k, p = 128, 5, 0.0013680
        expected = float(scipy_stats.binom.sf(k - 1, n, p))
        assert unreliability(n, k, p) == pytest.approx(expected, rel=1e-9)


class TestRequiredConnectivity:
    def test_paper_table3_selection(self):
        """Degree column of Table 3 (the only borderline row is n = 128,
        where the exact tail probability is 1.27e-6, marginally above the
        6-nines threshold — we pick 6 where the paper lists 5)."""
        model = ReliabilityModel()
        expected = {6: 3, 8: 3, 11: 3, 16: 4, 22: 4, 32: 4, 45: 4, 64: 5,
                    90: 5, 256: 7, 512: 8, 1024: 11}
        for n, d in expected.items():
            assert degree_for_reliability(n, model) == d, n

    def test_borderline_n128(self):
        model = ReliabilityModel()
        assert degree_for_reliability(128, model) in (5, 6)

    def test_required_connectivity_monotone_in_target(self):
        p = failure_probability()
        assert required_connectivity(64, 9.0, p) >= \
            required_connectivity(64, 3.0, p)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            required_connectivity(4, 40.0, 0.4, k_max=4)

    def test_model_bundle(self):
        model = ReliabilityModel(period=DAYS, mttf=2 * YEARS, target_nines=6)
        assert model.p_f == pytest.approx(failure_probability())
        assert model.nines(8, 3) >= 6.0
        assert model.required_connectivity(8) == 3


class TestOverlaySelection:
    def test_table3_row_contents(self):
        row = table3_row(16)
        assert row.n == 16
        assert row.degree == 4
        assert row.diameter == 2
        assert row.quasiminimal
        assert row.achieved_nines >= 6.0

    def test_select_gs_overlay(self):
        choice = select_overlay(22)
        assert choice.family == "gs"
        assert choice.graph.n == 22
        assert choice.degree == 4
        assert choice.achieved_nines >= choice.target_nines

    def test_select_binomial_overlay(self):
        choice = select_overlay(16, family="binomial")
        assert choice.degree == binomial_degree(16)
        assert choice.graph.is_regular()

    def test_select_complete_overlay(self):
        choice = select_overlay(6, family="complete")
        assert choice.degree == 5
        assert choice.diameter == 1

    def test_binomial_rejects_degree_override(self):
        with pytest.raises(ValueError):
            select_overlay(16, family="binomial", degree=4)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            select_overlay(16, family="torus")

    def test_explicit_degree_override(self):
        choice = select_overlay(32, degree=5)
        assert choice.degree == 5
        assert choice.graph.degree == 5

    def test_too_small_for_required_degree(self):
        # 6-nines at n = 5 would need d = 3 and n >= 2d is violated for the
        # GS family only when n < 6; use n = 5 to hit the guard
        with pytest.raises(ValueError):
            degree_for_reliability(5)
