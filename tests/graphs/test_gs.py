"""GS(n, d) digraph construction — the overlay of §4.4 and Table 3."""

import pytest

from repro.graphs import (
    debruijn_without_selfloops,
    diameter,
    gs_digraph,
    gs_parameters,
    line_digraph,
    moore_bound_diameter,
    vertex_connectivity,
)

#: (n, d, D) rows of Table 3
TABLE3 = [
    (6, 3, 2), (8, 3, 2), (11, 3, 3), (16, 4, 2), (22, 4, 3), (32, 4, 3),
    (45, 4, 4), (64, 5, 4), (90, 5, 3), (128, 5, 4), (256, 7, 4),
    (512, 8, 3), (1024, 11, 4),
]

SMALL_TABLE3 = [row for row in TABLE3 if row[0] <= 64]


class TestParameters:
    def test_quotient_remainder(self):
        assert gs_parameters(11, 3) == (3, 2)
        assert gs_parameters(90, 5) == (18, 0)

    def test_degree_lower_bound(self):
        with pytest.raises(ValueError, match="d >= 3"):
            gs_parameters(10, 2)

    def test_size_lower_bound(self):
        with pytest.raises(ValueError, match="n >= 2d"):
            gs_parameters(5, 3)


class TestLineDigraph:
    def test_line_digraph_of_cycle(self):
        from repro.graphs import MultiDigraph

        g = MultiDigraph(3, [(0, 1), (1, 2), (2, 0)])
        line = line_digraph(g)
        assert line.n == 3
        assert line.num_edges == 3
        assert line.is_regular()

    def test_line_digraph_vertex_count_equals_edges(self):
        gstar = debruijn_without_selfloops(3, 3)
        line = line_digraph(gstar)
        assert line.n == len(gstar.edges)

    def test_line_digraph_regularity_preserved(self):
        gstar = debruijn_without_selfloops(4, 4)
        assert line_digraph(gstar).is_regular()


class TestGSDigraph:
    @pytest.mark.parametrize("n,d,paper_diameter", TABLE3)
    def test_vertex_count_and_regularity(self, n, d, paper_diameter):
        g = gs_digraph(n, d)
        assert g.n == n
        assert g.is_regular()
        assert g.degree == d

    @pytest.mark.parametrize("n,d,paper_diameter", TABLE3)
    def test_diameter_matches_table3(self, n, d, paper_diameter):
        assert diameter(gs_digraph(n, d)) == paper_diameter

    @pytest.mark.parametrize("n,d,paper_diameter", TABLE3)
    def test_quasiminimal_diameter(self, n, d, paper_diameter):
        """§4.4: the diameter is at most one above the Moore lower bound."""
        g = gs_digraph(n, d)
        assert diameter(g) <= moore_bound_diameter(n, d) + 1

    @pytest.mark.parametrize("n,d,paper_diameter", SMALL_TABLE3)
    def test_optimal_connectivity(self, n, d, paper_diameter):
        """GS digraphs are optimally connected: k(G) = d (§4.4)."""
        assert vertex_connectivity(gs_digraph(n, d)) == d

    def test_t_zero_case_has_no_extra_vertices(self):
        # n = 90 = 18*5: pure line digraph, no W vertices
        m, t = gs_parameters(90, 5)
        assert t == 0
        g = gs_digraph(90, 5)
        assert g.n == 90

    @pytest.mark.parametrize("n,d", [(8, 3), (11, 3), (22, 4), (64, 5),
                                     (128, 5), (256, 7)])
    def test_t_positive_case_still_regular(self, n, d):
        _m, t = gs_parameters(n, d)
        assert t > 0
        g = gs_digraph(n, d)
        assert g.is_regular()
        assert g.degree == d

    def test_no_self_loops(self):
        g = gs_digraph(22, 4)
        for u, v in g.edges():
            assert u != v

    def test_strongly_connected(self):
        for n, d, _ in SMALL_TABLE3:
            assert gs_digraph(n, d).is_strongly_connected()

    def test_deterministic_construction(self):
        assert gs_digraph(32, 4) == gs_digraph(32, 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            gs_digraph(4, 3)
        with pytest.raises(ValueError):
            gs_digraph(20, 2)

    def test_name_contains_parameters(self):
        assert gs_digraph(16, 4).name == "GS(16,4)"
