"""Fault-diameter bounds (§4.2.3), including the paper's worked example."""

import pytest

from repro.graphs import (
    binomial_graph,
    complete_digraph,
    diameter,
    fault_diameter_bound,
    fault_diameter_exact,
    gs_digraph,
    min_sum_disjoint_paths,
    trivial_fault_diameter_bound,
    vertex_connectivity,
)


class TestTrivialBound:
    def test_formula(self):
        # floor((n - f - 2)/(k - f)) + 1
        assert trivial_fault_diameter_bound(12, 6, 2) == 3
        assert trivial_fault_diameter_bound(90, 5, 4) == 85

    def test_requires_f_below_k(self):
        with pytest.raises(ValueError):
            trivial_fault_diameter_bound(10, 3, 3)

    def test_degenerate_small_n(self):
        # removing f = 1 of 3 vertices leaves two connected vertices
        assert trivial_fault_diameter_bound(3, 2, 1) == 1
        # n <= f + 1: nothing left to connect
        assert trivial_fault_diameter_bound(2, 2, 1) == 0


class TestMinSumDisjointPaths:
    def test_paths_are_disjoint_and_valid(self):
        g = binomial_graph(12)
        res = min_sum_disjoint_paths(g, 0, 3, 6)
        assert res.count == 6
        internal = [set(p[1:-1]) for p in res.paths]
        for i, a in enumerate(internal):
            for b in internal[i + 1:]:
                assert not (a & b)
        for path in res.paths:
            assert path[0] == 0 and path[-1] == 3
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    def test_equation_one_ordering(self):
        g = binomial_graph(12)
        res = min_sum_disjoint_paths(g, 0, 3, 6)
        assert res.avg_length <= res.max_length

    def test_paper_example_n12(self):
        """§4.2.3: for the 12-vertex binomial graph, the min-sum heuristic
        gives 3 <= δ_f <= 4 for f = 5 (six disjoint paths), and one of the
        six paths from p0 to p3 indeed has length four."""
        g = binomial_graph(12)
        worst_max = 0
        worst_avg = 0.0
        for s in g.vertices():
            for t in g.vertices():
                if s == t:
                    continue
                res = min_sum_disjoint_paths(g, s, t, 6)
                worst_max = max(worst_max, res.max_length)
                worst_avg = max(worst_avg, res.avg_length)
        assert worst_max == 4
        assert worst_avg >= 2.5   # strictly above the diameter of 2
        assert worst_avg <= 4.0

    def test_requires_enough_connectivity(self):
        g = binomial_graph(9)
        k = vertex_connectivity(g)
        with pytest.raises(ValueError):
            min_sum_disjoint_paths(g, 0, 1, k + 1)

    def test_argument_validation(self):
        g = complete_digraph(4)
        with pytest.raises(ValueError):
            min_sum_disjoint_paths(g, 1, 1, 2)
        with pytest.raises(ValueError):
            min_sum_disjoint_paths(g, 0, 1, 0)


class TestFaultDiameterBound:
    def test_complete_graph_bound_not_tight(self):
        # Only one direct path exists between any pair, so the other two
        # disjoint paths have length 2: the heuristic bound is 2 even though
        # the exact fault diameter of a complete digraph stays 1.
        est = fault_diameter_bound(complete_digraph(6), 2)
        assert est.upper_bound == 2
        assert fault_diameter_exact(complete_digraph(6), 2) == 1

    def test_upper_bound_dominates_exact(self):
        g = binomial_graph(8)
        est = fault_diameter_bound(g, 2)
        exact = fault_diameter_exact(g, 2)
        assert est.upper_bound >= exact >= diameter(g)

    def test_gs_digraph_low_fault_diameter(self):
        """§4.4 claims GS digraphs have low fault-diameter bounds: the
        min-sum estimate must sit between the diameter and the (loose)
        trivial bound, and stay small in absolute terms."""
        g = gs_digraph(16, 4)
        est = fault_diameter_bound(g, 3, connectivity=4)
        assert diameter(g) <= est.upper_bound
        assert est.upper_bound <= trivial_fault_diameter_bound(16, 4, 3)
        assert est.upper_bound <= 6

    def test_sampled_pairs(self):
        g = binomial_graph(12)
        est = fault_diameter_bound(g, 5, pairs=[(0, 3), (0, 6)],
                                   connectivity=6)
        assert est.pairs_examined == 2
        assert est.f == 5

    def test_f_validation(self):
        g = binomial_graph(9)
        with pytest.raises(ValueError):
            fault_diameter_bound(g, 99)
        with pytest.raises(ValueError):
            fault_diameter_bound(g, -1)
