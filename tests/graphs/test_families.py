"""Tests for the standard, binomial and de Bruijn graph families."""

import math

import pytest

from repro.graphs import (
    MultiDigraph,
    bidirectional_ring,
    binary_hypercube,
    binomial_degree,
    binomial_graph,
    complete_digraph,
    debruijn_without_selfloops,
    diameter,
    generalized_de_bruijn,
    random_regular_digraph,
    ring_digraph,
    star_digraph,
    vertex_connectivity,
)


class TestStandardTopologies:
    def test_complete_digraph_edges(self):
        g = complete_digraph(4)
        assert g.num_edges == 12
        assert g.is_regular()
        assert g.degree == 3

    def test_complete_rejects_zero(self):
        with pytest.raises(ValueError):
            complete_digraph(0)

    def test_ring_structure(self):
        g = ring_digraph(5)
        assert g.successors(4) == (0,)
        assert g.degree == 1

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_digraph(1)

    def test_bidirectional_ring(self):
        g = bidirectional_ring(6)
        assert g.degree == 2
        assert g.is_regular()
        assert diameter(g) == 3

    def test_hypercube_properties(self):
        g = binary_hypercube(3)
        assert g.n == 8
        assert g.degree == 3
        assert g.is_regular()
        assert diameter(g) == 3

    def test_hypercube_neighbours_differ_in_one_bit(self):
        g = binary_hypercube(4)
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1

    def test_star_centre_degree(self):
        g = star_digraph(7, center=2)
        assert g.out_degree(2) == 6
        assert g.in_degree(2) == 6
        assert g.out_degree(0) == 1

    def test_star_validation(self):
        with pytest.raises(ValueError):
            star_digraph(5, center=9)

    def test_random_regular_is_regular(self):
        g = random_regular_digraph(15, 4, seed=3)
        assert g.is_regular()
        assert g.degree == 4

    def test_random_regular_deterministic_by_seed(self):
        assert random_regular_digraph(10, 3, seed=5) == \
            random_regular_digraph(10, 3, seed=5)

    def test_random_regular_validation(self):
        with pytest.raises(ValueError):
            random_regular_digraph(4, 4)


class TestBinomialGraph:
    def test_figure2a_nine_servers(self):
        """In the n = 9 example of Figure 2a, p0's neighbours are p±1, p±2,
        p±4 and p±8 ≡ p∓1 (collapsed)."""
        g = binomial_graph(9)
        assert set(g.successors(0)) == {1, 2, 4, 5, 7, 8}

    def test_symmetric(self):
        g = binomial_graph(10)
        for u, v in g.edges():
            assert g.has_edge(v, u)

    def test_regular(self):
        for n in (5, 9, 12, 16):
            assert binomial_graph(n).is_regular(), n

    def test_degree_helper_matches_graph(self):
        for n in (5, 9, 12, 31):
            assert binomial_graph(n).degree == binomial_degree(n)

    def test_paper_n12_parameters(self):
        """§4.2.3: for n = 12 the binomial graph has k = 6 and D = 2."""
        g = binomial_graph(12)
        assert g.degree == 6
        assert diameter(g) == 2
        assert vertex_connectivity(g) == 6

    def test_optimally_connected_small(self):
        for n in (6, 9, 12):
            g = binomial_graph(n)
            assert vertex_connectivity(g) == g.degree

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            binomial_graph(1)


class TestGeneralizedDeBruijn:
    def test_edge_rule(self):
        g = generalized_de_bruijn(5, 2)
        # v = u*2 + a (mod 5), a in {0,1}
        assert set(g.successors(1)) == {2, 3}
        assert set(g.successors(3)) == {1, 2}

    def test_no_self_loops_in_plain_digraph(self):
        g = generalized_de_bruijn(6, 3)
        for u, v in g.edges():
            assert u != v

    def test_validation(self):
        with pytest.raises(ValueError):
            generalized_de_bruijn(1, 3)
        with pytest.raises(ValueError):
            generalized_de_bruijn(5, 0)

    @pytest.mark.parametrize("m,d", [(2, 3), (3, 3), (4, 4), (18, 5), (93, 11)])
    def test_gstar_is_regular_multidigraph(self, m, d):
        g = debruijn_without_selfloops(m, d)
        assert isinstance(g, MultiDigraph)
        assert g.is_regular(d)
        assert not g.has_self_loops()
        assert len(g.edges) == m * d

    def test_gstar_validation(self):
        with pytest.raises(ValueError):
            debruijn_without_selfloops(1, 3)

    def test_multidigraph_degree_helpers(self):
        g = MultiDigraph(3)
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.out_degree(0) == 2
        assert g.in_degree(1) == 2
        assert not g.is_regular(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 9)
