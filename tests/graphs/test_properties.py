"""Property-based tests (hypothesis) for the graph substrate."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Digraph,
    binomial_graph,
    diameter,
    gs_digraph,
    gs_parameters,
    random_regular_digraph,
    reliability,
    unreliability,
    vertex_connectivity,
)


@st.composite
def small_digraphs(draw):
    """Random simple digraphs with 2..10 vertices."""
    n = draw(st.integers(min_value=2, max_value=10))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(st.lists(st.sampled_from(possible), max_size=40))
    return Digraph(n, edges)


@st.composite
def gs_params(draw):
    d = draw(st.integers(min_value=3, max_value=6))
    n = draw(st.integers(min_value=2 * d, max_value=40))
    return n, d


class TestDigraphInvariants:
    @given(small_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_successor_predecessor_duality(self, g):
        for u, v in g.edges():
            assert u in g.predecessors(v)
            assert v in g.successors(u)

    @given(small_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_reverse_preserves_edge_count(self, g):
        assert g.reverse().num_edges == g.num_edges

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_connectivity_bounded_by_min_degree(self, g):
        k = vertex_connectivity(g)
        if g.n > 1:
            min_deg = min(min(g.out_degree(v), g.in_degree(v))
                          for v in g.vertices())
            assert k <= min_deg

    @given(small_digraphs())
    @settings(max_examples=30, deadline=None)
    def test_connectivity_matches_definition(self, g):
        """k(G) is the size of a smallest vertex set whose removal leaves a
        non-strongly-connected (or single-vertex) digraph.  Checked by brute
        force.  (networkx's global node_connectivity is not used as the
        oracle here: for some small digraphs it disagrees with its own
        minimum_node_cut, e.g. DiGraph([(0,1),(0,2),(1,0),(2,1)]).)"""
        from itertools import combinations

        if not g.is_strongly_connected():
            assert vertex_connectivity(g) == 0
            return
        k = vertex_connectivity(g)
        assert 1 <= k <= g.n - 1
        # no smaller set disconnects it
        for size in range(1, k):
            for removed in combinations(range(g.n), size):
                assert g.is_strongly_connected(excluded=set(removed))
        # some set of size k does disconnect it (or reduces it to one vertex)
        assert any(not g.is_strongly_connected(excluded=set(removed))
                   or g.n - k <= 1
                   for removed in combinations(range(g.n), k))

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_distances_consistent_with_edges(self, g):
        dist = g.bfs_distances(0)
        for u, v in g.edges():
            if dist[u] >= 0:
                assert dist[v] >= 0
                assert dist[v] <= dist[u] + 1


class TestGSInvariants:
    @given(gs_params())
    @settings(max_examples=25, deadline=None)
    def test_gs_always_regular_with_n_vertices(self, params):
        n, d = params
        g = gs_digraph(n, d)
        assert g.n == n
        assert g.is_regular()
        assert g.degree == d

    @given(gs_params())
    @settings(max_examples=15, deadline=None)
    def test_gs_strongly_connected(self, params):
        n, d = params
        assert gs_digraph(n, d).is_strongly_connected()

    @given(gs_params())
    @settings(max_examples=10, deadline=None)
    def test_gs_parameters_consistent(self, params):
        n, d = params
        m, t = gs_parameters(n, d)
        assert n == m * d + t
        assert 0 <= t < d


class TestReliabilityInvariants:
    @given(st.integers(2, 200), st.integers(1, 12),
           st.floats(0.0, 0.5, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_reliability_in_unit_interval(self, n, k, p):
        r = reliability(n, k, p)
        assert 0.0 <= r <= 1.0

    @given(st.integers(2, 200), st.integers(1, 10),
           st.floats(1e-6, 0.2, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_more_connectivity_never_hurts(self, n, k, p):
        assert unreliability(n, k + 1, p) <= unreliability(n, k, p) + 1e-15

    @given(st.integers(2, 64), st.floats(1e-6, 0.2, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_tolerating_everything_is_certain(self, n, p):
        assert reliability(n, n + 1, p) == 1.0


class TestFamilies:
    @given(st.integers(3, 40))
    @settings(max_examples=30, deadline=None)
    def test_binomial_symmetric_and_regular(self, n):
        g = binomial_graph(n)
        assert g.is_regular()
        for u, v in g.edges():
            assert g.has_edge(v, u)

    @given(st.integers(6, 24), st.integers(2, 4), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_random_regular_matches_requested_degree(self, n, d, seed):
        if d >= n:
            return
        g = random_regular_digraph(n, d, seed=seed)
        assert g.is_regular()
        assert g.degree == d
