"""Binary wire plane: codec round trips, decoder hardening, equivalence.

Three layers of evidence that the binary codec can replace the JSON wire
image without changing what the protocol agrees on:

1. property-based round trips — every message the runtime can send decodes
   back to an equal message under BOTH codecs, for arbitrary canonical
   payload data (Hypothesis generates the JSON value space);
2. decoder hardening — truncated frames wait, oversized length prefixes
   raise before buffering, garbage version bytes and undecodable envelopes
   raise :class:`ValueError`, and a frame stream chopped at *every* byte
   boundary still decodes to the same items;
3. cross-codec equivalence — the same cluster scenario under ``codec="json"``
   and ``codec="binary"`` produces byte-different frames but identical
   delivered orders and payloads (the differential-oracle argument).
"""

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Backward,
    Batch,
    Broadcast,
    FailureNotice,
    Forward,
    Request,
)
from repro.graphs import gs_digraph
from repro.runtime import (
    BinaryCodec,
    JsonCodec,
    LocalCluster,
    get_codec,
)
from repro.runtime.framing import canonical_payload
from repro.runtime.wire import WIRE_VERSION, CODECS

CODEC_NAMES = sorted(CODECS)

# Canonical JSON values — exactly what survives the submit boundary
# (canonical_payload), so exactly what a wire codec must carry.
json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2 ** 53, max_value=2 ** 53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12)


@st.composite
def requests(draw):
    return Request(
        origin=draw(st.integers(0, 31)),
        seq=draw(st.integers(0, 2 ** 20)),
        nbytes=draw(st.integers(0, 4096)),
        submit_time=draw(st.floats(0, 1e6, allow_nan=False)),
        data=draw(json_values),
        client=draw(st.none() | st.text(min_size=1, max_size=12)))


@st.composite
def messages(draw):
    kind = draw(st.sampled_from(["bcast", "fail", "fwd", "bwd"]))
    rnd = draw(st.integers(0, 2 ** 20))
    if kind == "bcast":
        reqs = draw(st.lists(requests(), max_size=5))
        payload = Batch.of(reqs) if reqs else Batch(count=0, nbytes=0)
        return Broadcast(round=rnd, origin=draw(st.integers(0, 31)),
                         payload=payload)
    if kind == "fail":
        failed = draw(st.integers(0, 31))
        reporter = draw(st.integers(0, 31).filter(lambda r: r != failed))
        return FailureNotice(round=rnd, failed=failed, reporter=reporter)
    if kind == "fwd":
        return Forward(round=rnd, origin=draw(st.integers(0, 31)))
    return Backward(round=rnd, origin=draw(st.integers(0, 31)))


class TestCodecRoundTrip:
    @pytest.mark.parametrize("name", CODEC_NAMES)
    @given(message=messages(), sender=st.integers(0, 31))
    @settings(max_examples=120, deadline=None)
    def test_message_roundtrip(self, name, message, sender):
        codec = get_codec(name)
        frame = codec.encode_message(sender, message)
        items = codec.decoder().feed(frame)
        assert items == [(sender, message)]

    @pytest.mark.parametrize("name", CODEC_NAMES)
    @given(message=messages(), sender=st.integers(0, 31),
           cut=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_split_feed_roundtrip(self, name, message, sender, cut):
        """A frame fed in two arbitrary pieces decodes identically."""
        codec = get_codec(name)
        frame = codec.encode_message(sender, message)
        cut = min(cut, len(frame))
        decoder = codec.decoder()
        items = decoder.feed(frame[:cut]) + decoder.feed(frame[cut:])
        assert items == [(sender, message)]
        assert decoder.pending_bytes == 0

    @pytest.mark.parametrize("name", CODEC_NAMES)
    def test_control_roundtrip(self, name):
        codec = get_codec(name)
        frame = codec.encode_control({"type": "heartbeat", "from": 5})
        assert codec.decoder().feed(frame) == [
            {"type": "heartbeat", "from": 5}]

    @pytest.mark.parametrize("name", CODEC_NAMES)
    def test_interleaved_stream(self, name):
        """Messages and control frames interleave on one connection."""
        codec = get_codec(name)
        batch = Batch.of([Request(origin=1, seq=0, nbytes=8, data={"k": 1})])
        stream = (codec.encode_control({"type": "heartbeat", "from": 1})
                  + codec.encode_message(1, Broadcast(round=0, origin=1,
                                                      payload=batch))
                  + codec.encode_message(2, Forward(round=0, origin=1)))
        items = codec.decoder().feed(stream)
        assert items[0] == {"type": "heartbeat", "from": 1}
        assert items[1][0] == 1 and isinstance(items[1][1], Broadcast)
        assert items[2] == (2, Forward(round=0, origin=1))

    def test_codecs_differ_on_the_wire(self):
        """Same message, different bytes — the codecs are not aliases."""
        message = Broadcast(round=1, origin=0, payload=Batch(
            count=0, nbytes=0))
        assert (JsonCodec().encode_message(0, message)
                != BinaryCodec().encode_message(0, message))

    def test_get_codec_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown wire codec"):
            get_codec("protobuf")

    def test_get_codec_passes_instances_through(self):
        codec = BinaryCodec()
        assert get_codec(codec) is codec

    @given(message=messages(), sender=st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_cross_codec_decode_equivalence(self, message, sender):
        """Both codecs decode their own frames to the SAME message object —
        the frame bytes differ, the meaning cannot."""
        decoded = {}
        for name in CODEC_NAMES:
            codec = get_codec(name)
            frame = codec.encode_message(sender, message)
            (decoded[name],) = codec.decoder().feed(frame)
        assert decoded["binary"] == decoded["json"]


class TestBinaryDecoderHardening:
    def frame(self, message=None):
        codec = BinaryCodec()
        if message is None:
            message = Broadcast(round=0, origin=0, payload=Batch.of(
                [Request(origin=0, seq=0, nbytes=8, data=[1, "x", None])]))
        return codec.encode_message(3, message)

    def test_truncated_frame_waits(self):
        frame = self.frame()
        decoder = BinaryCodec().decoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert len(decoder.feed(frame[-1:])) == 1
        assert decoder.pending_bytes == 0

    def test_every_byte_boundary(self):
        """The stream chopped at every single byte boundary still decodes
        to the same two items."""
        stream = self.frame() + self.frame(Forward(round=7, origin=2))
        whole = BinaryCodec().decoder().feed(stream)
        assert len(whole) == 2
        for cut in range(len(stream) + 1):
            decoder = BinaryCodec().decoder()
            items = decoder.feed(stream[:cut]) + decoder.feed(stream[cut:])
            assert items == whole
            assert decoder.pending_bytes == 0

    def test_oversized_length_prefix_raises_before_buffering(self):
        decoder = BinaryCodec().decoder(max_frame_bytes=1024)
        bogus = (1 << 30).to_bytes(4, "big") + b"x"
        with pytest.raises(ValueError, match="exceeds limit"):
            decoder.feed(bogus)

    def test_oversized_encode_rejected(self):
        codec = BinaryCodec()
        huge = Broadcast(round=0, origin=0, payload=Batch.of(
            [Request(origin=0, seq=0, nbytes=1, data="y" * (17 << 20))]))
        with pytest.raises(ValueError, match="frame too large"):
            codec.encode_message(0, huge)

    def test_garbage_version_byte(self):
        frame = bytearray(self.frame())
        frame[4] = WIRE_VERSION + 9       # corrupt the version byte
        with pytest.raises(ValueError, match="unsupported wire version"):
            BinaryCodec().decoder().feed(bytes(frame))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="empty frame body"):
            BinaryCodec().decoder().feed((0).to_bytes(4, "big"))

    def test_undecodable_envelope(self):
        body = bytes([WIRE_VERSION]) + b"\xff\xfe\xfd garbage"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(ValueError, match="binary envelope"):
            BinaryCodec().decoder().feed(frame)

    def test_unknown_envelope_kind(self):
        import marshal
        body = bytes([WIRE_VERSION]) + marshal.dumps((99, 1, 2))
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(ValueError, match="unknown envelope kind"):
            BinaryCodec().decoder().feed(frame)

    def test_malformed_control_frame(self):
        import marshal
        body = bytes([WIRE_VERSION]) + marshal.dumps((4, "not-a-dict"))
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(ValueError, match="control frame"):
            BinaryCodec().decoder().feed(frame)

    def test_json_decoder_rejects_non_object_frame(self):
        from repro.runtime.framing import encode_frame
        import struct
        body = json.dumps([1, 2, 3]).encode()
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(ValueError, match="not an object"):
            JsonCodec().decoder().feed(frame)


class TestCanonicalPayloadFastPath:
    @given(data=json_values)
    @settings(max_examples=100, deadline=None)
    def test_canonical_values_pass_through_unchanged(self, data):
        result = canonical_payload(data)
        assert result == json.loads(json.dumps(data))

    def test_already_canonical_is_identity(self):
        """The common case — payloads built canonical by construction —
        must skip the serialise/parse round trip entirely."""
        data = {"op": "set", "key": "a/b", "value": [1, 2.5, None, True]}
        assert canonical_payload(data) is data

    def test_tuple_still_normalised(self):
        assert canonical_payload((1, 2)) == [1, 2]

    def test_nested_tuple_still_normalised(self):
        assert canonical_payload({"k": (1, 2)}) == {"k": [1, 2]}

    def test_int_enum_normalised_to_plain_int(self):
        import enum

        class Colour(enum.IntEnum):
            RED = 1

        result = canonical_payload([Colour.RED])
        assert result == [1]
        assert type(result[0]) is int

    def test_non_string_dict_keys_normalised(self):
        assert canonical_payload({1: "a"}) == {"1": "a"}

    def test_uncodable_payload_raises(self):
        with pytest.raises(TypeError):
            canonical_payload({"x": object()})


class TestCrossCodecClusterEquivalence:
    """The differential-oracle argument: one scenario, both codecs,
    identical agreed outcome."""

    def run_scenario(self, codec: str):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with LocalCluster(graph, codec=codec,
                                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, {"op": "set", "k": "a", "v": 1})
                await cluster.submit(3, ["x", 2.5, None])
                await cluster.run_rounds(1)
                await cluster.fail(5)
                await cluster.submit(1, "after-failure")
                await cluster.run_rounds(2)
                assert cluster.agreement_holds()
                node = cluster.nodes[0]
                return [
                    (rec.round, rec.removed,
                     [(origin, [(r.origin, r.seq, r.data)
                                for r in batch.requests])
                      for origin, batch in rec.messages])
                    for rec in node.delivered]
        return asyncio.run(scenario())

    def test_same_delivered_history_under_both_codecs(self):
        histories = {name: self.run_scenario(name) for name in CODEC_NAMES}
        assert histories["binary"] == histories["json"]
        # sanity: the scenario actually delivered payloads
        assert any(reqs for _rnd, _rm, msgs in histories["binary"]
                   for _o, reqs in msgs)
