"""asyncio/TCP runtime: framing plus an end-to-end localhost deployment."""

import asyncio

import pytest

from repro.core import Batch, Broadcast, FailureNotice, Forward, Backward, Request
from repro.graphs import gs_digraph
from repro.runtime import (
    FrameDecoder,
    LocalCluster,
    decode_message,
    encode_frame,
    encode_message,
)


class TestFraming:
    def test_broadcast_roundtrip_with_requests(self):
        payload = Batch.of([Request(origin=2, seq=0, nbytes=40, data="hi"),
                            Request(origin=2, seq=1, nbytes=40, data=[1, 2])])
        msg = Broadcast(round=3, origin=2, payload=payload)
        sender, decoded = decode_message(encode_message(7, msg))
        assert sender == 7
        assert decoded == msg

    def test_broadcast_roundtrip_synthetic(self):
        msg = Broadcast(round=0, origin=1,
                        payload=Batch.synthetic(100, 8))
        _s, decoded = decode_message(encode_message(1, msg))
        assert decoded.payload.count == 100
        assert decoded.payload.nbytes == 800

    def test_failure_fwd_bwd_roundtrip(self):
        for msg in (FailureNotice(round=2, failed=1, reporter=4),
                    Forward(round=2, origin=3),
                    Backward(round=2, origin=3)):
            _s, decoded = decode_message(encode_message(0, msg))
            assert decoded == msg

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            decode_message({"type": "gossip", "from": 0, "round": 0})

    def test_frame_decoder_handles_partial_frames(self):
        frame = encode_frame({"type": "heartbeat", "from": 3})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []
        assert decoder.pending_bytes == 3
        frames = decoder.feed(frame[3:])
        assert frames == [{"type": "heartbeat", "from": 3}]
        assert decoder.pending_bytes == 0

    def test_frame_decoder_handles_multiple_frames(self):
        f1 = encode_frame({"a": 1})
        f2 = encode_frame({"b": 2})
        decoder = FrameDecoder()
        assert decoder.feed(f1 + f2) == [{"a": 1}, {"b": 2}]

    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder()
        bogus = (200_000_000).to_bytes(4, "big") + b"x"
        with pytest.raises(ValueError):
            decoder.feed(bogus)


class TestLocalCluster:
    def test_single_round_agreement_over_tcp(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, "a")
                await cluster.submit(3, "b")
                rounds = await cluster.run_rounds(1, timeout=20)
                assert cluster.agreement_holds()
                record = rounds[0][0]
                origins = [o for o, _b in record.messages]
                assert origins == list(range(6))
                data = [req.data for _o, b in record.messages
                        for req in b.requests]
                assert sorted(data) == ["a", "b"]

        asyncio.run(scenario())

    def test_multiple_rounds_preserve_order_everywhere(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                for rnd in range(3):
                    await cluster.submit(rnd % 6, f"round-{rnd}")
                    await cluster.run_rounds(1, timeout=20)
                assert cluster.agreement_holds()
                node = cluster.nodes[5]
                assert node.delivered_rounds == 3
                assert [d.round for d in node.delivered] == [0, 1, 2]

        asyncio.run(scenario())

    def test_deliver_callback_invoked(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            seen = []
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                cluster.nodes[2].on_deliver(lambda rec: seen.append(rec.round))
                await cluster.run_rounds(1, timeout=20)
            assert seen == [0]

        asyncio.run(scenario())

    def test_pipelined_rounds_over_tcp(self):
        """pipeline_depth > 1 drives several window slots before waiting:
        the same sans-IO pipelining works over real sockets."""
        from repro.core import AllConcurConfig

        async def scenario():
            graph = gs_digraph(6, 3)
            config = AllConcurConfig(graph=graph, auto_advance=False,
                                     pipeline_depth=2)
            async with LocalCluster(graph, config=config,
                                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, "early")
                rounds = await cluster.run_rounds(4, timeout=20)
                assert len(rounds) == 4
                assert cluster.agreement_holds()
                node = cluster.nodes[0]
                assert [d.round for d in node.delivered] == [0, 1, 2, 3]
                data = [req.data for _o, b in rounds[0][0].messages
                        for req in b.requests]
                assert data == ["early"]

        asyncio.run(scenario())
