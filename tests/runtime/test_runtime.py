"""asyncio/TCP runtime: framing plus an end-to-end localhost deployment."""

import asyncio

import pytest

from repro.core import (
    AllConcurConfig,
    Backward,
    Batch,
    Broadcast,
    FailureNotice,
    Forward,
    Request,
)
from repro.graphs import gs_digraph
from repro.runtime import (
    FrameDecoder,
    LocalCluster,
    decode_message,
    encode_frame,
    encode_message,
)


class TestFraming:
    def test_broadcast_roundtrip_with_requests(self):
        payload = Batch.of([Request(origin=2, seq=0, nbytes=40, data="hi"),
                            Request(origin=2, seq=1, nbytes=40, data=[1, 2])])
        msg = Broadcast(round=3, origin=2, payload=payload)
        sender, decoded = decode_message(encode_message(7, msg))
        assert sender == 7
        assert decoded == msg

    def test_broadcast_roundtrip_synthetic(self):
        msg = Broadcast(round=0, origin=1,
                        payload=Batch.synthetic(100, 8))
        _s, decoded = decode_message(encode_message(1, msg))
        assert decoded.payload.count == 100
        assert decoded.payload.nbytes == 800

    def test_failure_fwd_bwd_roundtrip(self):
        for msg in (FailureNotice(round=2, failed=1, reporter=4),
                    Forward(round=2, origin=3),
                    Backward(round=2, origin=3)):
            _s, decoded = decode_message(encode_message(0, msg))
            assert decoded == msg

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            decode_message({"type": "gossip", "from": 0, "round": 0})

    def test_frame_decoder_handles_partial_frames(self):
        frame = encode_frame({"type": "heartbeat", "from": 3})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []
        assert decoder.pending_bytes == 3
        frames = decoder.feed(frame[3:])
        assert frames == [{"type": "heartbeat", "from": 3}]
        assert decoder.pending_bytes == 0

    def test_frame_decoder_handles_multiple_frames(self):
        f1 = encode_frame({"a": 1})
        f2 = encode_frame({"b": 2})
        decoder = FrameDecoder()
        assert decoder.feed(f1 + f2) == [{"a": 1}, {"b": 2}]

    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder()
        bogus = (200_000_000).to_bytes(4, "big") + b"x"
        with pytest.raises(ValueError):
            decoder.feed(bogus)


class TestLocalCluster:
    def test_single_round_agreement_over_tcp(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, "a")
                await cluster.submit(3, "b")
                rounds = await cluster.run_rounds(1, timeout=20)
                assert cluster.agreement_holds()
                record = rounds[0][0]
                origins = [o for o, _b in record.messages]
                assert origins == list(range(6))
                data = [req.data for _o, b in record.messages
                        for req in b.requests]
                assert sorted(data) == ["a", "b"]

        asyncio.run(scenario())

    def test_multiple_rounds_preserve_order_everywhere(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                for rnd in range(3):
                    await cluster.submit(rnd % 6, f"round-{rnd}")
                    await cluster.run_rounds(1, timeout=20)
                assert cluster.agreement_holds()
                node = cluster.nodes[5]
                assert node.delivered_rounds == 3
                assert [d.round for d in node.delivered] == [0, 1, 2]

        asyncio.run(scenario())

    def test_deliver_callback_invoked(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            seen = []
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                cluster.nodes[2].on_deliver(lambda rec: seen.append(rec.round))
                await cluster.run_rounds(1, timeout=20)
            assert seen == [0]

        asyncio.run(scenario())

    def test_ephemeral_ports_published_before_dialling(self):
        """Port 0 = kernel-assigned: after start every node's address map
        entry holds a real bound port, and two clusters can start
        concurrently without racing for a port range (the old probe-based
        pick_free_port_base was TOCTOU-racy)."""
        async def scenario():
            graph = gs_digraph(6, 3)
            a = LocalCluster(graph, enable_failure_detector=False)
            b = LocalCluster(graph, enable_failure_detector=False)
            assert all(addr.port == 0 for addr in a.addresses.values())
            try:
                await asyncio.gather(a.start(), b.start())
                for cluster in (a, b):
                    ports = [cluster.nodes[pid].address.port
                             for pid in cluster.members]
                    assert all(p > 0 for p in ports)
                    assert len(set(ports)) == len(ports)
                await a.submit(0, "a")
                await b.submit(0, "b")
                ra, rb = await asyncio.gather(a.run_rounds(1),
                                              b.run_rounds(1))
                assert a.agreement_holds() and b.agreement_holds()
            finally:
                await a.stop()
                await b.stop()

        asyncio.run(scenario())

    def test_explicit_base_port_still_honoured(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with LocalCluster(graph, base_port=23750,
                                    enable_failure_detector=False) as cluster:
                assert [cluster.nodes[pid].address.port
                        for pid in cluster.members] == \
                    list(range(23750, 23756))
                await cluster.run_rounds(1)
                assert cluster.agreement_holds()

        asyncio.run(scenario())

    def test_fail_stop_membership_change(self):
        """cluster.fail tears a node down and injects the suspicion
        deterministically; later rounds exclude the failed server."""
        async def scenario():
            graph = gs_digraph(8, 3)
            async with LocalCluster(graph,
                                    enable_failure_detector=False) as cluster:
                await cluster.run_rounds(1, timeout=20)
                await cluster.fail(6)
                assert cluster.alive_members == (0, 1, 2, 3, 4, 5, 7)
                rounds = await cluster.run_rounds(2, timeout=20)
                assert cluster.agreement_holds()
                removed = {pid for per_node in rounds
                           for rec in per_node.values()
                           for pid in rec.removed}
                assert removed == {6}
                last = rounds[-1][0]
                assert 6 not in [o for o, _b in last.messages]

        asyncio.run(scenario())

    def test_run_rounds_refills_window_across_membership_barrier(self):
        """Regression: with pipeline_depth >= 2 a membership change caps
        the broadcast window (epoch barrier) and start_round becomes a
        temporary no-op; run_rounds must re-fill the window after each
        awaited round or the capped slots are never re-issued and the run
        times out."""
        async def scenario():
            graph = gs_digraph(8, 3)
            config = AllConcurConfig(graph=graph, auto_advance=False,
                                     pipeline_depth=2)
            async with LocalCluster(graph, config=config,
                                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, "pre")
                await cluster.run_rounds(1, timeout=20)
                await cluster.fail(5)
                await cluster.submit(1, "post")
                rounds = await cluster.run_rounds(4, timeout=20)
                assert len(rounds) == 4
                assert cluster.agreement_holds()
                removed = {pid for per_node in rounds
                           for rec in per_node.values()
                           for pid in rec.removed}
                assert removed == {5}
                # the new epoch is underway: the last round has only the
                # shrunk membership and delivered the post-failure request
                node0 = cluster.nodes[0]
                assert node0.server.members == (0, 1, 2, 3, 4, 6, 7)
                data = [req.data for per_node in rounds
                        for _o, b in per_node[0].messages
                        for req in b.requests]
                assert "post" in data

        asyncio.run(scenario())

    def test_pipelined_rounds_over_tcp(self):
        """pipeline_depth > 1 drives several window slots before waiting:
        the same sans-IO pipelining works over real sockets."""
        from repro.core import AllConcurConfig

        async def scenario():
            graph = gs_digraph(6, 3)
            config = AllConcurConfig(graph=graph, auto_advance=False,
                                     pipeline_depth=2)
            async with LocalCluster(graph, config=config,
                                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, "early")
                rounds = await cluster.run_rounds(4, timeout=20)
                assert len(rounds) == 4
                assert cluster.agreement_holds()
                node = cluster.nodes[0]
                assert [d.round for d in node.delivered] == [0, 1, 2, 3]
                data = [req.data for _o, b in rounds[0][0].messages
                        for req in b.requests]
                assert data == ["early"]

        asyncio.run(scenario())
