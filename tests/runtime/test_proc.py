"""Multi-process runtime: one OS process per server, same agreement.

The scenarios mirror the LocalCluster suite where it matters (agreement,
fail-stop, payload delivery) plus the process-specific surface: control
RPCs, bulk submission, digest reporting, start-method selection, and the
``TcpDeployment`` facade's ``runtime="process"`` knob.
"""

import asyncio
import multiprocessing

import pytest

from repro.api import create_deployment
from repro.core import Request
from repro.graphs import gs_digraph
from repro.runtime import ProcessCluster


def run(coro):
    return asyncio.run(coro)


class TestProcessCluster:
    def test_multi_round_agreement(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with ProcessCluster(
                    graph, enable_failure_detector=False) as cluster:
                await cluster.submit(0, {"op": "set", "k": "a"})
                await cluster.submit(4, [1, 2, 3])
                rounds = await cluster.run_rounds(3, timeout=20.0)
                assert len(rounds) == 3
                first = rounds[0]
                assert set(first) == set(cluster.members)
                for rec in first.values():
                    delivered = {origin: [r.data for r in batch.requests]
                                 for origin, batch in rec.messages
                                 if batch.count}
                    assert delivered == {0: [{"op": "set", "k": "a"}],
                                         4: [[1, 2, 3]]}
                assert cluster.agreement_holds()
        run(scenario())

    def test_every_server_is_a_separate_process(self):
        async def scenario():
            async with ProcessCluster(
                    gs_digraph(6, 3),
                    enable_failure_detector=False) as cluster:
                pids = {proc.pid for proc in cluster._procs.values()}
                assert len(pids) == len(cluster.members)
                assert all(pid is not None for pid in pids)
                import os
                assert os.getpid() not in pids
                # kernel-assigned, distinct node listener ports
                ports = [port for _h, port in cluster.endpoints().values()]
                assert len(set(ports)) == len(ports)
                assert all(port > 0 for port in ports)
        run(scenario())

    def test_fail_stop_continues_with_survivors(self):
        async def scenario():
            graph = gs_digraph(6, 3)
            async with ProcessCluster(
                    graph, enable_failure_detector=False) as cluster:
                await cluster.submit(0, "pre")
                await cluster.run_rounds(1, timeout=20.0)
                await cluster.fail(2)
                assert cluster.alive_members == (0, 1, 3, 4, 5)
                assert not cluster._procs[2].is_alive()
                await cluster.submit(1, "post")
                rounds = await cluster.run_rounds(2, timeout=20.0)
                assert set(rounds[0]) == {0, 1, 3, 4, 5}
                removed = {rm for rec in rounds[0].values()
                           for rm in rec.removed}
                assert removed == {2}
                assert cluster.agreement_holds()
        run(scenario())

    def test_bulk_submission_and_sequencer(self):
        async def scenario():
            async with ProcessCluster(
                    gs_digraph(6, 3),
                    enable_failure_detector=False) as cluster:
                reqs = [Request(origin=3, seq=i, nbytes=8, data=i)
                        for i in range(10)]
                await cluster.submit_requests(3, reqs)
                assert cluster.next_seq(3) == 10
                rounds = await cluster.run_rounds(1, timeout=20.0)
                rec = rounds[0][0]
                (origin, batch), = [(o, b) for o, b in rec.messages
                                    if b.count]
                assert origin == 3
                assert [r.data for r in batch.requests] == list(range(10))
        run(scenario())

    def test_digest_report_mode(self):
        """Digest mode skips payload shipping but still proves agreement."""
        async def scenario():
            async with ProcessCluster(
                    gs_digraph(6, 3), report="digest",
                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, {"payload": "never leaves the "
                                                    "children"})
                rounds = await cluster.run_rounds(2, timeout=20.0)
                rec = rounds[0][0]
                assert rec.messages == ()          # not shipped
                digests = cluster.nodes[0].digests
                assert digests and digests[0][0] == rec.round
                # every node produced the identical digest rows
                assert cluster.agreement_holds()
                rows = {pid: cluster.nodes[pid].digests[0]
                        for pid in cluster.members}
                assert len(set(rows.values())) == 1
        run(scenario())

    def test_rejects_unknown_report_mode(self):
        with pytest.raises(ValueError, match="report mode"):
            ProcessCluster(gs_digraph(6, 3), report="verbose")

    def test_spawn_start_method(self):
        """The spawn context works too (children re-import everything)."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")

        async def scenario():
            async with ProcessCluster(
                    gs_digraph(6, 3), mp_context="spawn",
                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, "spawned")
                rounds = await cluster.run_rounds(1, timeout=60.0)
                assert any(b.count for _o, b in rounds[0][0].messages)
                assert cluster.agreement_holds()
        run(scenario())

    def test_json_codec_selectable(self):
        """The wire codec knob reaches the children."""
        async def scenario():
            async with ProcessCluster(
                    gs_digraph(6, 3), codec="json",
                    enable_failure_detector=False) as cluster:
                await cluster.submit(0, {"via": "json"})
                rounds = await cluster.run_rounds(1, timeout=20.0)
                delivered = {o: [r.data for r in b.requests]
                             for o, b in rounds[0][0].messages if b.count}
                assert delivered == {0: [{"via": "json"}]}
                assert cluster.agreement_holds()
        run(scenario())


class TestProcessFacade:
    def test_deployment_runtime_knob(self):
        with create_deployment("tcp", gs_digraph(6, 3),
                               runtime="process") as dep:
            handle = dep.submit({"op": "noop"}, at=0)
            dep.run_rounds(2)
            assert handle.done
            assert handle.delivery is not None
            assert dep.check_agreement()

    def test_facade_failover_path(self):
        with create_deployment("tcp", gs_digraph(6, 3),
                               runtime="process") as dep:
            first = dep.submit("pre", at=0)
            dep.run_rounds(1)
            assert first.done
            dep.fail(3)
            assert dep.alive_members == (0, 1, 2, 4, 5)
            second = dep.submit("post", at=1)
            dep.run_rounds(2)
            assert second.done
            assert dep.check_agreement()

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            create_deployment("tcp", gs_digraph(6, 3), runtime="threads")
