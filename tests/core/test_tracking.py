"""Tracking digraphs / early termination (§2.3, Algorithm 1 lines 21-40)."""

import pytest

from repro.core import MessageTracker, TrackingDigraph
from repro.graphs import binomial_graph, complete_digraph, gs_digraph


def make_tracker(graph, owner=6, members=None):
    members = members if members is not None else range(graph.n)
    return MessageTracker(owner=owner, members=members,
                          successors_fn=graph.successors)


class TestTrackingDigraph:
    def test_initial_state(self):
        g = TrackingDigraph.initial(3)
        assert g.vertices == {3}
        assert not g.edges
        assert not g.is_empty

    def test_clear(self):
        g = TrackingDigraph.initial(3)
        g.clear()
        assert g.is_empty

    def test_reachability(self):
        g = TrackingDigraph(target=0, vertices={0, 1, 2, 3},
                            edges={(0, 1), (1, 2)})
        assert g.reachable_from_target() == {0, 1, 2}

    def test_prune_removes_unreachable(self):
        g = TrackingDigraph(target=0, vertices={0, 1, 2},
                            edges={(0, 1), (2, 1)})
        g.prune(failed_servers=set())
        assert g.vertices == {0, 1}
        assert g.edges == {(0, 1)}

    def test_prune_clears_if_all_failed(self):
        g = TrackingDigraph(target=0, vertices={0, 1}, edges={(0, 1)})
        g.prune(failed_servers={0, 1})
        assert g.is_empty

    def test_prune_keeps_if_some_alive(self):
        g = TrackingDigraph(target=0, vertices={0, 1}, edges={(0, 1)})
        g.prune(failed_servers={0})
        assert g.vertices == {0, 1}


class TestMessageTracker:
    def test_initial_tracking_everyone_else(self):
        graph = gs_digraph(8, 3)
        t = make_tracker(graph, owner=2, members=range(8))
        assert set(t.graphs) == set(range(8)) - {2}
        assert not t.all_done()
        assert t.pending_targets() == [p for p in range(8) if p != 2]

    def test_owner_must_be_member(self):
        graph = gs_digraph(8, 3)
        with pytest.raises(ValueError):
            MessageTracker(owner=9, members=range(8),
                           successors_fn=graph.successors)

    def test_receiving_all_messages_terminates(self):
        graph = gs_digraph(8, 3)
        t = make_tracker(graph, owner=0)
        for origin in range(1, 8):
            t.message_received(origin)
        assert t.all_done()

    def test_round_successors_respect_membership(self):
        graph = complete_digraph(6)
        t = make_tracker(graph, owner=0, members=[0, 1, 2, 3])
        assert set(t.round_successors(1)) == {0, 2, 3}

    def test_first_failure_notification_expands(self):
        graph = binomial_graph(9)
        t = make_tracker(graph, owner=6)
        t.add_failure(0, 2)
        g0 = t.graphs[0]
        expected = set(graph.successors(0)) - {2} | {0}
        assert g0.vertices == expected
        assert all(edge[0] == 0 for edge in g0.edges)
        assert (0, 2) not in g0.edges

    def test_subsequent_notification_removes_edge(self):
        graph = binomial_graph(9)
        t = make_tracker(graph, owner=6)
        t.add_failure(0, 2)
        assert (0, 5) in t.graphs[0].edges
        t.add_failure(0, 5)
        assert (0, 5) not in t.graphs[0].edges
        assert 5 not in t.graphs[0].vertices   # pruned: unreachable

    def test_duplicate_notification_is_noop(self):
        graph = binomial_graph(9)
        t = make_tracker(graph, owner=6)
        assert t.add_failure(0, 2) is True
        before = t.snapshot()
        assert t.add_failure(0, 2) is False
        assert t.snapshot() == before

    def test_notifications_from_all_successors_stop_tracking(self):
        """If every successor of a failed server reports the failure, nobody
        can have its message: the tracking digraph must empty (line 39)."""
        graph = binomial_graph(9)
        t = make_tracker(graph, owner=6)
        for reporter in graph.successors(0):
            t.add_failure(0, reporter)
        assert t.graphs[0].is_empty

    def test_failure_of_already_failed_successor_cascades(self):
        """Figure 2b: after p0 and p1 both fail, g6[p1] contains p0's
        successors too (p0 may have received m1 and passed it on)."""
        graph = binomial_graph(9)
        t = make_tracker(graph, owner=6)
        t.add_failure(0, 2)
        t.add_failure(0, 5)
        t.add_failure(1, 3)
        g1 = t.graphs[1]
        # p1's successors (except the reporter p3) are now suspects for m1
        for succ in graph.successors(1):
            if succ not in (3,):
                assert succ in g1.vertices
        # p0 is a successor of p1 and is known failed, so p0's successors
        # (except those that already reported p0) are suspects as well
        for succ in graph.successors(0):
            if succ not in (2, 5):
                assert succ in g1.vertices

    def test_message_received_clears_even_after_expansion(self):
        graph = binomial_graph(9)
        t = make_tracker(graph, owner=6)
        t.add_failure(1, 3)
        assert not t.graphs[1].is_empty
        t.message_received(1)
        assert t.graphs[1].is_empty

    def test_storage_size_bounded(self):
        """Table 2: tracking digraphs take O(f²·d) space."""
        graph = gs_digraph(32, 4)
        t = make_tracker(graph, owner=0, members=range(32))
        f = 3
        for failed, reporter in [(1, g) for g in graph.successors(1)[:2]] + \
                                [(2, graph.successors(2)[0]),
                                 (3, graph.successors(3)[0])]:
            t.add_failure(failed, reporter)
        # crude constant: 4 * f^2 * d covers vertices + edges comfortably
        assert t.storage_size() <= 4 * (f + 1) ** 2 * graph.degree * 4

    def test_failure_of_nonmember_ignored_gracefully(self):
        graph = complete_digraph(6)
        t = make_tracker(graph, owner=0, members=[0, 1, 2, 3])
        # server 4 is not a member this round; its graphs aren't tracked
        assert 4 not in t.graphs
        t.add_failure(4, 5)   # recorded in F_i but affects no tracking graph
        assert t.all_done() is False
        assert (4, 5) in t.failure_pairs
