"""Simulated cluster: multi-round runs, failure handling, membership."""

import pytest

from repro.core import AllConcurConfig, Batch, ClusterOptions, SimCluster
from repro.graphs import binomial_graph, gs_digraph
from repro.sim import IBV_PARAMS, TCP_PARAMS


def make_cluster(n=8, d=3, auto_advance=False, **opts):
    graph = gs_digraph(n, d)
    return SimCluster(graph,
                      config=AllConcurConfig(graph=graph,
                                             auto_advance=auto_advance),
                      options=ClusterOptions(**opts))


class TestFailureFreeRounds:
    def test_single_round_all_deliver(self):
        cluster = make_cluster()
        cluster.start_all()
        cluster.run_until_round(0)
        assert cluster.min_delivered_rounds() == 1
        assert cluster.verify_agreement()
        assert cluster.delivered_sets(0)[0] == tuple(range(8))

    def test_round_latency_close_to_logp_work_bound(self):
        """§4.1: the work bound 2(n-1)·d·o is a good indicator of the round
        time; the simulated value must be within a small factor of it."""
        from repro.analysis import work_bound

        cluster = make_cluster(params=TCP_PARAMS)
        cluster.start_all()
        cluster.run_until_round(0)
        latency = cluster.trace.agreement_latency(0)
        bound = work_bound(8, 3, TCP_PARAMS.o)
        assert latency <= 3.0 * bound
        assert latency >= 0.2 * bound

    def test_multiple_rounds_auto_advance(self):
        cluster = make_cluster(auto_advance=True)
        for pid in cluster.members:
            cluster.server(pid).submit_synthetic(50, 8)
        cluster.start_all()
        cluster.run_until_round(4)
        assert cluster.min_delivered_rounds() >= 5
        assert cluster.verify_agreement()

    def test_messages_per_server_matches_work_model(self):
        """§4.1: without failures each server receives (n-1)·d + own-related
        traffic; check the per-server receive count is close to n·d."""
        cluster = make_cluster(n=8, d=3)
        cluster.start_all()
        cluster.run_until_round(0)
        received = cluster.network.stats.per_process_received
        for pid, count in received.items():
            assert count <= 8 * 3
            assert count >= (8 - 1) * 1

    def test_deterministic_given_seed(self):
        def run(seed):
            cluster = make_cluster(seed=seed)
            cluster.start_all()
            cluster.run_until_round(0)
            return cluster.sim.now, cluster.sim.events_processed

        assert run(7) == run(7)
        # with a deterministic (jitter-free) network the seed does not even
        # matter — the run is a pure function of the configuration
        assert run(7) == run(8)

    def test_ibv_faster_than_tcp(self):
        def latency(params):
            cluster = make_cluster(params=params)
            cluster.start_all()
            cluster.run_until_round(0)
            return cluster.trace.agreement_latency(0)

        assert latency(IBV_PARAMS) < latency(TCP_PARAMS)

    def test_empty_round_payloads_allowed(self):
        cluster = make_cluster()
        cluster.start_all(payloads={0: Batch.synthetic(1, 64)})
        cluster.run_until_round(0)
        sets = cluster.delivered_sets(0)
        assert all(v == tuple(range(8)) for v in sets.values())


class TestFailures:
    def test_one_silent_failure_before_broadcast(self):
        cluster = make_cluster(n=8, d=3, detection_delay=30e-6)
        cluster.fail_server(5)
        cluster.start_all()
        cluster.run(max_events=5_000_000)
        alive = cluster.alive_members
        assert all(cluster.server(p).delivered_rounds == 1 for p in alive)
        assert cluster.verify_agreement()
        sets = cluster.delivered_sets(0)
        assert all(5 not in s for s in sets.values())

    def test_failure_mid_broadcast_partial_send(self):
        cluster = make_cluster(n=11, d=3, detection_delay=30e-6)
        cluster.fail_after_sends(2, 1)
        cluster.start_all()
        cluster.run(max_events=10_000_000)
        assert cluster.verify_agreement()
        # whatever the outcome for m2, every alive server agrees on it
        sets = set(cluster.delivered_sets(0).values())
        assert len(sets) == 1

    def test_up_to_f_failures_still_terminate(self):
        """GS(8,3) tolerates f = 2 failures (k = 3): with two crashed servers
        every survivor must still terminate and agree."""
        cluster = make_cluster(n=8, d=3, detection_delay=30e-6)
        cluster.fail_server(1)
        cluster.fail_server(4)
        cluster.start_all()
        cluster.run(max_events=10_000_000)
        alive = cluster.alive_members
        assert len(alive) == 6
        assert all(cluster.server(p).delivered_rounds == 1 for p in alive)
        assert cluster.verify_agreement()

    def test_failed_servers_removed_from_next_round(self):
        cluster = make_cluster(n=8, d=3, auto_advance=True,
                               detection_delay=30e-6)
        cluster.fail_server(3)
        cluster.start_all()
        cluster.run_until_round(1)
        for pid in cluster.alive_members:
            assert 3 not in cluster.server(pid).members

    def test_failure_in_later_round(self):
        cluster = make_cluster(n=8, d=3, auto_advance=True,
                               detection_delay=30e-6)
        cluster.start_all()
        cluster.run_until_round(0)
        cluster.fail_server(6)
        cluster.run_until_round(3)
        assert cluster.verify_agreement()
        assert cluster.min_delivered_rounds() >= 4

    def test_heartbeat_detector_unavailability_window(self):
        """With a heartbeat FD (Δto = 100 ms) a failure stalls the round for
        roughly the timeout (Figure 7's ~190 ms unavailability)."""
        graph = gs_digraph(8, 3)
        cluster = SimCluster(
            graph,
            config=AllConcurConfig(graph=graph, auto_advance=False),
            options=ClusterOptions(params=IBV_PARAMS, detector="heartbeat",
                                   heartbeat_period=10e-3,
                                   heartbeat_timeout=100e-3))
        cluster.fail_server(2)
        cluster.start_all()
        cluster.run(max_events=5_000_000)
        assert cluster.verify_agreement()
        completion = cluster.trace.round_completion_time(0)
        assert 90e-3 <= completion <= 250e-3

    def test_network_stats_count_failure_notifications(self):
        """§4.1: each failure causes at most d² notifications per server."""
        cluster = make_cluster(n=8, d=3, detection_delay=30e-6)
        baseline = make_cluster(n=8, d=3)
        for c in (cluster, baseline):
            if c is cluster:
                c.fail_server(1)
            c.start_all()
            c.run(max_events=5_000_000)
        extra = cluster.network.stats.messages_sent \
            - baseline.network.stats.messages_sent
        # at most n * d² extra messages for one failure (very loose)
        assert extra <= 8 * 3 * 3


class TestMembershipReconfiguration:
    def test_rejoin_after_failure(self):
        cluster = make_cluster(n=8, d=3, auto_advance=True,
                               detection_delay=30e-6)
        cluster.start_all()
        cluster.run_until_round(0)
        cluster.fail_server(2)
        cluster.run_until_round(2)
        assert 2 not in cluster.server(0).members
        # reconfigure at a round boundary: 2 rejoins with its old id
        cluster.reconfigure(add=(2,))
        cluster.start_all()
        cluster.run_until_round(1)
        assert 2 in cluster.members
        assert 2 in cluster.server(0).members
        assert cluster.verify_agreement()
        assert cluster.trace_history, "previous epoch trace archived"

    def test_reconfigure_validates_vertex(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.reconfigure(add=(99,))

    def test_queues_preserved_across_reconfiguration(self):
        cluster = make_cluster(auto_advance=False)
        cluster.server(0).submit_synthetic(7, 64)
        cluster.reconfigure(add=())
        assert cluster.server(0).queue.pending_requests == 7

    def test_trace_history_archives_each_epoch(self):
        """Every reconfiguration archives the epoch's RoundTrace; timelines
        are in absolute simulated time so epochs concatenate naturally."""
        cluster = make_cluster(n=8, d=3, auto_advance=False)
        first_trace = cluster.trace
        epoch_ends = []
        for _ in range(3):
            cluster.start_all()
            cluster.run_until_round(0)
            epoch_ends.append(cluster.sim.now)
            cluster.reconfigure()
        assert len(cluster.trace_history) == 3
        assert cluster.trace_history[0] is first_trace
        assert cluster.trace not in cluster.trace_history
        # each archived epoch recorded its round 0, stamped within the
        # epoch's absolute time span (monotonically increasing)
        previous_end = 0.0
        for trace, end in zip(cluster.trace_history, epoch_ends):
            completion = trace.round_completion_time(0)
            assert previous_end < completion <= end
            previous_end = end
        # the fresh trace is empty until the next epoch delivers
        with pytest.raises(ValueError):
            cluster.trace.round_completion_time(0)

    def test_pending_queue_survives_failure_and_rejoin(self):
        """Requests buffered at a surviving server stay queued through a
        failure epoch and a rejoin, and are agreed in the new epoch."""
        cluster = make_cluster(n=8, d=3, auto_advance=True,
                               detection_delay=30e-6)
        cluster.start_all()
        cluster.run_until_round(0)
        cluster.fail_server(2)
        # round 1 still delivers 2's in-flight broadcast; the removal lands
        # in round 2 (same timing as test_rejoin_after_failure)
        cluster.run_until_round(2)
        from repro.core import Request

        cluster.server(3).submit(
            Request(origin=3, seq=0, nbytes=64, data="buffered"))
        assert 2 not in cluster.server(0).members
        cluster.reconfigure(add=(2,))
        # the pending request survived the node-set rebuild
        assert cluster.server(3).queue.pending_requests == 1
        cluster.start_all()
        cluster.run_until_round(0)
        assert cluster.verify_agreement()
        delivered = [req.data
                     for _o, batch in cluster.server(2).history[0].messages
                     for req in batch.requests]
        assert delivered == ["buffered"]
        assert cluster.server(3).queue.pending_requests == 0

    def test_delivered_sets_on_post_reconfigure_epoch(self):
        """delivered_sets reads the current epoch's round numbering: after
        a rejoin, round 0 is the new epoch's first round and includes the
        rejoined server's origin again."""
        cluster = make_cluster(n=8, d=3, auto_advance=True,
                               detection_delay=30e-6)
        cluster.start_all()
        cluster.run_until_round(0)
        cluster.fail_server(5)
        # 5's round-1 broadcast is already in flight; its absence shows in
        # round 2, the first round started after the crash
        cluster.run_until_round(2)
        pre = cluster.delivered_sets(2)
        assert pre and all(5 not in origins for origins in pre.values())
        cluster.reconfigure(add=(5,))
        cluster.start_all()
        cluster.run_until_round(0)
        post = cluster.delivered_sets(0)
        assert set(post) == set(range(8))
        assert all(origins == tuple(range(8))
                   for origins in post.values())


class TestReconfigureResourceHygiene:
    def test_reconfigure_does_not_leak_injector_listeners(self):
        from repro.core import AllConcurConfig, SimCluster
        from repro.graphs import gs_digraph

        g = gs_digraph(8, 3)
        cluster = SimCluster(g, config=AllConcurConfig(graph=g))
        cluster.start_all()
        cluster.run_until_round(0)
        baseline = len(cluster.injector._listeners)
        for _ in range(3):
            cluster.reconfigure()
            cluster.start_all()
            cluster.run_until_round(0)
        # old node generations deregistered; only the fresh node set (and
        # the cluster/detector listeners) remain subscribed
        assert len(cluster.injector._listeners) <= baseline
        assert cluster.verify_agreement()
