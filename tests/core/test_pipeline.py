"""Round pipelining: per-round state isolation, the k-deep window, future
and stale message handling, and the membership-change barrier."""

import pytest

from repro.core import (
    AllConcurConfig,
    AllConcurServer,
    Batch,
    Broadcast,
    ClusterOptions,
    Deliver,
    FailureNotice,
    RoundContext,
    Send,
    SimCluster,
)
from repro.graphs import complete_digraph, gs_digraph


def config(graph=None, depth=2, **kwargs):
    graph = graph if graph is not None else complete_digraph(3)
    kwargs.setdefault("auto_advance", False)
    return AllConcurConfig(graph=graph, pipeline_depth=depth, **kwargs)


def sends(effects):
    return [e for e in effects if isinstance(e, Send)]


def delivers(effects):
    return [e for e in effects if isinstance(e, Deliver)]


def bcast(rnd, origin):
    return Broadcast(round=rnd, origin=origin, payload=Batch.empty())


class TestConfigAndWindow:
    def test_depth_defaults_to_sequential(self):
        cfg = AllConcurConfig(graph=gs_digraph(6, 3))
        assert cfg.pipeline_depth == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            AllConcurConfig(graph=gs_digraph(6, 3), pipeline_depth=0)

    def test_initial_window(self):
        assert AllConcurServer(0, config(depth=1)).active_rounds == (0,)
        assert AllConcurServer(0, config(depth=3)).active_rounds == (0, 1, 2)

    def test_round_contexts_are_isolated(self):
        server = AllConcurServer(0, config(depth=2))
        c0, c1 = server.round_context(0), server.round_context(1)
        assert isinstance(c0, RoundContext) and isinstance(c1, RoundContext)
        assert c0.round == 0 and c1.round == 1
        assert c0.tracker is not c1.tracker
        assert c0.partition is not c1.partition
        server.handle_message(1, bcast(0, 1))
        assert 1 in c0.known and 1 not in c1.known

    def test_start_round_fills_slots_in_order(self):
        server = AllConcurServer(0, config(depth=2))
        (s0,) = sends(server.start_round())
        assert s0.message.round == 0
        (s1,) = sends(server.start_round())
        assert s1.message.round == 1
        assert server.start_round() == []        # window full

    def test_fill_window_broadcasts_every_slot(self):
        server = AllConcurServer(0, config(depth=3))
        effects = server.fill_window(payload=Batch.synthetic(2, 8))
        rounds = [s.message.round for s in sends(effects)]
        assert rounds == [0, 1, 2]
        # the explicit payload goes to the first slot only
        assert sends(effects)[0].message.payload.count == 2
        assert sends(effects)[1].message.payload.count == 0


class TestFutureAndStaleMessages:
    def test_message_beyond_window_buffered(self):
        """A broadcast k rounds ahead of the frontier must be buffered, for
        any depth."""
        for depth in (1, 2):
            server = AllConcurServer(0, config(depth=depth))
            assert server.handle_message(1, bcast(depth, 1)) == []
            for ctx_round in server.active_rounds:
                assert 1 not in server.round_context(ctx_round).known

    def test_message_k_plus_one_rounds_ahead_replayed_on_admission(self):
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        # round 2 is one past the window: buffered
        assert server.handle_message(1, bcast(2, 1)) == []
        # complete round 0 -> round 2 admitted -> buffered message replayed
        server.handle_message(1, bcast(0, 1))
        server.handle_message(2, bcast(0, 2))
        assert server.round == 1
        assert server.active_rounds == (1, 2)
        assert 1 in server.round_context(2).known

    def test_window_round_message_processed_immediately(self):
        server = AllConcurServer(0, config(depth=2))
        effects = server.handle_message(1, bcast(1, 1))
        assert 1 in server.round_context(1).known
        # line 15: the reaction fills every open slot up to the received
        # round (0 then 1) and forwards the received message
        own = [s.message.round for s in sends(effects)
               if isinstance(s.message, Broadcast) and s.message.origin == 0]
        assert own == [0, 1]
        assert any(s.message.origin == 1 for s in sends(effects))

    def test_reaction_preserves_per_sender_fifo(self):
        """Pending requests must drain into the *lowest* open round even
        when the triggering broadcast is for a later window round, so a
        sender's requests are A-delivered in submission order."""
        from repro.core import Request

        server = AllConcurServer(0, config(depth=2))
        server.submit(Request(origin=0, seq=0, nbytes=8, data="first"))
        server.handle_message(1, bcast(1, 1))   # round-1 message arrives early
        assert server.round_context(0).known[0].count == 1
        assert server.round_context(0).known[0].requests[0].data == "first"
        assert server.round_context(1).known[0].is_empty

    def test_stale_broadcast_from_delivered_round_ignored(self):
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        server.handle_message(1, bcast(0, 1))
        server.handle_message(2, bcast(0, 2))
        assert server.round == 1                 # round 0 delivered
        # a round-0 duplicate from a confused peer: no new information
        effects = server.handle_message(1, bcast(0, 1))
        assert not sends(effects)
        assert not delivers(effects)

    def test_stale_broadcast_while_later_round_in_flight(self):
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        server.handle_message(1, bcast(1, 1))    # round 1 progressing
        server.handle_message(1, bcast(0, 1))
        server.handle_message(2, bcast(0, 2))
        assert server.round == 1
        effects = server.handle_message(2, bcast(0, 2))
        assert not sends(effects)


class TestInOrderDelivery:
    def test_round_completing_early_waits_for_frontier(self):
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        e1 = server.handle_message(1, bcast(1, 1))
        e2 = server.handle_message(2, bcast(1, 2))
        # round 1 has every message, but round 0 has not delivered yet
        assert server.round_context(1).tracking_complete()
        assert not delivers(e1 + e2)
        assert server.delivered_rounds == 0

    def test_delivery_cascades_in_round_order(self):
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        server.handle_message(1, bcast(1, 1))
        server.handle_message(2, bcast(1, 2))
        server.handle_message(1, bcast(0, 1))
        effects = server.handle_message(2, bcast(0, 2))
        assert [d.round for d in delivers(effects)] == [0, 1]
        assert [h.round for h in server.history] == [0, 1]
        assert server.round == 2
        assert server.active_rounds == (2, 3)


class TestCarryoverAcrossWindow:
    def test_carryover_failure_rebroadcast_into_admitted_round(self):
        """A failure pair recorded in round 0 (whose target's message was
        still delivered) must be re-broadcast into the round admitted at the
        far end of the window while round 1 is still in flight."""
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        server.handle_message(1, bcast(0, 1))
        server.handle_message(1, FailureNotice(round=0, failed=2, reporter=1))
        # the pair feeds every later in-flight round, not only round 0
        assert (2, 1) in server.round_context(1).tracker.failure_pairs
        effects = server.handle_message(2, bcast(0, 2))
        (deliver,) = delivers(effects)
        assert deliver.round == 0 and deliver.removed == ()
        # round 2 was admitted (round 1 still undelivered) and the pair was
        # re-announced with the new round tag
        assert server.active_rounds == (1, 2)
        renotified = [s for s in sends(effects)
                      if isinstance(s.message, FailureNotice)
                      and s.message.round == 2 and s.message.pair == (2, 1)]
        assert renotified


class TestMembershipBarrier:
    def test_removal_drains_window_before_new_epoch(self):
        server = AllConcurServer(0, config(depth=2))
        server.fill_window()
        server.handle_message(1, bcast(0, 1))
        server.notify_failure(2)
        effects = server.handle_message(
            1, FailureNotice(round=0, failed=2, reporter=1))
        (deliver,) = delivers(effects)
        assert deliver.round == 0 and deliver.removed == (2,)
        # barrier engaged: the drain round keeps the old membership and no
        # round beyond the epoch is admitted
        assert server.round == 1
        assert server.members == (0, 1, 2)
        assert server.active_rounds == (1,)
        assert server.round_context(1).members == (0, 1, 2)
        # messages for the next epoch are buffered during the drain
        assert server.handle_message(1, bcast(2, 1)) == []
        # the drain round completes (2's round-1 message is pruned by the
        # failure evidence already applied to its tracker); the epoch
        # change admits round 2 with the new membership, replays the
        # buffered round-2 broadcast — and that reaction completes round 2
        # in the same cascade (line 15)
        effects = server.handle_message(1, bcast(1, 1))
        dels = delivers(effects)
        assert [d.round for d in dels] == [1, 2]
        assert dels[0].removed == (2,)
        assert dels[1].removed == ()
        assert dels[1].messages[0][0] == 0 and dels[1].messages[1][0] == 1
        # epoch change: new membership, fresh window
        assert server.members == (0, 1)
        assert server.active_rounds == (3, 4)
        assert server.round_context(3).members == (0, 1)
        # failure pairs about the removed server are dropped, not re-sent
        stale = [s for s in sends(effects)
                 if isinstance(s.message, FailureNotice)
                 and s.message.round >= 2]
        assert not stale

    def test_depth1_epoch_change_is_immediate(self):
        """With pipeline_depth=1 the barrier degenerates to the sequential
        behaviour: the round after a removal already uses the shrunk
        membership."""
        server = AllConcurServer(0, config(depth=1))
        server.start_round()
        server.handle_message(1, bcast(0, 1))
        server.notify_failure(2)
        server.handle_message(1, FailureNotice(round=0, failed=2, reporter=1))
        assert server.round == 1
        assert server.members == (0, 1)
        assert server.round_context(1).members == (0, 1)


class TestPipelinedSimulation:
    @pytest.mark.parametrize("depth", [2, 4])
    def test_failure_free_pipelined_rounds_agree(self, depth):
        graph = gs_digraph(8, 3)
        cfg = AllConcurConfig(graph=graph, auto_advance=True,
                              pipeline_depth=depth)
        cluster = SimCluster(graph, config=cfg)
        for pid in cluster.members:
            cluster.server(pid).submit_synthetic(50, 8)
        cluster.start_all()
        cluster.run_until_round(5)
        assert cluster.min_delivered_rounds() >= 6
        assert cluster.verify_agreement()

    @pytest.mark.parametrize("depth", [2, 4])
    def test_pipelined_rounds_with_failures_agree(self, depth):
        cluster = SimCluster(
            gs_digraph(8, 3),
            config=AllConcurConfig(graph=gs_digraph(8, 3), auto_advance=True,
                                   pipeline_depth=depth),
            options=ClusterOptions(detection_delay=30e-6))
        cluster.fail_server(3)
        cluster.fail_after_sends(5, 1)
        cluster.start_all()
        cluster.run_until_round(4, max_events=10_000_000)
        alive = cluster.alive_members
        assert all(cluster.server(p).delivered_rounds >= 5 for p in alive)
        assert cluster.verify_agreement()
        for pid in alive:
            assert 3 not in cluster.server(pid).members
            assert 5 not in cluster.server(pid).members

    @pytest.mark.parametrize("depth", [2, 4])
    def test_eventual_fd_mode_with_pipelined_rounds(self, depth):
        """◇P mode at depth > 1: every in-flight round must decide (FWD/BWD
        majority) independently, and frontier delivery still waits for the
        surviving-partition gate — with and without a real failure."""
        from repro.core import FDMode

        graph = gs_digraph(8, 3)
        cfg = AllConcurConfig(graph=graph, fd_mode=FDMode.EVENTUAL,
                              auto_advance=True, pipeline_depth=depth)
        cluster = SimCluster(graph, config=cfg,
                             options=ClusterOptions(detection_delay=30e-6))
        for pid in cluster.members:
            cluster.server(pid).submit_synthetic(30, 8)
        cluster.fail_server(4)
        cluster.start_all()
        cluster.run_until_round(3, max_events=10_000_000)
        alive = cluster.alive_members
        assert all(cluster.server(p).delivered_rounds >= 4 for p in alive)
        assert cluster.verify_agreement()
        for pid in alive:
            assert 4 not in cluster.server(pid).members

    def test_pipelined_faster_than_sequential(self):
        """Completing the same number of fixed-batch rounds takes less
        simulated time with a deeper pipeline (the whole point)."""
        def completion_time(depth):
            graph = gs_digraph(8, 3)
            cfg = AllConcurConfig(graph=graph, auto_advance=True,
                                  pipeline_depth=depth)
            cluster = SimCluster(graph, config=cfg)
            for pid in cluster.members:
                cluster.server(pid).queue.max_batch = 64
                cluster.server(pid).submit_synthetic(64 * 30, 8)
            cluster.start_all()
            cluster.run_until_round(15)
            assert cluster.verify_agreement()
            return cluster.trace.round_completion_time(15)

        assert completion_time(4) < completion_time(1)
