"""MembershipIndex and bitmask helper tests."""

import pytest

from repro.core import MembershipIndex, bits_tuple, iter_bits, mask_of
from repro.graphs import binomial_graph, complete_digraph, gs_digraph


class TestMaskHelpers:
    def test_mask_of_roundtrip(self):
        ids = (0, 3, 7, 12)
        assert bits_tuple(mask_of(ids)) == ids

    def test_mask_of_empty(self):
        assert mask_of(()) == 0
        assert bits_tuple(0) == ()

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_iter_bits_large_positions(self):
        mask = (1 << 200) | (1 << 3)
        assert list(iter_bits(mask)) == [3, 200]

    def test_popcount_matches(self):
        mask = mask_of(range(0, 50, 3))
        assert mask.bit_count() == len(range(0, 50, 3))


class TestMembershipIndex:
    def test_succ_and_pred_masks_match_graph(self):
        g = gs_digraph(16, 4)
        idx = MembershipIndex.for_graph(g)
        for v in g.vertices():
            assert bits_tuple(idx.succ_mask[v]) == g.successors(v)
            assert bits_tuple(idx.pred_mask[v]) == g.predecessors(v)

    def test_all_mask(self):
        g = binomial_graph(9)
        idx = MembershipIndex.for_graph(g)
        assert idx.all_mask == (1 << 9) - 1
        assert bits_tuple(idx.all_mask) == tuple(range(9))

    def test_cache_shares_instances(self):
        g = gs_digraph(8, 3)
        assert MembershipIndex.for_graph(g) is MembershipIndex.for_graph(g)

    def test_membership_restriction(self):
        g = complete_digraph(6)
        idx = MembershipIndex.for_graph(g)
        members = mask_of((0, 1, 2, 3))
        assert idx.successors_in(1, members) == (0, 2, 3)
        assert idx.predecessors_in(0, members) == (1, 2, 3)

    def test_restriction_matches_set_filter(self):
        g = gs_digraph(22, 4)
        idx = MembershipIndex.for_graph(g)
        members = (0, 2, 5, 7, 9, 13, 17, 21)
        mmask = mask_of(members)
        alive = set(members)
        for v in g.vertices():
            expected = tuple(s for s in g.successors(v) if s in alive)
            assert idx.successors_in(v, mmask) == expected
