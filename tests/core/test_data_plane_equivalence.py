"""Differential tests: the bitmask data plane is behaviourally identical to
the legacy set plane.

Two oracles:

* **operation level** — the same randomized sequence of tracker operations
  (failure notifications, message receipts) drives a legacy
  :class:`~repro.core.tracking.MessageTracker` and a
  :class:`~repro.core.tracking.BitmaskMessageTracker`; after every single
  operation the full digraph snapshots must coincide;
* **system level** — the same randomized failure script (silent crashes,
  §2.3-style partial sends, timed crashes) runs through two complete
  packet-level clusters that differ only in ``AllConcurConfig.data_plane``;
  the A-delivery sequences (rounds, ordered message sets, removal sets),
  the surviving trackers and the failure knowledge must be identical at
  every alive server.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    AllConcurConfig,
    BitmaskMessageTracker,
    ClusterOptions,
    MembershipIndex,
    MessageTracker,
    SimCluster,
)
from repro.graphs import gs_digraph
from repro.sim import IBV_PARAMS

N = 8
DEGREE = 3
GRAPH = gs_digraph(N, DEGREE)


# --------------------------------------------------------------------- #
# Operation-level differential
# --------------------------------------------------------------------- #
@st.composite
def tracker_ops(draw):
    """A random interleaving of message receipts and failure notices."""
    count = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["recv", "fail"]))
        if kind == "recv":
            ops.append(("recv", draw(st.integers(0, N - 1)), 0))
        else:
            failed = draw(st.integers(0, N - 1))
            reporters = GRAPH.successors(failed)
            reporter = draw(st.sampled_from(list(reporters)))
            ops.append(("fail", failed, reporter))
    return ops


class TestTrackerOpEquivalence:
    @given(tracker_ops(), st.integers(0, N - 1))
    @settings(max_examples=200, deadline=None)
    def test_same_state_after_every_op(self, ops, owner):
        legacy = MessageTracker(owner, range(N), GRAPH.successors)
        bitmask = BitmaskMessageTracker(owner, range(N),
                                        MembershipIndex.for_graph(GRAPH))
        assert dict(legacy.snapshot()) == dict(bitmask.snapshot())
        for kind, a, b in ops:
            if kind == "recv":
                legacy.message_received(a)
                bitmask.message_received(a)
            else:
                assert legacy.add_failure(a, b) == bitmask.add_failure(a, b)
            assert dict(legacy.snapshot()) == dict(bitmask.snapshot())
            assert legacy.all_done() == bitmask.all_done()
            assert legacy.pending_targets() == bitmask.pending_targets()
            assert legacy.failure_pairs == bitmask.failure_pairs
            assert legacy.failed_servers == bitmask.failed_servers
            assert legacy.storage_size() == bitmask.storage_size()

    @given(st.integers(0, N - 1))
    @settings(max_examples=10, deadline=None)
    def test_round_successors_match(self, p):
        legacy = MessageTracker(0, range(N), GRAPH.successors)
        bitmask = BitmaskMessageTracker(0, range(N),
                                        MembershipIndex.for_graph(GRAPH))
        assert legacy.round_successors(p) == bitmask.round_successors(p)


# --------------------------------------------------------------------- #
# System-level differential
# --------------------------------------------------------------------- #
@st.composite
def failure_scenarios(draw):
    """Up to k-1 failures, each either silent, partial-send or time-based."""
    count = draw(st.integers(min_value=0, max_value=DEGREE - 1))
    victims = draw(st.lists(st.integers(0, N - 1), min_size=count,
                            max_size=count, unique=True))
    modes = draw(st.lists(st.sampled_from(["silent", "partial", "timed"]),
                          min_size=count, max_size=count))
    budgets = draw(st.lists(st.integers(0, 6), min_size=count,
                            max_size=count))
    times = draw(st.lists(st.floats(1e-6, 2e-4), min_size=count,
                          max_size=count))
    seed = draw(st.integers(0, 2 ** 16))
    depth = draw(st.sampled_from([1, 2, 3]))
    return list(zip(victims, modes, budgets, times)), seed, depth


def run_plane(data_plane, scenario, seed, depth):
    cluster = SimCluster(
        GRAPH,
        config=AllConcurConfig(graph=GRAPH, auto_advance=False,
                               pipeline_depth=depth, data_plane=data_plane),
        options=ClusterOptions(params=IBV_PARAMS, seed=seed,
                               detection_delay=20e-6))
    for victim, mode, budget, at in scenario:
        if mode == "silent":
            cluster.fail_server(victim)
        elif mode == "partial":
            cluster.fail_after_sends(victim, budget)
        else:
            cluster.fail_server(victim, at=at)
    for pid in cluster.members:
        cluster.server(pid).submit_synthetic(1, 64)
    cluster.start_all()
    cluster.run(max_events=5_000_000)
    return cluster


class TestClusterEquivalence:
    @given(failure_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_identical_deliveries_and_tracker_state(self, scenario_seed):
        scenario, seed, depth = scenario_seed
        a = run_plane("bitmask", scenario, seed, depth)
        b = run_plane("set", scenario, seed, depth)
        assert a.alive_members == b.alive_members
        for pid in a.alive_members:
            sa, sb = a.server(pid), b.server(pid)
            # identical A-delivery sequences: rounds, ordered message
            # sets and removal sets
            ha = [(o.round, o.messages, o.removed) for o in sa.history]
            hb = [(o.round, o.messages, o.removed) for o in sb.history]
            assert ha == hb
            # identical frontier-round tracker state and failure knowledge
            assert dict(sa.tracker.snapshot()) == dict(sb.tracker.snapshot())
            assert sa.failure_pairs == sb.failure_pairs
            assert sa.known_messages == sb.known_messages
            assert sa.round == sb.round
            assert sa.members == sb.members

    @given(failure_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_bitmask_plane_is_the_default(self, scenario_seed):
        scenario, seed, depth = scenario_seed
        cluster = run_plane("bitmask", scenario, seed, depth)
        for pid in cluster.alive_members:
            assert isinstance(cluster.server(pid).tracker,
                              BitmaskMessageTracker)
