"""Unit tests of the sans-IO AllConcurServer state machine."""

import pytest

from repro.core import (
    AllConcurConfig,
    AllConcurServer,
    Batch,
    Broadcast,
    Deliver,
    FailureNotice,
    FDMode,
    Request,
    RoundAdvance,
    Send,
)
from repro.graphs import complete_digraph, gs_digraph


def config(graph=None, **kwargs):
    graph = graph if graph is not None else gs_digraph(6, 3)
    kwargs.setdefault("auto_advance", False)
    return AllConcurConfig(graph=graph, **kwargs)


def sends(effects):
    return [e for e in effects if isinstance(e, Send)]


def delivers(effects):
    return [e for e in effects if isinstance(e, Deliver)]


class TestConfig:
    def test_defaults(self):
        cfg = AllConcurConfig(graph=gs_digraph(8, 3))
        assert cfg.n == 8
        assert cfg.resilience == 2          # d - 1
        assert cfg.majority == 5
        assert cfg.fd_mode == FDMode.PERFECT

    def test_explicit_members(self):
        cfg = AllConcurConfig(graph=complete_digraph(6), members=(0, 2, 4))
        assert cfg.n == 3
        assert cfg.initial_members == (0, 2, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            AllConcurConfig(graph=gs_digraph(6, 3), fd_mode="sometimes")
        with pytest.raises(ValueError):
            AllConcurConfig(graph=gs_digraph(6, 3), f=-1)
        with pytest.raises(ValueError):
            AllConcurConfig(graph=gs_digraph(6, 3), members=(0, 99))


class TestBroadcastPath:
    def test_start_round_sends_to_successors(self):
        server = AllConcurServer(0, config())
        effects = server.start_round(payload=Batch.synthetic(1, 64))
        (send,) = sends(effects)
        assert isinstance(send.message, Broadcast)
        assert send.message.origin == 0
        assert send.targets == server.successors
        assert server.has_broadcast

    def test_start_round_idempotent(self):
        server = AllConcurServer(0, config())
        server.start_round()
        assert server.start_round() == []

    def test_receiving_broadcast_triggers_own_and_forwards(self):
        server = AllConcurServer(0, config())
        pred = server.predecessors[0]
        msg = Broadcast(round=0, origin=pred, payload=Batch.empty())
        effects = server.handle_message(pred, msg)
        out = sends(effects)
        origins = {s.message.origin for s in out}
        # it A-broadcasts its own message and forwards the received one
        assert origins == {0, pred}

    def test_duplicate_broadcast_not_reforwarded(self):
        server = AllConcurServer(0, config())
        server.start_round()
        pred = server.predecessors[0]
        msg = Broadcast(round=0, origin=pred, payload=Batch.empty())
        first = server.handle_message(pred, msg)
        assert sends(first)
        second = server.handle_message(pred, msg)
        assert not sends(second)

    def test_delivery_when_all_messages_received(self):
        server = AllConcurServer(0, config())
        server.start_round(payload=Batch.synthetic(2, 8))
        effects = []
        for origin in range(1, 6):
            msg = Broadcast(round=0, origin=origin,
                            payload=Batch.synthetic(1, 8))
            effects += server.handle_message(origin, msg)
        (deliver,) = delivers(effects)
        assert deliver.round == 0
        assert [o for o, _b in deliver.messages] == list(range(6))
        assert deliver.request_count == 2 + 5
        assert deliver.removed == ()
        assert server.delivered_rounds == 1

    def test_delivery_subscription_acks_requests_at_the_core_layer(self):
        """subscribe_deliveries streams RoundOutcomes in round order; each
        outcome carries the (round, origin, seq) coordinates of every
        agreed request — the sans-IO request-lifecycle hook."""
        server = AllConcurServer(0, config())
        acks = []

        def on_outcome(outcome):
            acks.append((outcome.round,
                         [(req.origin, req.seq)
                          for _o, batch in outcome.messages
                          for req in batch.requests]))

        server.subscribe_deliveries(on_outcome)
        server.submit(Request(origin=0, seq=0, nbytes=8, data="mine"))
        server.start_round()
        for origin in range(1, 6):
            payload = Batch.of([Request(origin=origin, seq=0, nbytes=8)]) \
                if origin == 2 else Batch.empty()
            server.handle_message(
                origin, Broadcast(round=0, origin=origin, payload=payload))
        assert acks == [(0, [(0, 0), (2, 0)])]
        server.unsubscribe_deliveries(on_outcome)
        server.unsubscribe_deliveries(on_outcome)   # absent: no-op
        server.start_round()
        for origin in range(1, 6):
            server.handle_message(
                origin, Broadcast(round=1, origin=origin,
                                  payload=Batch.empty()))
        assert server.delivered_rounds == 2 and len(acks) == 1

    def test_requests_drained_into_payload(self):
        server = AllConcurServer(0, config())
        server.submit(Request(origin=0, seq=0, nbytes=64, data="a"))
        server.submit(Request(origin=0, seq=1, nbytes=64, data="b"))
        effects = server.start_round()
        (send,) = sends(effects)
        assert send.message.payload.count == 2

    def test_future_round_message_buffered(self):
        server = AllConcurServer(0, config())
        msg = Broadcast(round=5, origin=1, payload=Batch.empty())
        assert server.handle_message(1, msg) == []
        assert 1 not in server.known_messages

    def test_stale_round_message_ignored(self):
        graph = complete_digraph(3)
        server = AllConcurServer(0, config(graph))
        server.start_round()
        for origin in (1, 2):
            server.handle_message(
                origin, Broadcast(round=0, origin=origin, payload=Batch.empty()))
        assert server.round == 1
        # stale round-0 message from a confused peer
        effects = server.handle_message(
            1, Broadcast(round=0, origin=1, payload=Batch.empty()))
        assert not sends(effects)

    def test_crashed_server_is_inert(self):
        server = AllConcurServer(0, config())
        server.crash()
        assert server.start_round() == []
        assert server.handle_message(
            1, Broadcast(round=0, origin=1, payload=Batch.empty())) == []


class TestFailurePath:
    def test_local_suspicion_generates_notification(self):
        server = AllConcurServer(0, config())
        server.start_round()
        pred = server.predecessors[0]
        effects = server.notify_failure(pred)
        out = sends(effects)
        assert any(isinstance(s.message, FailureNotice) and
                   s.message.pair == (pred, 0) for s in out)
        assert pred in server.ignored_predecessors

    def test_cannot_suspect_self_or_non_predecessor(self):
        server = AllConcurServer(0, config())
        with pytest.raises(ValueError):
            server.notify_failure(0)
        non_pred = next(p for p in range(6)
                        if p != 0 and p not in server.predecessors)
        with pytest.raises(ValueError):
            server.notify_failure(non_pred)

    def test_failure_notice_forwarded_once_per_round(self):
        server = AllConcurServer(0, config())
        server.start_round()
        notice = FailureNotice(round=0, failed=1, reporter=2)
        first = server.handle_message(2, notice)
        assert sends(first)
        second = server.handle_message(3, notice)
        assert not sends(second)

    def test_messages_from_suspected_predecessor_ignored(self):
        server = AllConcurServer(0, config())
        server.start_round()
        pred = server.predecessors[0]
        server.notify_failure(pred)
        effects = server.handle_message(
            pred, Broadcast(round=0, origin=pred, payload=Batch.empty()))
        assert not sends(effects)
        assert pred not in server.known_messages

    def test_removed_server_excluded_from_next_round(self):
        graph = complete_digraph(3)
        server = AllConcurServer(0, config(graph))
        server.start_round()
        server.handle_message(
            1, Broadcast(round=0, origin=1, payload=Batch.empty()))
        # server 2 fails without sending; both 0 and 1 report it
        server.notify_failure(2)
        effects = server.handle_message(
            1, FailureNotice(round=0, failed=2, reporter=1))
        (deliver,) = delivers(effects)
        assert deliver.removed == (2,)
        assert server.members == (0, 1)
        assert server.round == 1

    def test_carryover_failure_rebroadcast_next_round(self):
        """A server whose message was delivered but which failed later must
        have its failure notifications re-broadcast in the next round
        (Algorithm 1 lines 12-13)."""
        graph = complete_digraph(3)
        server = AllConcurServer(0, config(graph))
        server.start_round()
        # receive both messages, but also a failure notification about 2
        server.handle_message(
            1, Broadcast(round=0, origin=1, payload=Batch.empty()))
        server.handle_message(
            1, FailureNotice(round=0, failed=2, reporter=1))
        effects = server.handle_message(
            2, Broadcast(round=0, origin=2, payload=Batch.empty()))
        (deliver,) = delivers(effects)
        assert deliver.removed == ()           # m2 made it
        assert server.round == 1
        # the (2, 1) failure pair must be re-announced in round 1
        renotified = [s for s in sends(effects)
                      if isinstance(s.message, FailureNotice)
                      and s.message.round == 1 and s.message.pair == (2, 1)]
        assert renotified

    def test_stale_failure_notice_applies_to_current_round(self):
        server = AllConcurServer(0, config(complete_digraph(3)))
        server.start_round()
        server.handle_message(
            1, Broadcast(round=0, origin=1, payload=Batch.empty()))
        server.handle_message(
            2, Broadcast(round=0, origin=2, payload=Batch.empty()))
        assert server.round == 1
        server.start_round()
        # a FAIL tagged with the old round still counts against round 1
        effects = server.handle_message(
            1, FailureNotice(round=0, failed=2, reporter=1))
        forwarded = [s for s in sends(effects)
                     if isinstance(s.message, FailureNotice)]
        assert forwarded and forwarded[0].message.round == 1


class TestAutoAdvance:
    def test_next_round_started_automatically(self):
        graph = complete_digraph(3)
        cfg = AllConcurConfig(graph=graph, auto_advance=True)
        server = AllConcurServer(0, cfg)
        server.start_round()
        effects = []
        for origin in (1, 2):
            effects += server.handle_message(
                origin, Broadcast(round=0, origin=origin, payload=Batch.empty()))
        assert server.round == 1
        assert server.has_broadcast          # round 1 message already out
        advances = [e for e in effects if isinstance(e, RoundAdvance)]
        assert advances and advances[0].round == 1

    def test_buffered_future_messages_replayed(self):
        graph = complete_digraph(3)
        cfg = AllConcurConfig(graph=graph, auto_advance=True)
        server = AllConcurServer(0, cfg)
        server.start_round()
        # round-1 message arrives while still in round 0
        server.handle_message(
            1, Broadcast(round=1, origin=1, payload=Batch.empty()))
        effects = []
        for origin in (1, 2):
            effects += server.handle_message(
                origin, Broadcast(round=0, origin=origin, payload=Batch.empty()))
        # after advancing, the buffered round-1 message must be known
        assert server.round == 1
        assert 1 in server.known_messages
