"""Property-based tests of the protocol's safety invariants.

The key theorem (Corollary 3.5.1): with fewer than ``k(G)`` failures and a
perfect failure detector, AllConcur solves atomic broadcast — validity,
agreement, integrity and total order all hold.  We check them on randomly
generated failure scenarios.
"""

from hypothesis import given, settings, strategies as st

from repro.core import AllConcurConfig, ClusterOptions, SimCluster
from repro.graphs import gs_digraph
from repro.sim import IBV_PARAMS

#: overlay used by the random scenarios: GS(8,3), tolerating f < 3 failures
N = 8
DEGREE = 3


@st.composite
def failure_scenarios(draw):
    """Up to k-1 failures, each either silent, partial-send or time-based."""
    count = draw(st.integers(min_value=0, max_value=DEGREE - 1))
    victims = draw(st.lists(st.integers(0, N - 1), min_size=count,
                            max_size=count, unique=True))
    modes = draw(st.lists(st.sampled_from(["silent", "partial", "timed"]),
                          min_size=count, max_size=count))
    budgets = draw(st.lists(st.integers(0, 6), min_size=count,
                            max_size=count))
    times = draw(st.lists(st.floats(1e-6, 2e-4), min_size=count,
                          max_size=count))
    seed = draw(st.integers(0, 2 ** 16))
    return list(zip(victims, modes, budgets, times)), seed


def run_scenario(scenario, seed, pipeline_depth=1):
    graph = gs_digraph(N, DEGREE)
    cluster = SimCluster(
        graph,
        config=AllConcurConfig(graph=graph, auto_advance=False,
                               pipeline_depth=pipeline_depth),
        options=ClusterOptions(params=IBV_PARAMS, seed=seed,
                               detection_delay=20e-6))
    for victim, mode, budget, at in scenario:
        if mode == "silent":
            cluster.fail_server(victim)
        elif mode == "partial":
            cluster.fail_after_sends(victim, budget)
        else:
            cluster.fail_server(victim, at=at)
    for pid in cluster.members:
        cluster.server(pid).submit_synthetic(1, 64)
    cluster.start_all()
    cluster.run(max_events=5_000_000)
    return cluster


class TestAtomicBroadcastProperties:
    @given(failure_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_termination_and_agreement(self, scenario_seed):
        scenario, seed = scenario_seed
        cluster = run_scenario(scenario, seed)
        alive = cluster.alive_members
        # Validity/termination: every alive server finishes the round
        # (f < k(G), perfect FD).
        assert all(cluster.server(p).delivered_rounds >= 1 for p in alive)
        # Agreement + total order: identical ordered message sets everywhere.
        assert cluster.verify_agreement()

    @given(failure_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_integrity(self, scenario_seed):
        """Integrity: a delivered message was A-broadcast by its origin and
        is delivered at most once per server."""
        scenario, seed = scenario_seed
        cluster = run_scenario(scenario, seed)
        for pid in cluster.alive_members:
            history = cluster.server(pid).history
            for outcome in history:
                origins = [o for o, _b in outcome.messages]
                assert len(origins) == len(set(origins))
                assert all(0 <= o < N for o in origins)
                # a server never delivers a message from a server that was
                # not a member of that round
                assert set(origins) <= set(range(N))

    @given(failure_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_own_message_always_delivered_by_alive_origin(self, scenario_seed):
        """Validity: a non-faulty server's own message is always in the
        agreed set (it A-broadcast it and did not fail)."""
        scenario, seed = scenario_seed
        cluster = run_scenario(scenario, seed)
        for pid in cluster.alive_members:
            outcome = cluster.server(pid).history[0]
            assert pid in outcome.origins


class TestPipelinedAtomicBroadcastProperties:
    """The same safety invariants with a k-deep round pipeline: several
    rounds are in flight concurrently (all ``pipeline_depth`` window slots
    are A-broadcast up front), under random failure injection."""

    @given(failure_scenarios(), st.sampled_from([2, 3]))
    @settings(max_examples=20, deadline=None)
    def test_termination_and_agreement(self, scenario_seed, depth):
        scenario, seed = scenario_seed
        cluster = run_scenario(scenario, seed, pipeline_depth=depth)
        alive = cluster.alive_members
        # every window round terminates at every alive server
        assert all(cluster.server(p).delivered_rounds >= depth
                   for p in alive)
        # Agreement + total order across all concurrently-run rounds.
        assert cluster.verify_agreement()

    @given(failure_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_delivery_strictly_in_round_order(self, scenario_seed):
        scenario, seed = scenario_seed
        cluster = run_scenario(scenario, seed, pipeline_depth=3)
        for pid in cluster.alive_members:
            history = cluster.server(pid).history
            assert [h.round for h in history] == list(range(len(history)))

    @given(failure_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_own_message_delivered_in_every_window_round(self, scenario_seed):
        scenario, seed = scenario_seed
        cluster = run_scenario(scenario, seed, pipeline_depth=2)
        for pid in cluster.alive_members:
            for outcome in cluster.server(pid).history[:2]:
                assert pid in outcome.origins
