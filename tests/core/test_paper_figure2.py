"""Scenario test reproducing Figure 2 of the paper, end to end.

Nine servers on a binomial graph.  ``p0`` fails after sending its message to
``p1`` only; ``p1`` receives it but fails before forwarding anything.  The
paper uses this scenario to explain early termination: every other server
must terminate the round *without* ``m0`` (no non-faulty server has it) but
*with* ``m1`` only if it actually survived — here ``p1`` fails before
forwarding ``m1`` as well, so the round completes with the remaining seven
messages, identically everywhere.
"""

import pytest

from repro.core import AllConcurConfig, Batch, ClusterOptions, SimCluster
from repro.graphs import binomial_graph
from repro.sim import TCP_PARAMS


@pytest.fixture
def figure2_cluster():
    graph = binomial_graph(9)
    cluster = SimCluster(
        graph,
        config=AllConcurConfig(graph=graph, auto_advance=False),
        options=ClusterOptions(params=TCP_PARAMS, detection_delay=50e-6),
    )
    return cluster


def test_p0_partial_send_p1_silent(figure2_cluster):
    cluster = figure2_cluster
    graph = cluster.graph
    # p0 manages exactly one send (to its first successor, which is p1);
    # p1 fails immediately, before it can send anything at all.
    assert graph.successors(0)[0] == 1
    cluster.fail_after_sends(0, 1)
    cluster.fail_after_sends(1, 0)

    cluster.start_all()
    cluster.run(max_events=5_000_000)

    alive = [p for p in range(9) if p not in (0, 1)]
    # every alive server finished the round
    for pid in alive:
        assert cluster.server(pid).delivered_rounds == 1, pid
    # and they all delivered the same set (set agreement, Lemma 3.5)
    assert cluster.verify_agreement()
    sets = cluster.delivered_sets(0)
    reference = sets[alive[0]]
    assert all(sets[pid] == reference for pid in alive)
    # m0 and m1 are lost: p0 only reached the (also faulty) p1, and p1 never
    # forwarded anything
    assert 0 not in reference
    assert 1 not in reference
    assert set(reference) == set(alive)
    # the failed servers are tagged for removal from the next round
    outcome = cluster.server(alive[0]).history[0]
    assert set(outcome.removed) == {0, 1}


def test_m0_survives_if_p1_forwards_before_failing(figure2_cluster):
    """Variation: p1 forwards m0 to one healthy successor before failing —
    then m0 must be delivered by everyone (agreement on what survived)."""
    cluster = figure2_cluster
    cluster.fail_after_sends(0, 1)
    # p1 gets enough budget to A-broadcast its own message to everyone and
    # then forward m0 to its first two successors; the first one is the
    # already-dead p0, the second (p2) is healthy, so m0 survives.
    cluster.fail_after_sends(1, len(cluster.graph.successors(1)) + 2)

    cluster.start_all()
    cluster.run(max_events=5_000_000)

    alive = [p for p in range(9) if p not in (0, 1)]
    assert cluster.verify_agreement()
    sets = cluster.delivered_sets(0)
    reference = set(sets[alive[0]])
    # m1 was fully A-broadcast before p1 died, and m0 reached at least one
    # non-faulty server via p1, so both must have been agreed upon.
    assert 1 in reference
    assert 0 in reference


def test_failure_free_round_delivers_everything(figure2_cluster):
    cluster = figure2_cluster
    payloads = {pid: Batch.synthetic(1, 64) for pid in range(9)}
    cluster.start_all(payloads=payloads)
    cluster.run_until_round(0)
    assert cluster.verify_agreement()
    for pid in range(9):
        assert cluster.delivered_sets(0)[pid] == tuple(range(9))
