"""Surviving-partition mechanism and ◇P mode (§3.3.2)."""

import pytest

from repro.core import (
    AllConcurConfig,
    Batch,
    ClusterOptions,
    FDMode,
    PartitionGuard,
    SimCluster,
)
from repro.graphs import gs_digraph


class TestPartitionGuard:
    def test_initial_state(self):
        g = PartitionGuard(owner=0, majority=3)
        assert not g.decided
        assert not g.can_deliver()

    def test_self_counts_after_decision(self):
        g = PartitionGuard(owner=0, majority=1)
        g.mark_decided()
        assert g.can_deliver()

    def test_majority_required_in_both_directions(self):
        g = PartitionGuard(owner=0, majority=3)
        g.mark_decided()
        g.record_forward(1)
        g.record_forward(2)
        assert not g.can_deliver()      # backward side still short
        g.record_backward(1)
        g.record_backward(2)
        assert g.can_deliver()

    def test_duplicates_not_double_counted(self):
        g = PartitionGuard(owner=0, majority=3)
        g.mark_decided()
        assert g.record_forward(1)
        assert not g.record_forward(1)
        assert g.forward_count == 2     # self + server 1

    def test_no_delivery_without_decision(self):
        g = PartitionGuard(owner=0, majority=1)
        g.record_forward(1)
        g.record_backward(1)
        assert not g.can_deliver()

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionGuard(owner=0, majority=0)


class TestEventualMode:
    def make_cluster(self, n=8, d=3):
        graph = gs_digraph(n, d)
        cfg = AllConcurConfig(graph=graph, fd_mode=FDMode.EVENTUAL,
                              auto_advance=False)
        return SimCluster(graph, config=cfg,
                          options=ClusterOptions(detection_delay=30e-6))

    def test_failure_free_round_still_delivers(self):
        cluster = self.make_cluster()
        cluster.start_all(payloads={0: Batch.synthetic(1, 64)})
        cluster.run_until_round(0)
        assert cluster.min_delivered_rounds() == 1
        assert cluster.verify_agreement()

    def test_fwd_bwd_traffic_present(self):
        """◇P mode sends extra FWD/BWD messages compared to P mode."""
        eventual = self.make_cluster()
        eventual.start_all()
        eventual.run_until_round(0)

        graph = gs_digraph(8, 3)
        perfect = SimCluster(
            graph, config=AllConcurConfig(graph=graph, auto_advance=False),
            options=ClusterOptions(detection_delay=30e-6))
        perfect.start_all()
        perfect.run_until_round(0)

        assert eventual.network.stats.messages_sent > \
            perfect.network.stats.messages_sent

    def test_delivery_with_one_real_failure(self):
        cluster = self.make_cluster()
        cluster.fail_server(3)
        cluster.start_all()
        cluster.run(max_events=5_000_000)
        alive = cluster.alive_members
        assert all(cluster.server(p).delivered_rounds == 1 for p in alive)
        assert cluster.verify_agreement()

    def test_majority_definition(self):
        graph = gs_digraph(8, 3)
        cfg = AllConcurConfig(graph=graph, fd_mode=FDMode.EVENTUAL)
        assert cfg.majority == 5
