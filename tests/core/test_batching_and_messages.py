"""Requests, batches, protocol messages and effects."""

import pytest

from repro.core import (
    Backward,
    Batch,
    Broadcast,
    Deliver,
    FailureNotice,
    Forward,
    HEADER_BYTES,
    Request,
    RequestQueue,
    Send,
)


class TestBatch:
    def test_empty_batch(self):
        b = Batch.empty()
        assert b.is_empty
        assert b.count == 0
        assert b.nbytes == 0

    def test_explicit_batch_counts_bytes(self):
        reqs = [Request(origin=0, seq=i, nbytes=40) for i in range(3)]
        b = Batch.of(reqs)
        assert b.count == 3
        assert b.nbytes == 120
        assert not b.is_empty

    def test_synthetic_batch(self):
        b = Batch.synthetic(2048, 8)
        assert b.count == 2048
        assert b.nbytes == 2048 * 8
        assert b.requests == ()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Batch(count=-1)


class TestRequestQueue:
    def test_drain_empty(self):
        q = RequestQueue()
        assert q.drain().is_empty

    def test_drain_explicit_requests(self):
        q = RequestQueue()
        q.submit(Request(origin=0, seq=0, nbytes=64))
        q.submit(Request(origin=0, seq=1, nbytes=64))
        batch = q.drain()
        assert batch.count == 2
        assert len(q) == 0

    def test_drain_synthetic(self):
        q = RequestQueue()
        q.submit_synthetic(100, 8)
        batch = q.drain()
        assert batch.count == 100
        assert batch.nbytes == 800
        assert q.drain().is_empty

    def test_max_batch_limits_explicit(self):
        q = RequestQueue(max_batch=2)
        for i in range(5):
            q.submit(Request(origin=0, seq=i, nbytes=8))
        assert q.drain().count == 2
        assert q.drain().count == 2
        assert q.drain().count == 1

    def test_max_batch_limits_synthetic(self):
        q = RequestQueue(max_batch=10)
        q.submit_synthetic(25, 8)
        assert q.drain().count == 10
        assert q.drain().count == 10
        assert q.drain().count == 5

    def test_total_submitted_counter(self):
        q = RequestQueue()
        q.submit_synthetic(5, 8)
        q.submit(Request(origin=0, seq=0))
        assert q.total_submitted == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(max_batch=0)
        with pytest.raises(ValueError):
            RequestQueue().submit_synthetic(-1, 8)


class TestMessages:
    def test_broadcast_uid_and_size(self):
        m = Broadcast(round=3, origin=7, payload=Batch.synthetic(10, 8))
        assert m.uid == (3, 7)
        assert m.nbytes == HEADER_BYTES + 80

    def test_failure_notice(self):
        f = FailureNotice(round=1, failed=2, reporter=5)
        assert f.uid == (1, 2, 5)
        assert f.pair == (2, 5)
        assert f.nbytes == HEADER_BYTES

    def test_self_report_rejected(self):
        with pytest.raises(ValueError):
            FailureNotice(round=0, failed=3, reporter=3)

    def test_forward_backward(self):
        assert Forward(round=0, origin=1).nbytes == HEADER_BYTES
        assert Backward(round=0, origin=1).nbytes == HEADER_BYTES


class TestEffects:
    def test_send_effect_size(self):
        msg = Broadcast(round=0, origin=0, payload=Batch.synthetic(1, 64))
        s = Send(message=msg, targets=(1, 2, 3))
        assert s.nbytes == msg.nbytes
        assert s.targets == (1, 2, 3)

    def test_deliver_effect_aggregates(self):
        d = Deliver(round=0, messages=(
            (0, Batch.synthetic(2, 8)), (1, Batch.synthetic(3, 8))),
            removed=(5,))
        assert d.request_count == 5
        assert d.nbytes == 40
        assert d.senders == 2
        assert d.removed == (5,)
