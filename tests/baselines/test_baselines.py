"""Leader-based and unreliable-agreement baselines (§4.5, Figure 10)."""

import pytest

from repro.baselines import AllgatherCluster, LeaderBasedCluster
from repro.core import Batch
from repro.sim import IBV_PARAMS, TCP_PARAMS


def payload_fn(batch=64, size=8):
    b = Batch.synthetic(batch, size)
    return lambda pid: b


class TestAllgather:
    @pytest.mark.parametrize("schedule", ["direct", "ring"])
    def test_everyone_delivers_every_round(self, schedule):
        cluster = AllgatherCluster(6, schedule=schedule,
                                   payload_fn=payload_fn())
        cluster.start_all()
        cluster.run_until_round(2)
        assert cluster.min_delivered_rounds() >= 3
        recs = cluster.trace.deliveries_for_round(0)
        assert len(recs) == 6
        assert all(r.senders == 6 for r in recs)

    def test_delivery_counts_requests(self):
        cluster = AllgatherCluster(4, payload_fn=payload_fn(batch=10))
        cluster.start_all()
        cluster.run_until_round(0)
        rec = cluster.trace.deliveries_for_round(0)[0]
        assert rec.requests == 4 * 10

    def test_throughput_exceeds_allconcur(self):
        """Unreliable agreement has no redundancy, so it must be faster than
        AllConcur on the same workload (that gap is the 58% overhead)."""
        from repro.bench.harness import run_allconcur, run_allgather

        ac = run_allconcur(8, batch_requests=1024, rounds=3)
        ag = run_allgather(8, batch_requests=1024, rounds=3)
        assert ag.agreement_throughput > ac.agreement_throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            AllgatherCluster(1)
        with pytest.raises(ValueError):
            AllgatherCluster(4, schedule="butterfly")

    def test_ring_slower_per_round_latency_for_small_batches(self):
        direct = AllgatherCluster(8, schedule="direct",
                                  payload_fn=payload_fn(1))
        ring = AllgatherCluster(8, schedule="ring", payload_fn=payload_fn(1))
        for c in (direct, ring):
            c.start_all()
            c.run_until_round(0)
        # a ring needs n-1 sequential hops; direct exchange needs one hop
        assert ring.trace.round_completion_time(0) > \
            direct.trace.round_completion_time(0)


class TestLeaderBased:
    def test_everyone_delivers_and_agrees_on_order(self):
        cluster = LeaderBasedCluster(6, payload_fn=payload_fn())
        cluster.start_all()
        cluster.run_until_round(1)
        assert cluster.min_delivered_rounds() >= 2
        recs = cluster.trace.deliveries_for_round(0)
        assert len(recs) == 6
        assert all(r.senders == 6 for r in recs)

    def test_majority_definition(self):
        assert LeaderBasedCluster(4, group_size=5).majority == 3
        assert LeaderBasedCluster(4, group_size=1).majority == 1

    def test_group_of_one_skips_replication(self):
        cluster = LeaderBasedCluster(4, group_size=1,
                                     payload_fn=payload_fn())
        cluster.start_all()
        cluster.run_until_round(0)
        assert cluster.min_delivered_rounds() >= 1

    def test_idealised_leader_faster_than_calibrated(self):
        def peak(value_overhead, value_bandwidth):
            cluster = LeaderBasedCluster(
                8, payload_fn=payload_fn(512),
                value_overhead=value_overhead,
                value_bandwidth=value_bandwidth)
            cluster.start_all()
            cluster.run_until_round(2)
            return cluster.trace.agreement_throughput(skip_rounds=1)

        assert peak(0.0, 0.0) > peak(LeaderBasedCluster.DEFAULT_VALUE_OVERHEAD,
                                     LeaderBasedCluster.DEFAULT_VALUE_BANDWIDTH)

    def test_allconcur_outperforms_leader_based(self):
        """§5: AllConcur reaches at least an order of magnitude more
        throughput than the (Libpaxos-calibrated) leader-based baseline."""
        from repro.bench.harness import run_allconcur, run_leader_based

        ac = run_allconcur(8, batch_requests=2048, rounds=3)
        lp = run_leader_based(8, batch_requests=2048, rounds=3)
        assert ac.agreement_throughput > 10 * lp.agreement_throughput

    def test_leader_work_grows_quadratically(self):
        """§4.5: the leader's outbound traffic grows as O(n²) — it sends an
        O(n)-sized decision to each of the n servers — while each AllConcur
        server only handles O(n·d) fixed-size messages."""
        small = LeaderBasedCluster(4, payload_fn=payload_fn(64))
        large = LeaderBasedCluster(16, payload_fn=payload_fn(64))
        for c in (small, large):
            c.start_all()
            c.run_until_round(0)
        # total bytes on the wire are dominated by the O(n²) decision fan-out:
        # 4x the servers should cost clearly more than 4x the bytes
        ratio = large.network.stats.bytes_sent / small.network.stats.bytes_sent
        assert ratio >= 6.0
        # the per-round *message count* at the leader is group + n
        sent_small = small.network.stats.per_process_sent[small.leader]
        sent_large = large.network.stats.per_process_sent[large.leader]
        assert sent_large - sent_small == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaderBasedCluster(1)
        with pytest.raises(ValueError):
            LeaderBasedCluster(4, group_size=0)
        with pytest.raises(ValueError):
            LeaderBasedCluster(4, value_overhead=-1.0)
