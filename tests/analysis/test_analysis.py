"""Closed-form analysis: LogP models, FD accuracy, depth, complexity (§4)."""

import math

import pytest

from repro.analysis import (
    AllConcurModel,
    ExponentialDelay,
    NormalDelay,
    ParetoDelay,
    accuracy_probability,
    allconcur_messages_per_server,
    allconcur_total_messages,
    allconcur_work_per_server,
    depth_time,
    expected_depth_bounds,
    false_suspicion_probability,
    leader_based_total_messages,
    leader_work,
    non_leader_work,
    prob_depth_within_fault_diameter,
    prob_depth_within_fault_diameter_rounds,
    round_time_estimate,
    send_overhead_with_contention,
    single_request_latency,
    space_complexity,
    system_reliability,
    work_bound,
)
from repro.graphs import gs_digraph
from repro.graphs.reliability import YEARS
from repro.sim import IBV_PARAMS, TCP_PARAMS


class TestLogPModels:
    def test_work_bound_formula(self):
        assert work_bound(8, 3, 1.8e-6) == pytest.approx(2 * 7 * 3 * 1.8e-6)

    def test_send_overhead_with_contention(self):
        assert send_overhead_with_contention(2e-6, 3) == pytest.approx(4e-6)
        assert send_overhead_with_contention(2e-6, 1) == pytest.approx(2e-6)

    def test_depth_time(self):
        t = depth_time(TCP_PARAMS, 3, 2)
        os_ = TCP_PARAMS.o * (1 + 1.0)
        assert t == pytest.approx((TCP_PARAMS.L + os_ + TCP_PARAMS.o) * 2)

    def test_single_request_latency_figure6_magnitudes(self):
        """Figure 6: for n = 8 over TCP the latency sits in the tens of µs;
        over IBV it is an order of magnitude lower."""
        tcp = single_request_latency(TCP_PARAMS, 8, 3, 2)["combined"]
        ibv = single_request_latency(IBV_PARAMS, 8, 3, 2)["combined"]
        assert 20e-6 < tcp < 120e-6
        assert ibv < tcp / 3

    def test_work_dominates_at_scale(self):
        """§5: 'with increasing system size, work becomes dominant'."""
        small = single_request_latency(TCP_PARAMS, 8, 3, 2)
        large = single_request_latency(TCP_PARAMS, 90, 5, 3)
        assert small["depth"] > small["work"] * 0.5
        assert large["work"] > large["depth"]

    def test_round_time_monotone_in_bytes(self):
        a = round_time_estimate(TCP_PARAMS, 8, 3, 2, 1024)
        b = round_time_estimate(TCP_PARAMS, 8, 3, 2, 64 * 1024)
        assert b > a

    def test_congestion_penalty_kicks_in(self):
        below = round_time_estimate(TCP_PARAMS, 8, 3, 2, 1 << 15)
        above = round_time_estimate(TCP_PARAMS, 8, 3, 2, 1 << 16)
        assert above > 2 * below * 0.9

    def test_model_wrapper_from_overlay(self):
        g = gs_digraph(8, 3)
        model = AllConcurModel.for_overlay(g, TCP_PARAMS)
        assert model.n == 8
        assert model.degree == 3
        assert model.diameter == 2
        assert model.work() == pytest.approx(work_bound(8, 3, TCP_PARAMS.o))

    def test_agreement_throughput_peak_magnitude(self):
        """Figure 10b: AllConcur-TCP with n = 8 peaks at a few Gb/s."""
        model = AllConcurModel(n=8, degree=3, diameter=2, params=TCP_PARAMS)
        peak = max(model.agreement_throughput(2 ** k * 8)
                   for k in range(7, 16))
        assert 2e8 < peak < 4e9   # 1.6 .. 32 Gbps in bytes/s

    def test_aggregated_throughput_scales_with_n(self):
        m8 = AllConcurModel(n=8, degree=3, diameter=2, params=TCP_PARAMS)
        m512 = AllConcurModel(n=512, degree=8, diameter=3, params=TCP_PARAMS)
        assert m512.aggregated_throughput(2 ** 13 * 8) > \
            m8.aggregated_throughput(2 ** 13 * 8)

    def test_latency_for_rate_stable_and_unstable(self):
        model = AllConcurModel(n=8, degree=3, diameter=2, params=IBV_PARAMS)
        stable = model.agreement_latency_for_rate(1e4, 64)
        assert math.isfinite(stable)
        unstable = model.agreement_latency_for_rate(1e9, 64)
        assert math.isinf(unstable)

    def test_validation(self):
        with pytest.raises(ValueError):
            work_bound(0, 3, 1e-6)
        with pytest.raises(ValueError):
            depth_time(TCP_PARAMS, 3, -1)


class TestAccuracy:
    def test_false_suspicion_decreases_with_timeout(self):
        delay = ExponentialDelay(mean=1e-3)
        p_short = false_suspicion_probability(delay, 10e-3, 30e-3)
        p_long = false_suspicion_probability(delay, 10e-3, 100e-3)
        assert p_long < p_short

    def test_false_suspicion_decreases_with_heartbeat_rate(self):
        delay = ExponentialDelay(mean=5e-3)
        p_slow = false_suspicion_probability(delay, 50e-3, 100e-3)
        p_fast = false_suspicion_probability(delay, 10e-3, 100e-3)
        assert p_fast < p_slow

    def test_accuracy_probability_bounds(self):
        delay = ExponentialDelay(mean=1e-3)
        p = accuracy_probability(delay, n=64, degree=5,
                                 heartbeat_period=10e-3, timeout=100e-3)
        assert 0.0 <= p <= 1.0

    def test_accuracy_close_to_one_for_paper_parameters(self):
        """Δhb = 10 ms, Δto = 100 ms and sub-millisecond delays make false
        suspicion essentially impossible (§3.2, Figure 7 parameters)."""
        delay = ExponentialDelay(mean=100e-6)
        p = accuracy_probability(delay, n=32, degree=4,
                                 heartbeat_period=10e-3, timeout=100e-3)
        assert p > 1 - 1e-12

    def test_more_watchers_reduce_accuracy(self):
        delay = ExponentialDelay(mean=20e-3)
        small = accuracy_probability(delay, 8, 3, 10e-3, 40e-3)
        large = accuracy_probability(delay, 1024, 11, 10e-3, 40e-3)
        assert large < small

    def test_heavy_tailed_delays_hurt(self):
        exp = ExponentialDelay(mean=5e-3)
        pareto = ParetoDelay(scale=5e-3, shape=1.5)
        assert accuracy_probability(pareto, 32, 4, 10e-3, 100e-3) <= \
            accuracy_probability(exp, 32, 4, 10e-3, 100e-3)

    def test_normal_delay_tail(self):
        d = NormalDelay(mean=1e-3, std=1e-4)
        assert d.tail(0.0) == 1.0
        assert d.tail(1e-3) == pytest.approx(0.5, abs=1e-6)
        assert d.tail(2e-3) < 1e-6

    def test_system_reliability_combines_factors(self):
        delay = ExponentialDelay(mean=100e-6)
        r = system_reliability(delay, n=32, degree=4, connectivity=4,
                               heartbeat_period=10e-3, timeout=100e-3,
                               p_f=1e-3)
        assert 0.0 < r < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            false_suspicion_probability(ExponentialDelay(1e-3), 0.0, 0.1)


class TestDepth:
    def test_single_round_probability(self):
        p = prob_depth_within_fault_diameter(256, 7, 1.8e-6, 2 * YEARS)
        assert 0.99 < p < 1.0

    def test_paper_one_million_rounds_claim(self):
        """§4.2.2: 1M rounds with n = 256, d = 7, o = 1.8 µs, MTTF ≈ 2 years
        all stay within the fault diameter with probability > 99.99 %."""
        p = prob_depth_within_fault_diameter_rounds(
            256, 7, 1.8e-6, rounds=1_000_000, mttf=2 * YEARS)
        assert p > 0.9999

    def test_monotone_in_rounds(self):
        p1 = prob_depth_within_fault_diameter_rounds(64, 5, 1.8e-6, 10)
        p2 = prob_depth_within_fault_diameter_rounds(64, 5, 1.8e-6, 10_000)
        assert p2 <= p1

    def test_depth_model_bounds(self):
        m = expected_depth_bounds(diameter=2, fault_diameter=4, f=3)
        assert m.best_case == 2
        assert m.typical_bound == 4
        assert m.worst_case == 7
        assert 2 <= m.expected_steps(0.5) <= 4

    def test_depth_model_validation(self):
        with pytest.raises(ValueError):
            expected_depth_bounds(diameter=5, fault_diameter=4, f=1)


class TestComplexity:
    def test_messages_per_server(self):
        assert allconcur_messages_per_server(8, 3) == 24
        assert allconcur_messages_per_server(8, 3, f=2) == 24 + 2 * 9

    def test_work_is_twice_messages(self):
        assert allconcur_work_per_server(8, 3) == 48

    def test_total_messages(self):
        assert allconcur_total_messages(8, 3) == 192

    def test_leader_work_quadratic(self):
        assert leader_work(8) == 8 + 56
        assert non_leader_work(8) == 8
        assert leader_work(64) / leader_work(8) > 30

    def test_leader_total_messages(self):
        assert leader_based_total_messages(8) == 8 + 56
        assert leader_based_total_messages(8, group_size=5) == 64 + 64

    def test_allconcur_vs_leader_tradeoff(self):
        """§4.5: AllConcur trades more total messages for balanced work."""
        n, d = 64, 5
        assert allconcur_total_messages(n, d) > leader_based_total_messages(n)
        assert allconcur_work_per_server(n, d) < leader_work(n)

    def test_space_complexity_table2(self):
        s = space_complexity(n=90, d=5, f=4)
        assert s.digraph == 450
        assert s.messages == 90
        assert s.failure_notifications == 20
        assert s.tracking_digraphs == 80
        assert s.fifo_queue == 20
        assert s.total == 660

    def test_validation(self):
        with pytest.raises(ValueError):
            allconcur_messages_per_server(-1, 3)
        with pytest.raises(ValueError):
            space_complexity(1, 2, -1)
