"""Sharded service: partitioners, backend registry, multi-group facade,
and the cross-backend end-state equality contract."""

import collections

import pytest

from repro.api import (
    BACKENDS,
    ConsistentHashPartitioner,
    Deployment,
    ExplicitPartitioner,
    ReplicatedKVStore,
    ServiceHandle,
    ShardedService,
    SimDeployment,
    backend_class,
    create_deployment,
    register_backend,
)
from repro.api.service import stable_key_hash
from repro.graphs import gs_digraph
from repro.workloads import KeyedWorkload


def make_service(backend="sim", num_shards=2, n=6, degree=3, **kwargs):
    graphs = [gs_digraph(n, degree) for _ in range(num_shards)]
    return ShardedService(backend, graphs, **kwargs)


# --------------------------------------------------------------------- #
# Partitioners
# --------------------------------------------------------------------- #
class TestStableKeyHash:
    def test_deterministic_and_64_bit(self):
        assert stable_key_hash("user42") == stable_key_hash("user42")
        assert 0 <= stable_key_hash("user42") < 2 ** 64

    def test_distinct_keys_differ(self):
        hashes = {stable_key_hash(f"k{i}") for i in range(1000)}
        assert len(hashes) == 1000


class TestConsistentHashPartitioner:
    def test_routes_into_range_and_uses_every_shard(self):
        part = ConsistentHashPartitioner(4)
        shards = {part.shard_of(f"key{i}") for i in range(500)}
        assert shards == {0, 1, 2, 3}

    def test_deterministic_across_instances(self):
        a = ConsistentHashPartitioner(3)
        b = ConsistentHashPartitioner(3)
        assert [a.shard_of(f"k{i}") for i in range(200)] == \
               [b.shard_of(f"k{i}") for i in range(200)]

    def test_near_even_split(self):
        part = ConsistentHashPartitioner(4, vnodes=128)
        counts = collections.Counter(
            part.shard_of(f"key{i}") for i in range(8000))
        for shard in range(4):
            assert counts[shard] == pytest.approx(2000, rel=0.5)

    def test_resharding_moves_a_minority_of_keys(self):
        # The reason for a ring over hash % G: growing G=3 -> 4 must
        # remap only ~1/4 of the keyspace, not almost all of it.
        keys = [f"key{i}" for i in range(2000)]
        before = ConsistentHashPartitioner(3)
        after = ConsistentHashPartitioner(4)
        moved = sum(before.shard_of(k) != after.shard_of(k) for k in keys)
        assert moved / len(keys) < 0.5
        # modulo hashing moves ~3/4 on the same transition
        mod_moved = sum((stable_key_hash(k) % 3) != (stable_key_hash(k) % 4)
                        for k in keys)
        assert moved < mod_moved

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashPartitioner(0)
        with pytest.raises(ValueError):
            ConsistentHashPartitioner(2, vnodes=0)


class TestExplicitPartitioner:
    def test_mapping_and_default(self):
        part = ExplicitPartitioner({"vip": 1}, 2, default=0)
        assert part.shard_of("vip") == 1
        assert part.shard_of("anyone-else") == 0

    def test_unmapped_without_default_raises(self):
        part = ExplicitPartitioner({"vip": 0}, 2)
        with pytest.raises(KeyError):
            part.shard_of("stranger")

    def test_out_of_range_mapping_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPartitioner({"k": 5}, 2)
        with pytest.raises(ValueError):
            ExplicitPartitioner({}, 2, default=2)
        with pytest.raises(ValueError):
            ExplicitPartitioner({}, 0)


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_unknown_backend_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_deployment("carrier-pigeon", gs_digraph(6, 3))
        with pytest.raises(ValueError, match="unknown backend"):
            backend_class("carrier-pigeon")

    def test_reregistration_rejected(self):
        class Impostor(SimDeployment):
            pass

        with pytest.raises(ValueError, match="already registered"):
            register_backend("sim", Impostor)
        assert BACKENDS["sim"] is SimDeployment

    def test_same_class_reregistration_is_idempotent(self):
        register_backend("sim", SimDeployment)   # no-op, no error
        assert BACKENDS["sim"] is SimDeployment

    def test_invalid_name_and_class(self):
        with pytest.raises(ValueError):
            register_backend("", SimDeployment)
        with pytest.raises(TypeError):
            register_backend("notadeployment", dict)

    def test_registered_backend_plugs_into_sharded_service(self):
        class RecordingSim(SimDeployment):
            name = "recording-sim"
            instances: list = []

            def __init__(self, graph, **kwargs):
                super().__init__(graph, **kwargs)
                RecordingSim.instances.append(self)

        register_backend("recording-sim", RecordingSim)
        try:
            svc = make_service("recording-sim")
            handle = svc.submit("user1", ("set", "user1", 1))
            svc.run_rounds(1)
            assert handle.done and svc.check_agreement()
            # the service constructed its groups through the registry
            assert len(RecordingSim.instances) == 2
            assert all(isinstance(g, RecordingSim) for g in svc.groups)
            # shared-engine capability honoured for the subclass too
            assert svc.group(0).sim is svc.group(1).sim
        finally:
            del BACKENDS["recording-sim"]

    def test_replace_allows_explicit_override(self):
        class Custom(SimDeployment):
            pass

        register_backend("override-test", SimDeployment)
        try:
            with pytest.raises(ValueError):
                register_backend("override-test", Custom)
            register_backend("override-test", Custom, replace=True)
            assert BACKENDS["override-test"] is Custom
        finally:
            del BACKENDS["override-test"]


# --------------------------------------------------------------------- #
# ShardedService facade (sim backend)
# --------------------------------------------------------------------- #
class TestShardedServiceSim:
    def test_construction_validations(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedService("sim", [])
        with pytest.raises(ValueError, match="partitioner covers"):
            make_service(partitioner=ConsistentHashPartitioner(3))

    def test_groups_share_one_engine_and_clock(self):
        svc = make_service(num_shards=3)
        engines = {id(group.sim) for group in svc.groups}
        assert len(engines) == 1
        assert svc.group(0).sim is svc.engine
        svc.run_rounds(1)
        assert svc.engine.now > 0.0

    def test_keyed_submit_routes_by_partitioner(self):
        svc = make_service()
        for i in range(20):
            key = f"user{i}"
            handle = svc.submit(key, ("set", key, i))
            assert handle.shard == svc.partitioner.shard_of(key)
            assert handle.origin in svc.group(handle.shard).alive_members
        svc.run_rounds(1)
        assert svc.check_agreement()

    def test_origin_is_sticky_per_key(self):
        svc = make_service()
        assert svc.origin_of("user7") == svc.origin_of("user7")

    def test_explicit_partitioner_pins_keys(self):
        part = ExplicitPartitioner({"pinned": 1}, 2, default=0)
        svc = make_service(partitioner=part)
        assert svc.submit("pinned", ("set", "pinned", 1)).shard == 1
        assert svc.submit("other", ("set", "other", 2)).shard == 0

    def test_run_rounds_advances_all_groups(self):
        svc = make_service(num_shards=3)
        out = svc.run_rounds(2)
        per_shard = collections.Counter(d.shard for d in out)
        assert per_shard == {0: 2, 1: 2, 2: 2}

    def test_deliveries_merged_with_shard_tags(self):
        svc = make_service()
        svc.submit("user1", ("set", "user1", 1))
        svc.run_rounds(2)
        merged = svc.deliveries()
        assert [(d.epoch, d.round, d.shard) for d in merged] == \
            sorted((d.epoch, d.round, d.shard) for d in merged)
        # every shard contributed every round
        assert {(d.shard, d.round) for d in merged} == \
            {(s, r) for s in range(2) for r in range(2)}

    def test_deliveries_stay_sorted_across_staggered_merges(self):
        # handle.result() drives only the owning group; a later
        # service-wide round must not leave the merged log unsorted
        # (regression: batches were append-only, sorted per batch).
        part = ExplicitPartitioner({"solo": 1}, 2, default=0)
        svc = make_service(partitioner=part)
        svc.submit("solo", ("set", "solo", 1)).result()
        assert [d.shard for d in svc.deliveries()] == [1]
        svc.run_rounds(1)
        merged = svc.deliveries()
        keys = [(d.epoch, d.round, d.shard) for d in merged]
        assert keys == sorted(keys)
        assert (0, 0, 0) in keys and (0, 0, 1) in keys

    def test_members_addressed_as_shard_pid(self):
        svc = make_service(num_shards=2, n=6)
        assert len(svc.members) == 12 and svc.n == 12
        assert ((0, 0) in svc.members and (1, 5) in svc.members)

    def test_fail_is_scoped_to_one_shard(self):
        svc = make_service()
        svc.run_rounds(1)
        svc.fail(0, 5)
        svc.run_rounds(1)
        assert len(svc.group(0).alive_members) == 5
        assert len(svc.group(1).alive_members) == 6
        assert svc.check_agreement()
        assert svc.agreement_by_shard() == {0: True, 1: True}

    def test_fail_cancels_handles_of_that_origin_only(self):
        part = ExplicitPartitioner({"doomed": 0, "fine": 1}, 2)
        svc = make_service(partitioner=part)
        doomed = svc.submit("doomed", ("set", "doomed", 1))
        fine = svc.submit("fine", ("set", "fine", 1))
        svc.fail(0, doomed.origin)
        svc.run_rounds(1)
        assert doomed.cancelled and not doomed.done
        assert fine.done and not fine.cancelled

    def test_join_addressed_by_shard(self):
        svc = make_service()
        svc.run_rounds(1)
        svc.fail(1, 2)
        svc.run_rounds(1)
        svc.join(1, 2)
        svc.run_rounds(1)
        assert len(svc.group(1).alive_members) == 6
        assert svc.group(1).epoch == 1
        assert svc.group(0).epoch == 0   # other shard unaffected
        assert svc.check_agreement()

    def test_snapshot_composes_shard_states(self):
        svc = make_service(state_machine=ReplicatedKVStore)
        handles = [svc.submit(f"user{i}", ("set", f"user{i}", i))
                   for i in range(12)]
        svc.run_rounds(1)
        snap = svc.snapshot()
        assert set(snap) == {0, 1}
        composed = dict(item for state in snap.values() for item in state)
        assert composed == {f"user{i}": i for i in range(12)}
        by_shard = {h.key: h.shard for h in handles}
        for shard, state in snap.items():
            assert all(by_shard[key] == shard for key, _v in state)

    def test_snapshot_without_state_machine_raises(self):
        svc = make_service()
        with pytest.raises(ValueError, match="no state machine"):
            svc.snapshot()

    def test_handle_result_drives_the_owning_group(self):
        svc = make_service()
        handle = svc.submit("user3", ("set", "user3", 3))
        assert isinstance(handle, ServiceHandle)
        event = handle.result()
        assert handle.done and event.round == handle.round
        assert handle.request_id == (handle.shard, handle.origin, 0)

    def test_capabilities_intersection(self):
        svc = make_service()
        assert "join" in svc.capabilities()
        assert "shared-engine" in svc.capabilities()

    def test_deterministic_across_runs(self):
        def run():
            svc = make_service(state_machine=ReplicatedKVStore, seed=5)
            wl = KeyedWorkload(num_keys=64, distribution="zipf", seed=5)
            for key, command in wl.requests(30):
                svc.submit(key, command)
            svc.run_rounds(2)
            return (svc.snapshot(),
                    [(d.shard, d.round, d.request_count)
                     for d in svc.deliveries()],
                    svc.engine.now)

        assert run() == run()


# --------------------------------------------------------------------- #
# TCP backend: disjoint port spaces + cross-backend equality
# --------------------------------------------------------------------- #
class TestShardedServiceTcp:
    def test_groups_occupy_disjoint_port_spaces(self):
        with make_service("tcp") as svc:
            assert svc.engine is None   # no virtual clock over TCP
            ports = [set(p for _h, p in g.endpoints().values())
                     for g in svc.groups]
            assert len(ports[0]) == 6 and len(ports[1]) == 6
            assert not ports[0] & ports[1]
            svc.submit("user1", ("set", "user1", 1))
            svc.run_rounds(1)
            assert svc.check_agreement()

    def test_cross_backend_end_states_identical(self):
        # The same seeded keyed workload through a 2-shard service must
        # leave identical per-shard ReplicatedKVStore states on the
        # simulator and over real TCP sockets.
        workload = KeyedWorkload(num_keys=32, distribution="zipf",
                                 zipf_s=1.1, seed=11)
        states = {}
        routing = {}
        for backend in ("sim", "tcp"):
            with make_service(backend, n=6,
                              state_machine=ReplicatedKVStore) as svc:
                handles = [svc.submit(key, command)
                           for key, command in workload.requests(25)]
                svc.run_rounds(2)
                assert svc.check_agreement()
                assert all(h.done for h in handles)
                states[backend] = svc.snapshot()
                routing[backend] = [(h.key, h.shard, h.origin)
                                    for h in handles]
        assert states["sim"] == states["tcp"]
        assert routing["sim"] == routing["tcp"]
