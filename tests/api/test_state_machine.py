"""Replicated state machines over the deployment facade.

Includes the acceptance scenario in miniature: the same application state
machine, driven through the same facade calls, reaches the identical end
state on the simulator and over TCP.
"""

import pytest

from repro.api import (
    ReplicatedKVStore,
    ReplicatedStateMachine,
    StateMachine,
    create_deployment,
)
from repro.core import Request
from repro.graphs import gs_digraph


def make(backend, n=6, d=3):
    return create_deployment(backend, gs_digraph(n, d))


class CountingMachine:
    """Minimal deterministic machine: counts per-origin applications."""

    def __init__(self):
        self.counts = {}
        self.rounds = []

    def apply(self, round_no, origin, request):
        self.counts[origin] = self.counts.get(origin, 0) + 1
        self.rounds.append(round_no)
        return self.counts[origin]

    def snapshot(self):
        return tuple(sorted(self.counts.items()))


class TestReplicatedStateMachine:
    def test_protocol_runtime_checkable(self):
        assert isinstance(ReplicatedKVStore(), StateMachine)
        assert isinstance(CountingMachine(), StateMachine)

    @pytest.mark.parametrize("backend", ["sim", "tcp"])
    def test_one_replica_per_member_applies_in_order(self, backend):
        with make(backend) as dep:
            rsm = ReplicatedStateMachine(dep, CountingMachine)
            dep.submit("a", at=0)
            dep.submit("b", at=0)
            dep.submit("c", at=3)
            dep.run_rounds(2)
            assert set(rsm.replicas) == set(dep.members)
            assert all(h == 2 for h in rsm.heights.values())
            assert rsm.converged()
            snap = rsm.assert_convergence()
            assert snap == ((0, 2), (3, 1))
            # apply results are positional in the agreed order
            assert rsm.results() == (1, 2, 1)

    def test_divergence_detected(self):
        dep = make("sim")
        rsm = ReplicatedStateMachine(dep, CountingMachine)
        dep.submit("x", at=1)
        dep.run_rounds(1)
        rsm.replica(0).counts[99] = 1   # corrupt one replica
        assert not rsm.converged()
        with pytest.raises(AssertionError, match="diverged"):
            rsm.assert_convergence()

    def test_failed_replica_excluded_from_convergence(self):
        dep = make("sim", n=8)
        rsm = ReplicatedStateMachine(dep, CountingMachine)
        dep.submit("pre", at=0)
        dep.run_rounds(1)
        dep.fail(4)
        dep.submit("post", at=1)
        dep.run_rounds(2)
        assert 4 not in rsm.snapshots()
        assert rsm.converged()


class TestReplicatedKVStore:
    def test_command_semantics(self):
        kv = ReplicatedKVStore()

        def apply(data):
            return kv.apply(0, 0, Request(origin=0, seq=0, data=data))

        assert apply(("set", "k", 1)) is None
        assert apply(("set", "k", 2)) == 1
        assert apply(("get", "k")) == 2
        assert apply(("cas", "k", 2, 3)) is True
        assert apply(("cas", "k", 2, 4)) is False
        assert apply(("del", "k")) is True
        assert apply(("del", "k")) is False
        assert kv.snapshot() == ()
        with pytest.raises(ValueError):
            apply(("mystery",))

    def test_cas_resolves_conflicts_identically_everywhere(self):
        # two clients race for the same resource at different servers; CAS
        # makes exactly one win, deterministically, on every replica
        with make("sim") as dep:
            rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
            dep.submit(("set", "seat", "free"), at=0)
            dep.run_rounds(1)
            w1 = dep.submit(("cas", "seat", "free", "alice"), at=1)
            w2 = dep.submit(("cas", "seat", "free", "bob"), at=4)
            dep.run_rounds(1)
            assert w1.done and w2.done
            snap = rsm.assert_convergence()
            assert dict(snap)["seat"] == "alice"   # lower origin id wins
            assert rsm.results()[-2:] == (True, False)

    def test_identical_end_state_across_backends(self):
        """The acceptance criterion in miniature: same scenario, same end
        state, both transports."""
        commands = [
            (0, ("set", "a", 1)),
            (2, ("set", "b", 2)),
            (4, ("cas", "a", 1, 10)),
            (1, ("del", "b")),
            (3, ("set", "c", "x")),
        ]
        snapshots = {}
        results = {}
        for backend in ("sim", "tcp"):
            with make(backend) as dep:
                rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
                handles = [dep.submit(data, at=pid)
                           for pid, data in commands]
                dep.run_rounds(2)
                assert all(h.done for h in handles)
                assert dep.check_agreement()
                snapshots[backend] = rsm.assert_convergence()
                results[backend] = rsm.results()
        assert snapshots["sim"] == snapshots["tcp"]
        assert results["sim"] == results["tcp"]


# --------------------------------------------------------------------- #
# Dedup-table compaction
# --------------------------------------------------------------------- #
class TestDedupCompaction:
    def test_contiguous_session_holds_one_watermark(self):
        """A long-running in-order session compacts to a single watermark:
        dedup memory is O(sessions), not O(requests ever applied)."""
        from repro.api.client import Client

        with make("sim") as dep:
            rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
            client = Client(dep, rsm=rsm)
            s = client.session("alice", origin=0)
            for step in range(60):
                s.submit(("set", "k", step))
                dep.run_rounds(1)
            # 60 applied requests, one retained entry (the watermark)
            assert rsm.dedup_state_size() == 1
            assert rsm.has_applied("alice", 0)
            assert rsm.has_applied("alice", 59)
            assert not rsm.has_applied("alice", 60)

    def test_out_of_order_seqs_stay_sparse_then_drain(self):
        from repro.api.state_machine import _DedupTable

        table = _DedupTable()
        table.add(("a", 1))
        table.add(("a", 3))
        assert ("a", 1) in table and ("a", 3) in table
        assert ("a", 0) not in table and ("a", 2) not in table
        assert table.state_size() == 3          # watermark + {1, 3}
        assert table.watermark("a") == -1
        table.add(("a", 0))                     # prefix reaches 0, drains 1
        assert table.watermark("a") == 1
        assert table.state_size() == 2          # watermark + {3}
        table.add(("a", 2))                     # drains 3 too
        assert table.watermark("a") == 3
        assert table.state_size() == 1
        for seq in range(4):
            assert ("a", seq) in table

    def test_bounded_memory_across_failover_resubmission(self):
        """The failover race: the original envelope WAS agreed and the
        retry arrives later — dedup verdicts (duplicates_skipped,
        has_applied) are unchanged by compaction and the table stays
        O(window)."""
        from repro.api.client import Client

        with make("sim", n=8) as dep:
            rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
            client = Client(dep, rsm=rsm)
            s = client.session("alice", origin=0)
            for step in range(10):
                s.submit(("set", "k", step))
                dep.run_rounds(1)
            h = s.submit(("set", "k", "final"))
            client.flush()
            dep.fail(0)
            dep.run_rounds(3)
            assert h.done
            assert rsm.has_applied("alice", h.seq)
            assert set(rsm.duplicates_skipped.values()) == {0}
            for pid in dep.alive_members:
                assert rsm.dedup_state_size(pid) <= 2
            rsm.assert_convergence()

    def test_per_client_tables_are_independent(self):
        from repro.api.state_machine import _DedupTable

        table = _DedupTable()
        table.add(("a", 0))
        table.add(("b", 5))
        assert table.watermark("a") == 0
        assert table.watermark("b") == -1
        assert ("b", 5) in table and ("b", 0) not in table
        assert table.state_size() == 3          # a's wm, b's wm + {5}


# --------------------------------------------------------------------- #
# State transfer (the elastic-sharding rejoin path)
# --------------------------------------------------------------------- #
class TestStateTransfer:
    """transfer_state/install_state round-trip: the installed replica is
    indistinguishable from one that replayed the full agreed log.  The
    completeness of the image is statically gated by lint rule S601."""

    def test_image_round_trips_into_a_wiped_replica(self):
        from repro.api.client import Client

        with make("sim") as dep:
            rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
            client = Client(dep, rsm=rsm)
            s = client.session("alice", origin=0)
            for step in range(5):
                s.submit(("set", "k", step))
                dep.run_rounds(1)
            image = rsm.transfer_state(0)

            rsm.replicas[3] = ReplicatedKVStore()   # wiped rejoiner
            rsm.heights[3] = 0
            rsm.install_state(3, image)

            assert rsm.heights[3] == rsm.heights[0]
            assert (rsm.replicas[3].snapshot()
                    == rsm.replicas[0].snapshot())
            assert rsm.applied_marker(3) == rsm.applied_marker(0)
            # the dedup verdicts survive: a failover retry of any
            # already-agreed request is skipped, not re-applied
            for seq in range(5):
                assert rsm.has_applied("alice", seq, pid=3)
            assert not rsm.has_applied("alice", 5, pid=3)
            # the client read-back path survives
            assert (rsm.client_result("alice", 4, pid=3)
                    == rsm.client_result("alice", 4, pid=0))
            assert rsm.duplicates_skipped[3] == rsm.duplicates_skipped[0]
            assert rsm.converged()

    def test_install_rejects_machines_without_restore(self):
        with make("sim") as dep:
            rsm = ReplicatedStateMachine(dep, CountingMachine)
            dep.submit("x", at=0)
            dep.run_rounds(1)
            with pytest.raises(TypeError, match="restore"):
                rsm.install_state(1, rsm.transfer_state(0))

    def test_image_is_a_value_not_a_view(self):
        # mutating the source replica after capture must not leak into
        # the image (state transfer may be serialised and shipped)
        from repro.api.client import Client

        with make("sim") as dep:
            rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
            client = Client(dep, rsm=rsm)
            s = client.session("alice", origin=0)
            s.submit(("set", "k", 1))
            dep.run_rounds(1)
            image = rsm.transfer_state(0)
            results_before = list(image["results"])
            s.submit(("set", "k", 2))
            dep.run_rounds(1)
            assert list(image["results"]) == results_before
            assert dict(image["client_results"]) \
                == {("alice", 0): image["client_results"][("alice", 0)]}
