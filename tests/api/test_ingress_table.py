"""The flat session table: differential equivalence and scale behaviour.

The dirty-set flush is a pure optimisation — it must produce the exact
per-origin envelopes, in the exact order, that a full walk of every
session produces (clean sessions contribute nothing to a flush, so
skipping them cannot be observable).  The full-scan walk survives on the
client as ``_flush_full_scan`` precisely to be this oracle: the
hypothesis differential drives one seeded closed-loop population through
each path and compares the byte image of the agreed log.

The failover-at-scale test covers the other acceptance bar: C >= 10^3
sessions through an origin failure with zero duplicate applies and
per-session order preserved, while the O(1) in-flight counter stays equal
to the old full-table recount (kept as ``_in_flight_scan``).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    Client,
    ReplicatedKVStore,
    ReplicatedStateMachine,
    create_deployment,
)
from repro.graphs import gs_digraph
from repro.workloads import ClosedLoopPopulation


def make(backend="sim", n=8, d=3, **kwargs):
    return create_deployment(backend, gs_digraph(n, d), **kwargs)


def log_image(deployment) -> str:
    """The agreed log as one JSON byte string: (epoch, round, per-origin
    raw payloads) — any packing difference (membership, order, grouping,
    content) changes it."""
    image = [
        [event.epoch, event.round,
         [[origin, [request.data for request in batch.requests]]
          for origin, batch in event.messages]]
        for event in deployment.deliveries()
    ]
    return json.dumps(image, sort_keys=True)


def run_population(backend: str, *, full_scan: bool, num_clients: int,
                   window: int, steps: int, max_batch_requests):
    """One seeded closed-loop run; returns the agreed-log byte image and
    the client's flush counters."""
    with make(backend) as dep:
        client = Client(dep, max_batch_requests=max_batch_requests)
        if full_scan:
            # instance override: the round-start hook calls
            # self._flush_group, so every flush now walks every slot
            client._flush_group = client._flush_full_scan
        population = ClosedLoopPopulation(client, num_clients,
                                          window=window)
        population.run(steps)
        counters = (population.submitted, population.resolved,
                    client.batches_flushed, client.requests_flushed)
        image = log_image(dep)
    return image, counters


# --------------------------------------------------------------------- #
# Differential: dirty-set flush vs full-scan oracle
# --------------------------------------------------------------------- #
class TestDirtySetDifferential:
    @settings(max_examples=25, deadline=None)
    @given(num_clients=st.integers(min_value=1, max_value=10),
           window=st.integers(min_value=1, max_value=4),
           steps=st.integers(min_value=1, max_value=4),
           max_batch_requests=st.one_of(st.none(),
                                        st.integers(min_value=1,
                                                    max_value=8)))
    def test_identical_agreed_log_sim(self, num_clients, window, steps,
                                      max_batch_requests):
        fast = run_population("sim", full_scan=False,
                              num_clients=num_clients, window=window,
                              steps=steps,
                              max_batch_requests=max_batch_requests)
        slow = run_population("sim", full_scan=True,
                              num_clients=num_clients, window=window,
                              steps=steps,
                              max_batch_requests=max_batch_requests)
        assert fast == slow

    def test_identical_agreed_log_tcp(self):
        params = dict(num_clients=6, window=2, steps=3,
                      max_batch_requests=4)
        fast = run_population("tcp", full_scan=False, **params)
        slow = run_population("tcp", full_scan=True, **params)
        assert fast == slow

    def test_identical_through_packing_caps_and_failover(self):
        """The two flush paths agree through the hard cases: per-origin
        caps closing origins mid-scan and an origin failing with
        envelopes in flight."""
        images = []
        for full_scan in (False, True):
            with make() as dep:
                client = Client(dep, max_batch_requests=3)
                if full_scan:
                    client._flush_group = client._flush_full_scan
                population = ClosedLoopPopulation(client, 12, window=2)
                population.run(2)
                population.top_up()
                client.flush()
                dep.fail(0)
                population.run(3)
                images.append((log_image(dep), population.resolved,
                               client.resubmitted))
        assert images[0] == images[1]


# --------------------------------------------------------------------- #
# Failover at scale
# --------------------------------------------------------------------- #
class RecordingKV(ReplicatedKVStore):
    """KV store that records every applied (client, seq) — the
    zero-duplicate-applies and order-preservation witness."""

    def __init__(self):
        super().__init__()
        self.applied_ids = []

    def apply(self, round_no, origin, request):
        self.applied_ids.append((request.client, request.seq))
        return super().apply(round_no, origin, request)


class TestFailoverAtScale:
    def test_thousand_sessions_zero_duplicate_applies_in_order(self):
        with make() as dep:
            rsm = ReplicatedStateMachine(dep, RecordingKV)
            client = Client(dep, rsm=rsm)
            population = ClosedLoopPopulation(client, 1000, window=1)
            population.run(2)
            # leave a round's envelopes sitting at their origins, then
            # kill one of them
            population.top_up()
            client.flush()
            dep.fail(0)
            population.run(4)
            assert population.cancelled == 0
            assert client.resubmitted > 0, \
                "failure with in-flight envelopes must exercise requeue"
            assert population.resolved == population.submitted
            for pid in dep.alive_members:
                ids = rsm.replicas[pid].applied_ids
                assert len(ids) == len(set(ids)), \
                    f"replica {pid} applied a (client, seq) twice"
                last = {}
                for client_id, seq in ids:
                    assert last.get(client_id, -1) < seq, \
                        (f"replica {pid} applied {client_id} out of "
                         f"order: seq {seq} after {last[client_id]}")
                    last[client_id] = seq
            rsm.assert_convergence()
            assert dep.check_agreement()
            # the O(1) admission counter equals the old full recount
            assert client.in_flight == client._in_flight_scan() == 0

    def test_in_flight_counter_matches_scan_throughout(self):
        """The incrementally maintained counter equals the old O(C) scan
        at every observable point of a failover-heavy run (the debug
        assertion the satellite asks for)."""
        with make() as dep:
            client = Client(dep)
            population = ClosedLoopPopulation(client, 200, window=2)
            assert client.in_flight == client._in_flight_scan() == 0
            population.top_up()
            assert client.in_flight == client._in_flight_scan() == 400
            client.flush()
            assert client.in_flight == client._in_flight_scan() == 400
            dep.fail(0)
            population.step()
            assert client.in_flight == client._in_flight_scan()
            population.run(3)
            assert client.in_flight == client._in_flight_scan()


# --------------------------------------------------------------------- #
# Table mechanics
# --------------------------------------------------------------------- #
class TestSessionTable:
    def test_idle_sessions_never_enter_the_dirty_set(self):
        with make() as dep:
            client = Client(dep)
            for i in range(500):
                client.session(f"idle{i}")
            busy = client.session("busy")
            busy.submit(["set", "k", 1])
            (shard_dirty,) = client._dirty.values()
            assert shard_dirty == {busy.slot}
            dep.run_rounds(1)
            assert not any(client._dirty.values())

    def test_slot_columns_track_session_state(self):
        with make() as dep:
            client = Client(dep)
            s = client.session("alice")
            assert s.pending == 0 and s.outstanding == 0
            h = s.submit(["set", "k", 1], nbytes=16)
            assert s.pending == 1 and client._col_buffered_bytes[s.slot] == 16
            client.flush()
            assert s.pending == 0 and s.outstanding == 1
            assert client._col_buffered_bytes[s.slot] == 0
            dep.run_rounds(1)
            assert h.done and s.outstanding == 0
            assert s.high_water_round == (h.delivery.epoch, h.round)

    def test_auto_ids_survive_interleaved_explicit_names(self):
        with make() as dep:
            client = Client(dep)
            first = client.session()             # c0
            client.session("c1")                 # explicit, collides w/ len
            second = client.session()            # must skip to c2
            third = client.session()             # c3
            assert first.client_id == "c0"
            assert second.client_id == "c2"
            assert third.client_id == "c3"
