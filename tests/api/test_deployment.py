"""Unified deployment facade: one vocabulary over both backends.

The parametrised tests in TestFacadeVocabulary run the *same* scenario code
against SimDeployment and TcpDeployment — the facade's whole point.
Backend-specific semantics (virtual time, join, asyncio futures) get their
own classes.
"""

import asyncio

import pytest

from repro.api import (
    BACKENDS,
    DeliveryEvent,
    RequestCancelled,
    SimDeployment,
    TcpDeployment,
    UnsupportedOperation,
    create_deployment,
)
from repro.core import AllConcurConfig
from repro.graphs import gs_digraph


def make(backend, n=6, d=3, **kwargs):
    return create_deployment(backend, gs_digraph(n, d), **kwargs)


class TestFactory:
    def test_registry_names_match_classes(self):
        assert BACKENDS == {"sim": SimDeployment, "tcp": TcpDeployment}
        assert isinstance(make("sim"), SimDeployment)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_deployment("carrier-pigeon", gs_digraph(6, 3))

    def test_kwargs_forwarded(self):
        dep = make("sim", config=AllConcurConfig(graph=gs_digraph(6, 3),
                                                 pipeline_depth=2))
        assert dep.cluster.config.pipeline_depth == 2


@pytest.mark.parametrize("backend", ["sim", "tcp"])
class TestFacadeVocabulary:
    """One scenario body, two transports."""

    def test_submit_run_ack(self, backend):
        with make(backend) as dep:
            assert dep.n == 6
            h1 = dep.submit("alpha", at=0)
            h2 = dep.submit("beta", at=4)
            assert not h1.done and h1.key == (0, 0)
            events = dep.run_rounds(1)
            assert len(events) == 1
            event = events[0]
            assert isinstance(event, DeliveryEvent)
            assert event.round == 0 and event.origins == tuple(range(6))
            assert h1.done and h1.round == 0 and h1.delivery is event
            assert h2.done and h2.round == 0
            assert dep.check_agreement()

    def test_per_origin_sequence_numbers(self, backend):
        with make(backend) as dep:
            a = dep.submit("x", at=2)
            b = dep.submit("y", at=2)
            c = dep.submit("z", at=3)
            assert (a.seq, b.seq, c.seq) == (0, 1, 0)
            dep.run_rounds(1)
            delivered = [r.data for r in dep.deliveries()[0].requests()]
            assert delivered == ["x", "y", "z"]

    def test_deliveries_log_and_on_deliver(self, backend):
        with make(backend) as dep:
            per_round, per_node = [], []
            dep.on_deliver(lambda e: per_round.append(e.round))
            dep.on_deliver(lambda pid, e: per_node.append((pid, e.round)),
                           per_node=True)
            dep.submit("r0", at=0)
            dep.run_rounds(2)
            assert per_round == [0, 1]
            assert len(dep.deliveries()) == 2
            # every node observed every round exactly once
            assert sorted(per_node) == sorted(
                (pid, r) for pid in range(6) for r in range(2))

    def test_done_callback_fires_on_ack_and_immediately_when_done(
            self, backend):
        with make(backend) as dep:
            acked = []
            h = dep.submit("cb", at=1)
            h.add_done_callback(lambda hd: acked.append(hd.round))
            dep.run_rounds(1)
            assert acked == [0]
            h.add_done_callback(lambda hd: acked.append("late"))
            assert acked == [0, "late"]

    def test_result_drives_the_deployment(self, backend):
        with make(backend) as dep:
            h = dep.submit("drive", at=5)
            event = h.result(timeout=20)
            assert event.round == 0
            assert dep.check_agreement()

    def test_fail_removes_member_and_cancels_pending_handles(self, backend):
        with make(backend, n=8) as dep:
            dep.submit("warm", at=0)
            dep.run_rounds(1)
            doomed = dep.submit("never", at=6)
            dep.fail(6)
            assert 6 not in dep.alive_members
            assert doomed.cancelled and not doomed.done
            with pytest.raises(RequestCancelled):
                doomed.result(timeout=5)
            dep.run_rounds(2)
            assert dep.check_agreement()
            removed = {pid for e in dep.deliveries() for pid in e.removed}
            assert 6 in removed

    def test_submit_at_dead_or_unknown_server_rejected(self, backend):
        with make(backend) as dep:
            dep.fail(2)
            with pytest.raises(ValueError):
                dep.submit("x", at=2)
            with pytest.raises(ValueError):
                dep.submit("x", at=77)

    def test_capabilities_declared(self, backend):
        dep = make(backend)
        caps = dep.capabilities()
        assert ("join" in caps) == (backend == "sim")
        dep.stop()

    def test_payloads_canonicalised_identically(self, backend):
        """Tuples are normalised to their JSON image at submit on EVERY
        backend, so delivered payloads compare equal across transports."""
        with make(backend) as dep:
            dep.submit(("cmd", 1, ("nested",)), at=0)
            dep.run_rounds(1)
            (request,) = dep.deliveries()[0].requests()
            assert request.data == ["cmd", 1, ["nested"]]


class TestSimBackend:
    def test_join_starts_new_epoch_and_preserves_agreement(self):
        dep = make("sim", n=8)
        dep.submit("pre", at=0)
        dep.run_rounds(1)
        dep.fail(3)
        dep.run_rounds(2)
        dep.join(3)
        assert dep.epoch == 1
        events = dep.run_rounds(2)
        assert 3 in dep.alive_members
        assert [e.epoch for e in events] == [1, 1]
        assert [e.round for e in events] == [0, 1]
        assert dep.check_agreement()

    def test_epoch_round_ordering_in_log(self):
        dep = make("sim", n=8)
        dep.run_rounds(2)
        dep.fail(1)
        dep.run_rounds(1)
        dep.join(1)
        dep.run_rounds(1)
        keys = [(e.epoch, e.round) for e in dep.deliveries()]
        assert keys == sorted(keys)

    def test_result_without_progress_raises_timeout(self):
        # an empty deployment where no further round can complete: failing
        # a server right away leaves the handle unresolvable
        dep = make("sim")
        h = dep.submit("stuck", at=0)
        for pid in (1, 2, 3, 4, 5):
            dep.fail(pid)
        with pytest.raises((TimeoutError, RequestCancelled)):
            h.result(timeout=1)

    def test_instrumentation_passthrough(self):
        dep = make("sim")
        dep.run_rounds(1)
        assert dep.trace is dep.cluster.trace
        assert dep.sim.now > 0
        assert dep.trace.agreement_latency(0) > 0


class TestTcpBackend:
    def test_future_resolves_with_delivery(self):
        with make("tcp") as dep:
            h = dep.submit("net", at=0)
            fut = dep.future_of(h)
            assert not fut.done()
            dep.run_rounds(1)
            assert fut.done() and fut.result().round == 0
            assert dep.future_of(h) is fut

    def test_future_of_failed_origin_raises(self):
        with make("tcp", n=8) as dep:
            dep.run_rounds(1)
            h = dep.submit("gone", at=5)
            fut = dep.future_of(h)
            dep.fail(5)
            assert isinstance(fut.exception(), RequestCancelled)

    def test_join_unsupported(self):
        with make("tcp") as dep:
            with pytest.raises(UnsupportedOperation):
                dep.join(0)

    def test_restart_after_stop_rejected(self):
        dep = make("tcp")
        dep.start()
        dep.run_rounds(1)
        dep.stop()
        with pytest.raises(RuntimeError, match="restart"):
            dep.start()

    def test_facade_and_direct_cluster_submissions_share_one_sequencer(self):
        with make("tcp") as dep:
            h0 = dep.submit("via-facade", at=0)
            dep._run(dep.cluster.submit(0, "direct"))
            h1 = dep.submit("facade-again", at=0)
            assert h0.key == (0, 0) and h1.key == (0, 2)
            dep.run_rounds(1)
            assert h0.done and h1.done
            data = [r.data for r in dep.deliveries()[0].requests()]
            assert data == ["via-facade", "direct", "facade-again"]

    def test_run_rounds_with_no_live_nodes_is_a_clean_noop(self):
        with make("tcp") as dep:
            for pid in dep.members:
                dep.fail(pid)
            assert dep.run_rounds(1) == []

    def test_two_deployments_coexist(self):
        # kernel-assigned ports: no port-range collisions between clusters
        with make("tcp") as a, make("tcp") as b:
            ha = a.submit("a", at=0)
            hb = b.submit("b", at=0)
            a.run_rounds(1)
            b.run_rounds(1)
            assert ha.done and hb.done
            assert a.check_agreement() and b.check_agreement()
