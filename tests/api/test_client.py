"""Client ingress API: sessions, per-round batching, flow control, origin
failover, reads — and the cross-backend acceptance scenario.

The simulator carries the detailed semantics (virtual time makes every
case cheap); TCP runs the failover and the acceptance population to prove
the ingress layer is genuinely transport-agnostic.
"""

import pytest

from repro.api import (
    Client,
    ClientRequestHandle,
    Overloaded,
    RateLimited,
    ReplicatedKVStore,
    ReplicatedStateMachine,
    RequestCancelled,
    ShardedService,
    create_deployment,
    list_backends,
)
from repro.core.batching import (
    ClientRequest,
    decode_client_batch,
    encode_client_batch,
    is_client_batch,
)
from repro.graphs import gs_digraph
from repro.workloads import ClosedLoopPopulation


def make(backend="sim", n=8, d=3, **kwargs):
    return create_deployment(backend, gs_digraph(n, d), **kwargs)


def make_client(dep, **kwargs):
    rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
    return Client(dep, rsm=rsm, **kwargs), rsm


def envelopes_of(event):
    """The protocol-level batch messages of a round that are client
    envelopes, as (origin, decoded entries) pairs."""
    out = []
    for origin, batch in event.messages:
        for request in batch.requests:
            if is_client_batch(request.data):
                out.append((origin, decode_client_batch(request.data)))
    return out


# --------------------------------------------------------------------- #
# Wire image
# --------------------------------------------------------------------- #
class TestWireImage:
    def test_encode_decode_roundtrip(self):
        entries = (ClientRequest("alice", 0, ("set", "k", 1), 16),
                   ClientRequest("bob", 3, None, 1, noop=True))
        payload = encode_client_batch(entries)
        assert is_client_batch(payload)
        decoded = decode_client_batch(payload)
        assert decoded[0].key == ("alice", 0)
        assert decoded[0].nbytes == 16
        assert decoded[1].noop and decoded[1].key == ("bob", 3)

    def test_json_image_survives(self):
        # the TCP framing round-trips payloads through JSON; the envelope
        # must decode identically afterwards
        import json

        payload = encode_client_batch(
            (ClientRequest("c", 7, {"a": (1, 2)}, 8),))
        image = json.loads(json.dumps(payload))
        assert is_client_batch(image)
        entry = decode_client_batch(image)[0]
        assert entry.key == ("c", 7) and entry.data == {"a": [1, 2]}

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            encode_client_batch(())

    def test_non_envelope_rejected(self):
        assert not is_client_batch(["set", "k", 1])
        with pytest.raises(ValueError):
            decode_client_batch({"reqs": []})


# --------------------------------------------------------------------- #
# Batching semantics (simulator — virtual time)
# --------------------------------------------------------------------- #
class TestBatching:
    def test_one_message_per_origin_per_round(self):
        dep = make()
        client = Client(dep)
        s1 = client.session("a", origin=0)
        s2 = client.session("b", origin=0)
        s3 = client.session("c", origin=5)
        for _ in range(3):
            s1.submit("x")
            s2.submit("y")
            s3.submit("z")
        events = dep.run_rounds(1)
        envelopes = envelopes_of(events[0])
        # 9 submissions, but exactly two batch messages: origins 0 and 5
        assert [origin for origin, _ in envelopes] == [0, 5]
        assert sum(len(e) for _o, e in envelopes) == 9
        # within a batch: session creation order, then per-session seq
        assert [e.key for e in envelopes[0][1]] == [
            ("a", 0), ("a", 1), ("a", 2), ("b", 0), ("b", 1), ("b", 2)]

    def test_max_batch_requests_spills_to_next_round(self):
        dep = make()
        client = Client(dep, max_batch_requests=2)
        s = client.session("a", origin=0)
        handles = [s.submit(i) for i in range(5)]
        dep.run_rounds(1)
        assert [h.done for h in handles] == [True, True, False, False,
                                             False]
        dep.run_rounds(1)
        assert [h.done for h in handles] == [True] * 4 + [False]
        dep.run_rounds(1)
        assert all(h.done for h in handles)
        # rounds carried 2, 2, 1 — in submission order
        sizes = [sum(len(e) for _o, e in envelopes_of(ev))
                 for ev in dep.deliveries()]
        assert sizes == [2, 2, 1]

    def test_max_batch_bytes_caps_but_never_starves(self):
        dep = make()
        client = Client(dep, max_batch_bytes=100)
        s = client.session("a", origin=0)
        big = s.submit("big", nbytes=300)     # exceeds the cap alone
        small = s.submit("small", nbytes=50)
        dep.run_rounds(1)
        # the oversize head still went (alone); the next entry waited
        assert big.done and not small.done
        dep.run_rounds(1)
        assert small.done

    def test_byte_cap_never_reorders_a_session(self):
        # regression: skipping only the oversize entry and packing a
        # later, smaller one would invert per-session submission order
        dep = make()
        client = Client(dep, max_batch_bytes=100)
        s = client.session("a", origin=0)
        h0 = s.submit(("set", "k", 0), nbytes=60)
        h1 = s.submit(("set", "k", 1), nbytes=90)   # closes the batch
        h2 = s.submit(("set", "k", 2), nbytes=10)   # must NOT jump ahead
        dep.run_rounds(1)
        assert h0.done and not h1.done and not h2.done
        dep.run_rounds(1)
        assert h1.done and h2.done
        order = [r.seq for ev in dep.deliveries()
                 for r in ev.client_requests()]
        assert order == [0, 1, 2]

    def test_submit_race_requeues_instead_of_dropping(self):
        # regression: a ValueError from the backend submit (origin died
        # between routing and entry) must re-buffer the taken entries,
        # not strand their handles forever
        dep = make()
        client = Client(dep)
        s = client.session("a", origin=0)
        h = s.submit("x")
        real_submit = dep.submit
        calls = {"n": 0}

        def flaky_submit(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("server 0 is not an alive member")
            return real_submit(*args, **kwargs)

        dep.submit = flaky_submit
        client.flush()               # first attempt fails mid-submit
        assert s.pending == 1 and not h.done
        dep.run_rounds(1)            # next round boundary reroutes it
        assert h.done

    def test_handles_resolve_from_unpacked_batch(self):
        dep = make()
        client, rsm = make_client(dep)
        s = client.session("alice", origin=2)
        h1 = s.submit(("set", "k", 1))
        h2 = s.submit(("set", "k", 2))
        dep.run_rounds(1)
        assert h1.done and h2.done and h1.round == h2.round == 0
        # the RSM saw individual requests with (client, seq) identity
        assert h1.value() is None        # previous value of k
        assert h2.value() == 1
        event = dep.deliveries()[0]
        unpacked = [(r.client, r.seq, r.data)
                    for r in event.client_requests()]
        assert unpacked == [("alice", 0, ["set", "k", 1]),
                            ("alice", 1, ["set", "k", 2])]

    def test_explicit_flush_packs_now(self):
        dep = make()
        client = Client(dep)
        s = client.session("a", origin=0)
        s.submit(1)
        assert client.in_flight == 1 and s.pending == 1
        s.flush()
        assert s.pending == 0 and client.batches_flushed == 1
        dep.run_rounds(1)
        assert client.in_flight == 0

    def test_done_callback_and_result(self):
        dep = make()
        client = Client(dep)
        s = client.session("a", origin=0)
        h = s.submit("x")
        seen = []
        h.add_done_callback(lambda hd: seen.append(hd.key))
        event = h.result()              # drives the deployment itself
        assert seen == [("a", 0)] and h.delivery is event
        h.add_done_callback(lambda hd: seen.append("late"))
        assert seen == [("a", 0), "late"]

    def test_session_ids_unique_and_autonamed(self):
        dep = make()
        client = Client(dep)
        assert client.session().client_id == "c0"
        assert client.session().client_id == "c1"
        client.session("mine")
        with pytest.raises(ValueError, match="already in use"):
            client.session("mine")

    def test_session_ids_unique_across_clients_on_one_target(self):
        # two Clients on one deployment share the (client, seq) namespace
        # at the RSM dedup layer, so a shared id would silently drop
        # writes — it must be rejected at session creation
        dep = make()
        Client(dep).session("shared")
        with pytest.raises(ValueError, match="already in use"):
            Client(dep).session("shared")

    def test_session_origin_validation(self):
        dep = make()
        client = Client(dep)
        with pytest.raises(ValueError, match="not an alive member"):
            client.session("a", origin=99)


# --------------------------------------------------------------------- #
# Flow control
# --------------------------------------------------------------------- #
class TestFlowControl:
    def test_reject_raises_overloaded(self):
        dep = make()
        client = Client(dep, max_in_flight=2, admission="reject")
        s = client.session("a", origin=0)
        s.submit(1)
        s.submit(2)
        with pytest.raises(Overloaded, match="max_in_flight=2"):
            s.submit(3)

    def test_block_drives_rounds_until_capacity(self):
        dep = make()
        client = Client(dep, max_in_flight=2)
        s = client.session("a", origin=0)
        h1 = s.submit(1)
        h2 = s.submit(2)
        h3 = s.submit(3)             # blocks: must drive a round to fit
        assert h1.done and h2.done and not h3.done
        assert client.in_flight == 1
        dep.run_rounds(1)
        assert h3.done

    def test_block_raises_when_no_progress_possible(self):
        dep = make(n=6)
        client = Client(dep, max_in_flight=1)
        s = client.session("a", origin=0)
        s.submit(1)
        for pid in dep.members:
            dep.fail(pid)
        with pytest.raises((Overloaded, RequestCancelled)):
            s.submit(2)

    def test_budget_counts_buffered_and_inflight(self):
        dep = make()
        client = Client(dep, max_in_flight=3, admission="reject")
        s = client.session("a", origin=0)
        s.submit(1)
        s.flush()                    # moves to in-flight, still budgeted
        s.submit(2)
        s.submit(3)
        assert client.in_flight == 3
        with pytest.raises(Overloaded):
            s.submit(4)

    def test_validation(self):
        dep = make()
        with pytest.raises(ValueError):
            Client(dep, max_in_flight=0)
        with pytest.raises(ValueError):
            Client(dep, max_batch_requests=0)
        with pytest.raises(ValueError):
            Client(dep, admission="drop")


# --------------------------------------------------------------------- #
# Reads
# --------------------------------------------------------------------- #
class TestReads:
    def test_agreed_read_sees_own_buffered_write(self):
        dep = make()
        client, _rsm = make_client(dep)
        s = client.session("a", origin=0)
        s.submit(("set", "k", 41))
        s.submit(("set", "k", 42))
        # nothing flushed yet: the agreed read rides the same round as the
        # buffered writes and linearises after them
        assert s.read("k") == 42

    def test_local_read_is_replica_snapshot(self):
        dep = make()
        client, _rsm = make_client(dep)
        s = client.session("a", origin=0)
        assert s.read("k", consistency="local") is None
        s.submit(("set", "k", 7))
        assert s.read("k", consistency="local") is None  # not yet agreed
        dep.run_rounds(1)
        assert s.read("k", consistency="local") == 7

    def test_read_requires_rsm(self):
        dep = make()
        client = Client(dep)         # no rsm
        s = client.session("a", origin=0)
        with pytest.raises(ValueError, match="no state machine"):
            s.read("k")

    def test_unknown_consistency(self):
        dep = make()
        client, _ = make_client(dep)
        s = client.session("a", origin=0)
        with pytest.raises(ValueError, match="unknown consistency"):
            s.read("k", consistency="monotonic")


# --------------------------------------------------------------------- #
# Failover (parametrised over both backends)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["sim", "tcp"])
class TestFailover:
    def test_unacked_requests_resubmitted_exactly_once(self, backend):
        with make(backend) as dep:
            client, rsm = make_client(dep)
            s = client.session("alice", origin=0)
            h = s.submit(("set", "k", "v"))
            client.flush()           # envelope now in flight at origin 0
            dep.fail(0)
            dep.run_rounds(2)
            assert h.done and h.attempts == 2
            assert h.origin is not None and h.origin != 0
            assert client.resubmitted == 1 and s.resubmissions == 1
            # exactly-once: identical dedup verdicts on every replica
            assert set(rsm.duplicates_skipped.values()) == {0}
            assert rsm.assert_convergence() == (("k", "v"),)
            assert dep.check_agreement()

    def test_buffered_requests_reroute_without_resubmission(self, backend):
        with make(backend) as dep:
            client, rsm = make_client(dep)
            s = client.session("alice", origin=0)
            h = s.submit(("set", "k", 1))     # still buffered
            dep.fail(0)
            dep.run_rounds(1)
            assert h.done and h.attempts == 1 and h.origin != 0
            assert client.resubmitted == 0
            assert s.origin != 0              # session moved for good

    def test_protocol_handle_cancels_but_client_handle_survives(
            self, backend):
        with make(backend) as dep:
            # protocol-level handle: hard-cancelled on origin failure
            raw = dep.submit("raw", at=0)
            client, _rsm = make_client(dep)
            s = client.session("alice", origin=0)
            managed = s.submit(("set", "k", 1))
            client.flush()
            dep.fail(0)
            assert raw.cancelled
            with pytest.raises(RequestCancelled):
                raw.result()
            dep.run_rounds(2)
            assert managed.done and not managed.cancelled

    def test_whole_group_death_cancels_client_handles(self, backend):
        with make(backend, n=6) as dep:
            client, _rsm = make_client(dep)
            s = client.session("alice", origin=0)
            h = s.submit(("set", "k", 1))
            for pid in dep.members:
                dep.fail(pid)
            client.flush()
            assert h.cancelled
            with pytest.raises(RequestCancelled, match="no surviving"):
                h.result()


# --------------------------------------------------------------------- #
# Exactly-once dedup at the RSM layer
# --------------------------------------------------------------------- #
class TestExactlyOnceDedup:
    def test_duplicate_entry_applies_once_on_every_replica(self):
        # the failover race the dedup table exists for: the original
        # envelope WAS agreed, but the client could not know and
        # resubmitted the entry through another server
        dep = make()
        rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
        entry = ClientRequest("alice", 0, ("set", "k", 1), 8)
        dep.submit(encode_client_batch((entry,)), at=0)
        dep.submit(encode_client_batch((entry,)), at=3)   # the retry
        dep.run_rounds(1)
        assert set(rsm.duplicates_skipped.values()) == {1}
        assert rsm.assert_convergence() == (("k", 1),)
        assert rsm.results() == (None,)          # applied exactly once
        assert rsm.has_applied("alice", 0)
        assert rsm.client_result("alice", 0) is None

    def test_noop_entries_never_touch_the_state_machine(self):
        dep = make()
        rsm = ReplicatedStateMachine(dep, ReplicatedKVStore)
        entries = (ClientRequest("a", 0, ("set", "k", 5), 8),
                   ClientRequest("a", 1, None, 1, noop=True))
        dep.submit(encode_client_batch(entries), at=0)
        dep.run_rounds(1)
        assert rsm.results() == (None,)          # only the write applied
        assert rsm.assert_convergence() == (("k", 5),)
        assert not rsm.has_applied("a", 1)


# --------------------------------------------------------------------- #
# Sharded service targets
# --------------------------------------------------------------------- #
class TestServiceSessions:
    def make_service(self, backend="sim", shards=2, n=6):
        return ShardedService(backend,
                              [gs_digraph(n, 3) for _ in range(shards)],
                              state_machine=ReplicatedKVStore)

    def test_keyed_submissions_route_through_partitioner(self):
        svc = self.make_service()
        client = Client(svc)
        s = client.session("alice")
        keys = [f"k{i}" for i in range(16)]
        handles = [s.submit(("set", k, i), key=k)
                   for i, k in enumerate(keys)]
        svc.run_rounds(1)
        assert all(h.done for h in handles)
        for k, h in zip(keys, handles):
            assert h.shard == svc.shard_of(k)
        assert {h.shard for h in handles} == {0, 1}
        # within one shard: one envelope per (key-sticky) origin
        for delivery in svc.deliveries():
            for origin, entries in envelopes_of(delivery.event):
                for e in entries:
                    _shard, expected = svc.origin_of(
                        # entry data is ["set", key, i]
                        e.data[1])
                    assert origin == expected

    def test_key_required_and_origin_rejected(self):
        svc = self.make_service()
        client = Client(svc)
        with pytest.raises(ValueError, match="route by key"):
            client.session("a", origin=0)
        s = client.session("a")
        with pytest.raises(ValueError, match="need a key"):
            s.submit("data")

    def test_reads_route_to_owning_shard(self):
        svc = self.make_service()
        client = Client(svc)
        s = client.session("alice")
        s.submit(("set", "hot", 9), key="hot")
        assert s.read("hot") == 9
        assert s.read("hot", consistency="local") == 9
        assert s.read("missing-key", consistency="local") is None

    def test_two_shard_failover_confined_to_owning_group(self):
        svc = self.make_service()
        client = Client(svc)
        s = client.session("alice")
        keys = [f"k{i}" for i in range(12)]
        handles = [s.submit(("set", k, i), key=k)
                   for i, k in enumerate(keys)]
        client.flush()
        # kill one victim origin that actually owns in-flight requests
        victim = next(h for h in handles if h.shard == 0)
        svc.fail(0, victim.origin)
        svc.run_rounds(2)
        assert all(h.done for h in handles)
        moved = [h for h in handles if h.attempts > 1]
        assert moved and all(h.shard == 0 for h in moved)
        assert svc.check_agreement()
        # every shard's replicas converge and dedup saw no duplicates
        assert all(set(rsm.duplicates_skipped.values()) == {0}
                   for rsm in svc.machines.values())
        svc.snapshot()

    def test_service_handle_cancelled_when_shard_dies(self):
        svc = self.make_service(shards=1)
        handle = svc.submit("k", ("set", "k", 1))
        for pid in range(6):
            svc.fail(0, pid)
        assert handle.cancelled
        # and new submissions surface the normalised error (satellite)
        with pytest.raises(RequestCancelled, match="shard 0"):
            svc.submit("k", ("set", "k", 2))

    def test_service_on_deliver_stream(self):
        svc = self.make_service()
        seen = []
        svc.on_deliver(lambda d: seen.append((d.shard, d.round)))
        svc.run_rounds(2)
        assert sorted(seen) == [(0, 0), (0, 1), (1, 0), (1, 1)]


# --------------------------------------------------------------------- #
# Backend registry helper (satellite)
# --------------------------------------------------------------------- #
class TestListBackends:
    def test_names_and_capabilities(self):
        listed = list_backends()
        assert set(listed) >= {"sim", "tcp"}
        assert listed["sim"] == ("join", "shared-engine", "time")
        assert listed["tcp"] == ()

    def test_unknown_backend_error_names_capabilities(self):
        with pytest.raises(ValueError, match=r"sim \(join"):
            create_deployment("warp", gs_digraph(6, 3))


# --------------------------------------------------------------------- #
# Closed-loop population + the cross-backend acceptance scenario
# --------------------------------------------------------------------- #
class TestClosedLoopPopulation:
    def test_window_is_respected_and_deterministic(self):
        def run():
            dep = make()
            client, rsm = make_client(dep)
            pop = ClosedLoopPopulation(client, 6, window=3, num_keys=4)
            pop.run(4)
            assert pop.outstanding <= 6 * 3
            return ([(r.client, r.seq, tuple(r.data))
                     for ev in dep.deliveries()
                     for r in ev.client_requests()],
                    rsm.assert_convergence())

        first, second = run(), run()
        assert first == second
        order, snap = first
        assert order and snap

    def test_validation(self):
        dep = make()
        client = Client(dep)
        with pytest.raises(ValueError):
            ClosedLoopPopulation(client, 0)
        with pytest.raises(ValueError):
            ClosedLoopPopulation(client, 1, window=0)


class TestCrossBackendAcceptance:
    """The ISSUE acceptance bar: the same seeded client population on sim
    and TCP — identical per-request delivery order and KV end state,
    including one origin failover mid-run, with no duplicate applies."""

    def run_population(self, backend, **kwargs):
        with make(backend, **kwargs) as dep:
            client, rsm = make_client(dep, max_batch_requests=8)
            pop = ClosedLoopPopulation(client, 10, window=2, num_keys=4)
            pop.run(2)
            pop.top_up()
            client.flush()           # in-flight envelopes at every origin
            dep.fail(0)              # one origin dies mid-run
            pop.run(3)
            order = [(ev.round,) + tuple(
                        (r.client, r.seq) for r in ev.client_requests())
                     for ev in dep.deliveries()]
            assert dep.check_agreement()
            duplicates = set(rsm.duplicates_skipped.values())
            return (order, rsm.assert_convergence(), duplicates,
                    client.resubmitted, pop.resolved)

    def test_identical_order_state_and_no_duplicate_applies(self):
        sim = self.run_population("sim")
        tcp = self.run_population("tcp")
        sim_order, sim_snap, sim_dupes, sim_resub, sim_resolved = sim
        tcp_order, tcp_snap, tcp_dupes, tcp_resub, tcp_resolved = tcp
        assert sim_order == tcp_order
        assert sim_snap == tcp_snap
        assert sim_dupes == tcp_dupes == {0}
        assert sim_resub == tcp_resub and sim_resub > 0
        assert sim_resolved == tcp_resolved > 0

    def test_json_codec_matches_binary_wire(self):
        """Differential oracle at the acceptance level: the same population
        over TCP under the original JSON wire image and the binary codec —
        byte-different frames, identical agreed outcome."""
        binary = self.run_population("tcp")             # codec="binary"
        json_ = self.run_population("tcp", codec="json")
        assert binary == json_

    def test_process_runtime_matches_inproc(self):
        """The acceptance population through one-OS-process-per-server:
        the same order, state, failover and dedup behaviour as in-process
        TCP and the simulator."""
        inproc = self.run_population("tcp")
        proc = self.run_population("tcp", runtime="process")
        assert inproc == proc


# --------------------------------------------------------------------- #
# Per-session rate limits
# --------------------------------------------------------------------- #
class TestRateLimits:
    def test_reject_when_bucket_empty(self):
        dep = make()
        client = Client(dep, admission="reject")
        s = client.session("a", rate_limit=2, burst=2)
        s.submit(1)
        s.submit(2)
        with pytest.raises(RateLimited):
            s.submit(3)

    def test_bucket_refills_per_delivered_round(self):
        dep = make()
        client = Client(dep, admission="reject")
        s = client.session("a", rate_limit=2, burst=2)
        s.submit(1)
        s.submit(2)
        dep.run_rounds(1)            # flushes + refills (+2, capped at 2)
        s.submit(3)
        s.submit(4)
        with pytest.raises(RateLimited):
            s.submit(5)

    def test_burst_caps_accumulation(self):
        dep = make()
        client = Client(dep, admission="reject")
        s = client.session("a", rate_limit=5, burst=1)
        dep.run_rounds(3)            # idle rounds must not stockpile tokens
        s.submit(1)
        with pytest.raises(RateLimited):
            s.submit(2)

    def test_block_mode_drives_rounds_until_refill(self):
        dep = make()
        client = Client(dep)         # admission="block"
        s = client.session("a", rate_limit=1)
        h1 = s.submit(1)
        h2 = s.submit(2)             # blocks: drives a round, bucket refills
        assert h1.done               # the driven round agreed the first
        dep.run_rounds(1)
        assert h2.done

    def test_rate_limited_is_overloaded(self):
        # callers guarding on Overloaded keep working
        assert issubclass(RateLimited, Overloaded)

    def test_unlimited_sessions_unaffected(self):
        dep = make()
        client = Client(dep, admission="reject")
        limited = client.session("a", rate_limit=1)
        free = client.session("b")
        limited.submit(1)
        with pytest.raises(RateLimited):
            limited.submit(2)
        for i in range(10):          # no bucket on the free session
            free.submit(i)

    def test_validation(self):
        dep = make()
        client = Client(dep)
        with pytest.raises(ValueError, match="rate_limit"):
            client.session("a", rate_limit=0)
        with pytest.raises(ValueError, match="burst needs"):
            client.session("b", burst=4)
        with pytest.raises(ValueError, match="burst must"):
            client.session("c", rate_limit=1, burst=0.5)


# --------------------------------------------------------------------- #
# Read-your-writes local reads
# --------------------------------------------------------------------- #
class TestReadYourWrites:
    def test_local_read_served_once_replica_caught_up(self):
        dep = make()
        client, rsm = make_client(dep)
        s = client.session("a", origin=0)
        s.submit(("set", "k", 7))
        dep.run_rounds(1)
        assert s.high_water_round == rsm.applied_marker()
        assert s.read("k", consistency="local") == 7
        assert client.local_reads_served == 1
        assert client.local_reads_escalated == 0

    def test_local_read_escalates_when_replica_lags(self):
        dep = make()
        client, rsm = make_client(dep)
        s = client.session("a", origin=0)
        s.submit(("set", "k", 7))
        dep.run_rounds(1)
        # pretend the session was acknowledged at a round no replica has
        # applied yet (the lagging-replica case that must not serve stale
        # state): the read escalates to an agreed read and still answers
        client._col_hw_round[s.slot] = 10 ** 6
        assert s.read("k", consistency="local") == 7
        assert client.local_reads_escalated == 1
        # the escalation rode a no-op round through agreement
        assert rsm.applied_marker()[1] > 0

    def test_explicit_pid_bypasses_the_gate(self):
        dep = make()
        client, _rsm = make_client(dep)
        s = client.session("a", origin=0)
        s.submit(("set", "k", 7))
        dep.run_rounds(1)
        client._col_hw_round[s.slot] = 10 ** 6   # would force escalation
        before = client.local_reads_escalated
        assert s.read("k", consistency="local", pid=1) == 7
        assert client.local_reads_escalated == before

    def test_fresh_session_reads_locally(self):
        # no writes -> high water (-1, -1) -> any replica qualifies
        dep = make()
        client, _rsm = make_client(dep)
        s = client.session("a", origin=0)
        assert s.read("k", consistency="local") is None
        assert client.local_reads_served == 1


# --------------------------------------------------------------------- #
# Awaitable handles
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["sim", "tcp"])
class TestAwaitableHandles:
    def test_future_resolves_with_delivery(self, backend):
        with make(backend) as dep:
            client, _rsm = make_client(dep)
            s = client.session("a", origin=0)
            h = s.submit(("set", "k", 1))
            future = h.future()
            assert not future.done()
            dep.run_rounds(1)
            assert future.done()
            assert future.result() is h.delivery

    def test_future_survives_origin_failover(self, backend):
        with make(backend) as dep:
            client, _rsm = make_client(dep)
            s = client.session("alice", origin=0)
            h = s.submit(("set", "k", 1))
            future = h.future()
            client.flush()
            dep.fail(0)
            dep.run_rounds(2)
            assert h.done and h.attempts == 2
            assert future.done() and future.result() is h.delivery

    def test_future_rejects_on_whole_group_death(self, backend):
        with make(backend, n=6) as dep:
            client, _rsm = make_client(dep)
            s = client.session("alice", origin=0)
            h = s.submit(("set", "k", 1))
            future = h.future()
            for pid in dep.members:
                dep.fail(pid)
            client.flush()
            assert h.cancelled and future.done()
            with pytest.raises(RequestCancelled):
                future.result()
