"""D201 / A301 / L401 fixtures: the whole-program dataflow rules.

All snippets lint under ``repro.runtime`` module paths — D201 gates the
runtime (where D101's lexical wall-clock ban does *not* apply, so each
finding here is attributable to the taint engine alone), and A301/L401
only gate the runtime.
"""

from .conftest import rule_ids

RUNTIME = "repro.runtime.fixture"


class TestD201Positives:
    def test_wall_clock_into_envelope_payload(self, lint):
        findings = lint("""
            import time

            def send():
                return Broadcast(1, 2, payload=str(time.time()).encode())
        """, module=RUNTIME)
        assert rule_ids(findings) == ["D201"]
        assert "time.time" in findings[0].message

    def test_taint_through_helper_return(self, lint):
        findings = lint("""
            import time

            def stamp():
                return time.time()

            def send():
                payload = stamp()
                return Broadcast(1, 2, payload)
        """, module=RUNTIME)
        assert rule_ids(findings) == ["D201"]

    def test_tainted_argument_to_param_sinking_callee(self, lint):
        findings = lint("""
            import time

            class RoundContext:
                pass

            def record(ctx: RoundContext, value):
                ctx.known = value

            def on_timeout(ctx):
                record(ctx, time.monotonic())
        """, module=RUNTIME)
        assert rule_ids(findings) == ["D201"]
        assert "record" in findings[0].message

    def test_round_context_field_store(self, lint):
        findings = lint("""
            import os

            class RoundContext:
                pass

            def seed_round(ctx: RoundContext):
                ctx.nonce = os.urandom(8)
        """, module=RUNTIME)
        assert rule_ids(findings) == ["D201"]
        assert "RoundContext.nonce" in findings[0].message

    def test_id_into_apply_result(self, lint):
        findings = lint("""
            class Machine:
                def snapshot(self):
                    return b""

                def apply(self, cmd):
                    return id(cmd)
        """, module=RUNTIME)
        assert rule_ids(findings) == ["D201"]
        assert "apply" in findings[0].message

    def test_list_over_set_returning_helper(self, lint):
        # the interprocedural set-order escape D104's per-scope
        # inference cannot see: the set literal is in another function
        findings = lint("""
            def peers():
                return {3, 1, 2}

            def send():
                order = list(peers())
                return Broadcast(1, 2, order)
        """, module=RUNTIME)
        assert rule_ids(findings) == ["D201"]
        assert "set-order" in findings[0].message


class TestD201Negatives:
    def test_sorted_over_set_returning_helper_is_clean(self, lint):
        findings = lint("""
            def peers():
                return {3, 1, 2}

            def send():
                order = sorted(peers())
                return Broadcast(1, 2, order)
        """, module=RUNTIME)
        assert findings == []

    def test_wall_clock_not_reaching_a_sink_is_clean(self, lint):
        # runtime code may time things — only agreed state is gated
        findings = lint("""
            import time

            def measure():
                start = time.monotonic()
                return time.monotonic() - start
        """, module=RUNTIME)
        assert findings == []

    def test_seeded_rng_into_envelope_is_clean(self, lint):
        findings = lint("""
            import random

            def send(seed):
                rng = random.Random(seed)
                return Broadcast(1, 2, rng.random())
        """, module=RUNTIME)
        assert findings == []

    def test_benches_are_exempt_by_policy(self, lint):
        # latency benches legitimately timestamp payloads
        findings = lint("""
            import time

            def send():
                return Broadcast(1, 2, payload=str(time.time()).encode())
        """, module="repro.bench.fixture")
        assert findings == []


class TestA301:
    def test_blocking_one_helper_deep(self, lint):
        findings = lint("""
            import time

            def backoff():
                time.sleep(1)

            class Node:
                async def pump(self):
                    backoff()
        """, module=RUNTIME)
        assert rule_ids(findings) == ["A301"]
        assert "time.sleep" in findings[0].message

    def test_blocking_two_helpers_deep_names_the_chain(self, lint):
        findings = lint("""
            import time

            def leaf():
                time.sleep(1)

            def middle():
                leaf()

            async def pump():
                middle()
        """, module=RUNTIME)
        assert rule_ids(findings) == ["A301"]
        assert "middle -> leaf" in findings[0].message

    def test_direct_blocking_is_a202_not_a301(self, lint):
        # the lexical rule keeps the direct case; A301 adds only depth
        findings = lint("""
            import time

            async def pump():
                time.sleep(1)
        """, module=RUNTIME)
        assert rule_ids(findings) == ["A202"]

    def test_async_chain_to_asyncio_sleep_is_clean(self, lint):
        findings = lint("""
            import asyncio

            async def pause():
                await asyncio.sleep(0)

            async def pump():
                await pause()
        """, module=RUNTIME)
        assert findings == []

    def test_sync_caller_of_blocking_helper_is_clean(self, lint):
        findings = lint("""
            import time

            def backoff():
                time.sleep(1)

            def shutdown():
                backoff()
        """, module=RUNTIME)
        assert findings == []


class TestL401:
    def test_slow_await_one_call_deep_under_lock(self, lint):
        findings = lint("""
            class Node:
                async def flush(self):
                    async with self._lock:
                        await self._push(b"x")

                async def _push(self, frame):
                    writer = self._writer
                    writer.write(frame)
                    await writer.drain()
        """, module=RUNTIME)
        assert rule_ids(findings) == ["L401"]
        assert "flush" in findings[0].message
        assert "_push" in findings[0].message

    def test_lexical_slow_await_stays_l301_only(self, lint):
        findings = lint("""
            import asyncio

            class Node:
                async def flush(self):
                    async with self._lock:
                        await asyncio.sleep(1)
        """, module=RUNTIME)
        assert rule_ids(findings) == ["L301"]

    def test_fast_callee_under_lock_is_clean(self, lint):
        findings = lint("""
            class Node:
                async def flush(self):
                    async with self._lock:
                        await self._bump()

                async def _bump(self):
                    self.counter += 1
        """, module=RUNTIME)
        assert findings == []

    def test_blocking_call_in_callee_also_counts_as_slow(self, lint):
        findings = lint("""
            import time

            class Node:
                async def flush(self):
                    async with self._lock:
                        await self._settle()

                async def _settle(self):
                    time.sleep(0.1)
        """, module=RUNTIME)
        # one seeded defect, three complementary views: the lexical
        # blocking call (A202), the transitive chain from flush (A301),
        # and the lock held across it (L401)
        assert set(rule_ids(findings)) == {"A202", "A301", "L401"}

    def test_slow_chain_outside_lock_is_clean(self, lint):
        findings = lint("""
            class Node:
                async def flush(self):
                    async with self._lock:
                        frame = self._frame
                    await self._push(frame)

                async def _push(self, frame):
                    await self._writer.drain()
        """, module=RUNTIME)
        assert findings == []
