"""Shared helpers for the lint-rule fixture tests."""

import textwrap

import pytest

from repro.lint import lint_source


@pytest.fixture
def lint():
    """Lint a dedented snippet under a virtual module path.

    Default module is ``repro.sim.fixture`` so the D-rules apply; pass
    ``module=`` to target other policy scopes.
    """

    def run(source, *, module="repro.sim.fixture", path=None):
        if path is None:
            path = "src/" + module.replace(".", "/") + ".py"
        return lint_source(textwrap.dedent(source), path, module=module)

    return run


def rule_ids(findings):
    return [f.rule_id for f in findings]
