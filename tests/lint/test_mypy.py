"""mypy --strict gate over repro.core + repro.sim + repro.runtime + repro.api.

The strict scope is configured in pyproject.toml ([tool.mypy]); this test
runs the same invocation as the CI `lint` job.  mypy is an optional tool —
when it is not installed (the runtime has no typing-tool dependencies) the
test skips and CI remains the enforcement point.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(importlib.util.find_spec("mypy") is None,
                    reason="mypy not installed; enforced by the CI lint job")
def test_strict_scope_is_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro.core", "-p", "repro.sim",
         "-p", "repro.runtime", "-p", "repro.api"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, (
        f"mypy --strict over repro.core + repro.sim + repro.runtime "
        f"+ repro.api "
        f"failed:\n{proc.stdout}\n{proc.stderr}")
