"""W601: wire-schema parity across planes and the lockfile drift gate."""

import json
import textwrap

import pytest

from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.rules_wire_schema import (LOCKFILE_NAME,
                                          regenerate_lockfile)

from .conftest import rule_ids


def w601(findings):
    return [f for f in findings if f.rule_id == "W601"]


def lint_wire(lint, source):
    # W601 anchors on the module assigning WIRE_VERSION; the fixture
    # path's basename is not wire.py, so the lockfile gate stays out of
    # scope and only the parity checks run
    return lint(source, module="repro.runtime.fixture")


class TestBinaryParity:
    def test_matching_envelope_is_clean(self, lint):
        # decode-side `rnd` normalises to `round`: spelling is not drift
        findings = lint_wire(lint, """
            WIRE_VERSION = 1

            _K_FWD = 7


            def _frame(parts):
                return repr(parts).encode()


            def encode_forward(msg):
                return _frame((_K_FWD, msg.sender, msg.round))


            def decode(env):
                if env[0] == _K_FWD:
                    _k, sender, rnd = env
                    return sender, rnd
                raise ValueError(env)
        """)
        assert w601(findings) == []

    def test_encode_decode_field_mismatch(self, lint):
        findings = lint_wire(lint, """
            WIRE_VERSION = 1

            _K_FWD = 7


            def _frame(parts):
                return repr(parts).encode()


            def encode_forward(msg):
                return _frame((_K_FWD, msg.sender, msg.round,
                               msg.origin))


            def decode(env):
                if env[0] == _K_FWD:
                    _k, sender, rnd = env
                    return sender, rnd
                raise ValueError(env)
        """)
        assert rule_ids(findings) == ["W601"]
        (finding,) = findings
        assert "_K_FWD" in finding.message
        assert "encodes fields (sender, round, origin)" in finding.message
        assert "decodes (sender, round)" in finding.message

    def test_kind_encoded_but_never_decoded(self, lint):
        findings = lint_wire(lint, """
            WIRE_VERSION = 1

            _K_FWD = 7


            def _frame(parts):
                return repr(parts).encode()


            def encode_forward(msg):
                return _frame((_K_FWD, msg.sender, msg.round))
        """)
        assert rule_ids(findings) == ["W601"]
        assert "encoded but not decoded" in findings[0].message

    def test_kind_decoded_but_never_encoded(self, lint):
        findings = lint_wire(lint, """
            WIRE_VERSION = 1

            _K_FWD = 7


            def decode(env):
                if env[0] == _K_FWD:
                    _k, sender, rnd = env
                    return sender, rnd
                raise ValueError(env)
        """)
        assert rule_ids(findings) == ["W601"]
        assert "decoded but not encoded" in findings[0].message

    def test_request_row_mismatch(self, lint):
        findings = lint_wire(lint, """
            WIRE_VERSION = 1

            _K_BATCH = 1


            def _frame(parts):
                return repr(parts).encode()


            def encode_batch(batch):
                rows = tuple((r.origin, r.seq, r.data)
                             for r in batch.rows)
                return _frame((_K_BATCH, batch.sender, rows))


            def decode(env):
                if env[0] == _K_BATCH:
                    _k, sender, rows = env
                    out = []
                    for row in rows:
                        req = Request()
                        req.__dict__.update(origin=row[0], seq=row[1])
                        out.append(req)
                    return sender, out
                raise ValueError(env)
        """)
        # (the fixture's __dict__.update also trips F401, correctly:
        # only the real wire.py is policy-whitelisted for the fast path)
        assert rule_ids(w601(findings)) == ["W601"]
        finding = w601(findings)[0]
        assert "request row encodes (origin, seq, data)" in finding.message
        assert "decodes (origin, seq)" in finding.message


def _tree(tmp_path, **files):
    """A tmp package tree under repro/runtime (so policy scoping sees
    repro.runtime.* modules) with one file per keyword."""
    pkg = tmp_path / "repro" / "runtime"
    pkg.mkdir(parents=True)
    for name, source in files.items():
        (pkg / (name + ".py")).write_text(textwrap.dedent(source))
    return tmp_path


CLEAN_WIRE = """
    WIRE_VERSION = 1

    _K_BCAST = 1


    def _frame(parts):
        return repr(parts).encode()


    def encode_broadcast(msg, count, nbytes, rows):
        return _frame((_K_BCAST, msg.sender, msg.round, count,
                       nbytes, rows))


    def decode(env):
        if env[0] == _K_BCAST:
            _k, sender, rnd, count, nbytes, rows = env
            return 6, Broadcast(sender=sender, round=rnd, payload=rows)
        raise ValueError(env)
"""

CLEAN_FRAMING = """
    def encode_message(msg):
        if isinstance(msg, Broadcast):
            return {"type": "BCAST", "sender": msg.sender,
                    "round": msg.round, "payload": msg.payload}
        raise TypeError(msg)


    def decode_message(obj):
        kind = obj["type"]
        if kind == "BCAST":
            return 1, Broadcast(sender=obj["sender"],
                                round=obj["round"],
                                payload=obj["payload"])
        raise ValueError(kind)
"""


class TestJsonAndCrossPlane:
    def test_both_planes_matching_is_clean(self, tmp_path):
        # the binary batch fields count/nbytes/rows flatten to the JSON
        # payload envelope: carrying them is not cross-plane drift
        tree = _tree(tmp_path, fixwire=CLEAN_WIRE,
                     fixframing=CLEAN_FRAMING)
        assert lint_paths([str(tree)]) == []

    def test_json_encode_decode_mismatch(self, tmp_path):
        tree = _tree(tmp_path, fixwire="""
            WIRE_VERSION = 1

            _K_FWD = 1


            def _frame(parts):
                return repr(parts).encode()


            def encode_forward(msg):
                return _frame((_K_FWD, msg.sender, msg.round))


            def decode(env):
                if env[0] == _K_FWD:
                    _k, sender, rnd = env
                    return sender, rnd
                raise ValueError(env)
        """, fixframing="""
            def encode_message(msg):
                if isinstance(msg, Forward):
                    return {"type": "FWD", "sender": msg.sender,
                            "round": msg.round}
                raise TypeError(msg)


            def decode_message(obj):
                kind = obj["type"]
                if kind == "FWD":
                    return 1, Forward(sender=obj["sender"],
                                      round=obj["round"],
                                      origin=obj["origin"])
                raise ValueError(kind)
        """)
        findings = lint_paths([str(tree)])
        assert rule_ids(findings) == ["W601"]
        (finding,) = findings
        assert "JSON plane: Forward" in finding.message
        assert finding.path.endswith("fixframing.py")

    def test_field_on_one_plane_only_is_cross_plane_drift(
            self, tmp_path):
        # binary _K_FWD carries origin, the JSON Forward envelope does
        # not (consistently on both its sides): mixed-codec clusters
        # would lose the field crossing planes
        tree = _tree(tmp_path, fixwire="""
            WIRE_VERSION = 1

            _K_FWD = 1


            def _frame(parts):
                return repr(parts).encode()


            def encode_forward(msg):
                return _frame((_K_FWD, msg.sender, msg.round,
                               msg.origin))


            def decode(env):
                if env[0] == _K_FWD:
                    _k, sender, rnd, origin = env
                    return 4, Forward(sender=sender, round=rnd,
                                      origin=origin)
                raise ValueError(env)
        """, fixframing="""
            def encode_message(msg):
                if isinstance(msg, Forward):
                    return {"type": "FWD", "sender": msg.sender,
                            "round": msg.round}
                raise TypeError(msg)


            def decode_message(obj):
                kind = obj["type"]
                if kind == "FWD":
                    return 1, Forward(sender=obj["sender"],
                                      round=obj["round"])
                raise ValueError(kind)
        """)
        findings = lint_paths([str(tree)])
        assert rule_ids(findings) == ["W601"]
        (finding,) = findings
        assert "cross-plane drift for Forward" in finding.message
        assert "origin" in finding.message


GATE_WIRE = """
    WIRE_VERSION = {version}

    _K_FWD = 1
    _K_BWD = 2


    def _frame(parts):
        return repr(parts).encode()


    def encode_forward(msg):
        return _frame((_K_FWD, msg.sender, msg.round{extra_enc}))


    def encode_backward(msg):
        return _frame((_K_BWD, msg.sender, msg.round))


    def decode(env):
        if env[0] == _K_FWD:
            _k, sender, rnd{extra_dec} = env
            return sender, rnd
        if env[0] == _K_BWD:
            _k, sender, rnd = env
            return sender, rnd
        raise ValueError(env)
"""


def _gate_tree(tmp_path, version=1, extra=False):
    """A tree whose binary module IS named wire.py, engaging the gate."""
    return _tree(tmp_path, wire=GATE_WIRE.format(
        version=version,
        extra_enc=", msg.origin" if extra else "",
        extra_dec=", origin" if extra else ""))


class TestLockfileGate:
    def test_missing_lockfile_is_flagged(self, tmp_path):
        findings = lint_paths([str(_gate_tree(tmp_path))])
        assert rule_ids(findings) == ["W601"]
        assert f"no committed {LOCKFILE_NAME}" in findings[0].message

    def test_regenerated_lockfile_passes_the_gate(self, tmp_path):
        tree = _gate_tree(tmp_path)
        lock_path = regenerate_lockfile([str(tree)])
        assert lock_path is not None and lock_path.endswith(LOCKFILE_NAME)
        locked = json.loads(
            (tree / "repro" / "runtime" / LOCKFILE_NAME).read_text())
        assert locked["wire_version"] == 1
        assert locked["binary"]["FWD"]["encode"] == ["sender", "round"]
        assert lint_paths([str(tree)]) == []

    def test_schema_change_without_version_bump_fails(self, tmp_path):
        tree = _gate_tree(tmp_path)
        regenerate_lockfile([str(tree)])
        # add a field to encode AND decode: both parities still hold,
        # only the drift gate can catch it
        wire = tree / "repro" / "runtime" / "wire.py"
        wire.write_text(textwrap.dedent(GATE_WIRE.format(
            version=1, extra_enc=", msg.origin", extra_dec=", origin")))
        findings = lint_paths([str(tree)])
        assert rule_ids(findings) == ["W601"]
        (finding,) = findings
        assert "without a WIRE_VERSION bump" in finding.message
        assert "FWD" in finding.message

    def test_version_bump_with_stale_lockfile_fails(self, tmp_path):
        tree = _gate_tree(tmp_path)
        regenerate_lockfile([str(tree)])
        wire = tree / "repro" / "runtime" / "wire.py"
        wire.write_text(textwrap.dedent(GATE_WIRE.format(
            version=2, extra_enc=", msg.origin", extra_dec=", origin")))
        findings = lint_paths([str(tree)])
        assert rule_ids(findings) == ["W601"]
        assert "stale" in findings[0].message

    def test_bump_plus_regen_is_clean_again(self, tmp_path):
        tree = _gate_tree(tmp_path)
        regenerate_lockfile([str(tree)])
        wire = tree / "repro" / "runtime" / "wire.py"
        wire.write_text(textwrap.dedent(GATE_WIRE.format(
            version=2, extra_enc=", msg.origin", extra_dec=", origin")))
        regenerate_lockfile([str(tree)])
        assert lint_paths([str(tree)]) == []


class TestRegenCli:
    def test_regen_flag_writes_and_reports_the_path(self, tmp_path,
                                                    capsys):
        tree = _gate_tree(tmp_path)
        code = main(["--regen-wire-lock", str(tree)])
        out = capsys.readouterr().out
        assert code == 0
        assert LOCKFILE_NAME in out
        assert (tree / "repro" / "runtime" / LOCKFILE_NAME).exists()

    def test_regen_without_a_wire_module_fails(self, tmp_path, capsys):
        (tmp_path / "plain.py").write_text("x = 1\n")
        code = main(["--regen-wire-lock", str(tmp_path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "no wire module" in err
