"""R701: cross-thread races between the event loop and the facade."""

from .conftest import rule_ids


def r701(findings):
    return [f for f in findings if f.rule_id == "R701"]


def lint_runtime(lint, source):
    # R701 gates repro.runtime / repro.api; the default fixture module
    # (repro.sim.*) is out of scope
    return lint(source, module="repro.runtime.fixture")


class TestRace:
    SOURCE = """
        class Hub:
            def mark_down(self, peer):
                self._writers.pop(peer, None)

            async def _sender(self, peer, writer):
                self._writers[peer] = writer
    """

    def test_unlocked_writes_on_both_sides_race(self, lint):
        findings = lint_runtime(lint, self.SOURCE)
        assert rule_ids(findings) == ["R701"]
        (finding,) = findings
        assert "Hub._writers" in finding.message
        assert "mark_down()" in finding.message
        assert "_sender()" in finding.message
        assert "call_soon_threadsafe" in finding.message

    def test_out_of_scope_module_is_not_gated(self, lint):
        # the simulator is single-threaded: no facade thread exists
        findings = lint(self.SOURCE, module="repro.sim.fixture")
        assert r701(findings) == []

    def test_disjoint_locks_do_not_serialise(self, lint):
        # holding *some* lock is not enough: it must be the same one
        findings = lint_runtime(lint, """
            class Hub:
                def mark_down(self, peer):
                    with self._facade_lock:
                        self._writers.pop(peer, None)

                async def _sender(self, peer, writer):
                    async with self._loop_lock:
                        self._writers[peer] = writer
        """)
        assert rule_ids(r701(findings)) == ["R701"]

    def test_sync_helper_called_from_a_coroutine_is_loop_side(
            self, lint):
        # the loop side includes sync functions a coroutine calls
        findings = lint_runtime(lint, """
            class Hub:
                def mark_down(self, peer):
                    self._writers.pop(peer, None)

                def _store(self, peer, writer):
                    self._writers[peer] = writer

                async def _sender(self, peer, writer):
                    self._store(peer, writer)
        """)
        assert rule_ids(r701(findings)) == ["R701"]
        assert "_store()" in r701(findings)[0].message


class TestSerialised:
    def test_common_lock_is_clean(self, lint):
        findings = lint_runtime(lint, """
            class Hub:
                def mark_down(self, peer):
                    with self._lock:
                        self._writers.pop(peer, None)

                async def _sender(self, peer, writer):
                    async with self._lock:
                        self._writers[peer] = writer
        """)
        assert r701(findings) == []

    def test_same_entry_point_on_both_sides_is_clean(self, lint):
        # a public sync method also invoked from coroutines runs on one
        # thread at a time per call: only a *different* loop-side writer
        # makes it race
        findings = lint_runtime(lint, """
            class Hub:
                def mark_down(self, peer):
                    self._writers.pop(peer, None)

                async def _watchdog(self, peer):
                    self.mark_down(peer)
        """)
        assert r701(findings) == []

    def test_init_writes_are_exempt(self, lint):
        # construction happens-before publication to either side
        findings = lint_runtime(lint, """
            class Hub:
                def __init__(self):
                    self._writers = {}

                async def _sender(self, peer, writer):
                    self._writers[peer] = writer
        """)
        assert r701(findings) == []

    def test_private_sync_method_is_not_a_facade_entry(self, lint):
        findings = lint_runtime(lint, """
            class Hub:
                def _evict(self, peer):
                    self._writers.pop(peer, None)

                async def _sender(self, peer, writer):
                    self._writers[peer] = writer
        """)
        assert r701(findings) == []

    def test_loop_only_writes_are_clean(self, lint):
        findings = lint_runtime(lint, """
            class Hub:
                async def _sender(self, peer, writer):
                    self._writers[peer] = writer

                async def _closer(self, peer):
                    self._writers.pop(peer, None)
        """)
        assert r701(findings) == []
