"""X501 / X502 fixtures: protocol-union and kind-constant exhaustiveness."""

import textwrap

from .conftest import rule_ids

UNION_PRELUDE = (
    "from typing import Union\n"
    "\n"
    "class Send:\n"
    "    pass\n"
    "\n"
    "class Deliver:\n"
    "    pass\n"
    "\n"
    "class RoundAdvance:\n"
    "    pass\n"
    "\n"
    "Effect = Union[Send, Deliver, RoundAdvance]\n"
    "\n"
)

KIND_PRELUDE = (
    "_K_BCAST = 0\n"
    "_K_FAIL = 1\n"
    "_K_FWD = 2\n"
    "\n"
)


def union_src(body):
    return UNION_PRELUDE + textwrap.dedent(body)


def kind_src(body):
    return KIND_PRELUDE + textwrap.dedent(body)


class TestX501:
    def test_partial_isinstance_chain_flags_missing_member(self, lint):
        findings = lint(union_src("""
            def execute(effect):
                if isinstance(effect, Send):
                    return 1
                if isinstance(effect, Deliver):
                    return 2
                raise ValueError(effect)
        """))
        assert rule_ids(findings) == ["X501"]
        assert "RoundAdvance" in findings[0].message

    def test_exhaustive_isinstance_chain_is_clean(self, lint):
        findings = lint(union_src("""
            def execute(effect):
                if isinstance(effect, Send):
                    return 1
                if isinstance(effect, Deliver):
                    return 2
                if isinstance(effect, RoundAdvance):
                    return 3
        """))
        assert findings == []

    def test_pep604_union_is_collected(self, lint):
        findings = lint("""
            class Send:
                pass

            class Deliver:
                pass

            class RoundAdvance:
                pass

            Effect = Send | Deliver | RoundAdvance

            def execute(effect):
                if isinstance(effect, Send):
                    return 1
                if isinstance(effect, Deliver):
                    return 2
        """)
        assert rule_ids(findings) == ["X501"]

    def test_match_statement_dispatch(self, lint):
        findings = lint(union_src("""
            def execute(effect):
                match effect:
                    case Send():
                        return 1
                    case Deliver():
                        return 2
        """))
        assert rule_ids(findings) == ["X501"]

    def test_type_is_dispatch(self, lint):
        findings = lint(union_src("""
            def execute(effect):
                if type(effect) is Send:
                    return 1
                if type(effect) is Deliver:
                    return 2
        """))
        assert rule_ids(findings) == ["X501"]

    def test_tuple_isinstance_covering_all_members_is_clean(self, lint):
        findings = lint(union_src("""
            def execute(effect):
                if isinstance(effect, (Send, Deliver)):
                    return 1
                if isinstance(effect, RoundAdvance):
                    return 2
        """))
        assert findings == []

    def test_single_membership_test_is_not_a_dispatch(self, lint):
        # filtering one member out is not dispatching over the union
        findings = lint(union_src("""
            def only_sends(effects):
                return [e for e in effects if isinstance(e, Send)]
        """))
        assert findings == []

    def test_union_with_external_members_is_ignored(self, lint):
        findings = lint("""
            from typing import Union

            MaybeInt = Union[int, None]

            def f(x):
                if isinstance(x, int):
                    return 1
                if isinstance(x, str):
                    return 2
        """)
        assert findings == []


class TestX502:
    def test_partial_eq_chain_flags_missing_constant(self, lint):
        findings = lint(kind_src("""
            def decode(kind):
                if kind == _K_BCAST:
                    return "b"
                if kind == _K_FAIL:
                    return "f"
                raise ValueError(kind)
        """))
        assert rule_ids(findings) == ["X502"]
        assert "_K_FWD" in findings[0].message

    def test_exhaustive_eq_chain_is_clean(self, lint):
        findings = lint(kind_src("""
            def decode(kind):
                if kind == _K_BCAST:
                    return "b"
                if kind == _K_FAIL:
                    return "f"
                if kind == _K_FWD:
                    return "w"
        """))
        assert findings == []

    def test_reversed_comparison_counts(self, lint):
        findings = lint(kind_src("""
            def decode(kind):
                if _K_BCAST == kind:
                    return "b"
                if _K_FAIL == kind:
                    return "f"
        """))
        assert rule_ids(findings) == ["X502"]

    def test_match_against_qualified_constants(self, lint):
        findings = lint(kind_src("""
            import kinds

            def decode(kind):
                match kind:
                    case kinds._K_BCAST:
                        return "b"
                    case kinds._K_FAIL:
                        return "f"
        """))
        assert rule_ids(findings) == ["X502"]

    def test_match_on_literals_is_not_a_family_dispatch(self, lint):
        findings = lint(kind_src("""
            def decode(kind):
                match kind:
                    case 0:
                        return "zero"
        """))
        assert findings == []

    def test_single_comparison_is_not_a_dispatch(self, lint):
        findings = lint(kind_src("""
            def is_control(kind):
                return kind == _K_FWD
        """))
        assert findings == []

    def test_lowercase_constants_are_not_a_family(self, lint):
        findings = lint("""
            k_a = 0
            k_b = 1
            k_c = 2

            def decode(kind):
                if kind == k_a:
                    return "a"
                if kind == k_b:
                    return "b"
        """)
        assert findings == []
