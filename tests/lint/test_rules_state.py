"""S601: snapshot completeness for replicated state machines."""

import textwrap

from repro.lint import lint_source
from repro.lint.policy import Policy

from .conftest import rule_ids


def s601(findings):
    return [f for f in findings if f.rule_id == "S601"]


class TestSnapshotGap:
    def test_attr_written_in_apply_but_not_snapshotted(self, lint):
        findings = lint("""
            class Counter:
                def __init__(self):
                    self.total = 0
                    self._seen = set()

                def apply(self, key, value):
                    if key in self._seen:
                        return self.total
                    self._seen.add(key)
                    self.total += value
                    return self.total

                def snapshot(self):
                    return self.total
        """)
        assert rule_ids(findings) == ["S601"]
        (finding,) = findings
        assert "Counter._seen" in finding.message
        assert "snapshot()" in finding.message
        assert "diverge" in finding.message

    def test_complete_snapshot_is_clean(self, lint):
        findings = lint("""
            class Counter:
                def __init__(self):
                    self.total = 0
                    self._seen = set()

                def apply(self, key, value):
                    self._seen.add(key)
                    self.total += value

                def snapshot(self):
                    return {"total": self.total,
                            "seen": set(self._seen)}
        """)
        assert s601(findings) == []

    def test_write_behind_a_helper_call_is_still_seen(self, lint):
        # the written set is the same-class call closure of apply(),
        # not just its own body
        findings = lint("""
            class Log:
                def apply(self, entry):
                    self._record(entry)

                def _record(self, entry):
                    self._entries.append(entry)
                    self._watermark = entry.seq

                def snapshot(self):
                    return list(self._entries)
        """)
        assert rule_ids(findings) == ["S601"]
        assert "Log._watermark" in findings[0].message

    def test_capture_through_a_helper_counts(self, lint):
        # the captured set unions the capture entries' call closure too
        findings = lint("""
            class Log:
                def apply(self, entry):
                    self._entries.append(entry)
                    self._watermark = entry.seq

                def snapshot(self):
                    return self._image()

                def _image(self):
                    return (list(self._entries), self._watermark)
        """)
        assert s601(findings) == []


class TestScope:
    def test_init_only_writes_are_not_flagged(self, lint):
        # __init__ is not on the apply() path: constructing the replica
        # is not mutating it
        findings = lint("""
            class Counter:
                def __init__(self):
                    self.total = 0
                    self._label = "fresh"

                def apply(self, value):
                    self.total += value

                def snapshot(self):
                    return self.total
        """)
        assert s601(findings) == []

    def test_class_without_capture_entry_is_out_of_scope(self, lint):
        findings = lint("""
            class Sink:
                def apply(self, value):
                    self._seen.add(value)
        """)
        assert s601(findings) == []

    def test_class_without_mutator_entry_is_out_of_scope(self, lint):
        findings = lint("""
            class View:
                def snapshot(self):
                    return self.total
        """)
        assert s601(findings) == []


class TestExemptions:
    SOURCE = """
        class Table:
            def apply(self, key):
                self._hits += 1{marker}
                self.data[key] = True

            def snapshot(self):
                return dict(self.data)
    """

    def test_unexempted_metrics_attr_is_flagged(self, lint):
        findings = lint(self.SOURCE.format(marker=""))
        assert rule_ids(findings) == ["S601"]
        assert "Table._hits" in findings[0].message

    def test_inline_volatile_marker_exempts(self, lint):
        findings = lint(self.SOURCE.format(
            marker="          # lint: volatile metrics counter"))
        assert s601(findings) == []

    def test_policy_volatile_table_exempts(self):
        source = textwrap.dedent(self.SOURCE.format(marker=""))
        policy = Policy(volatile={
            "Table": (("_hits", "metrics counter, reviewed"),)})
        findings = lint_source(source, "src/repro/sim/fixture.py",
                               module="repro.sim.fixture", policy=policy)
        assert s601(findings) == []

    def test_policy_volatile_is_per_attribute(self):
        # exempting one attribute must not blanket the class
        source = textwrap.dedent("""
            class Table:
                def apply(self, key):
                    self._hits += 1
                    self._misses += 1
                    self.data[key] = True

                def snapshot(self):
                    return dict(self.data)
        """)
        policy = Policy(volatile={
            "Table": (("_hits", "metrics counter, reviewed"),)})
        findings = lint_source(source, "src/repro/sim/fixture.py",
                               module="repro.sim.fixture", policy=policy)
        assert [f.rule_id for f in findings] == ["S601"]
        assert "Table._misses" in findings[0].message
