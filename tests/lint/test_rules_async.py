"""A/L/F-rule fixtures: the PR 3 task-leak class, blocking calls in
async code, the PR 6 await-under-lock class, and frozen-dataclass
bypass outside the whitelisted codec path."""

from .conftest import rule_ids


# --------------------------------------------------------------------- #
# A201 untracked tasks (PR 3 incident class)
# --------------------------------------------------------------------- #

class TestA201UntrackedTask:
    def test_fires_on_discarded_create_task(self, lint):
        findings = lint("""
            import asyncio

            async def go():
                asyncio.create_task(pump())
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["A201"]
        assert "PR 3" in findings[0].message

    def test_fires_on_discarded_ensure_future(self, lint):
        findings = lint("""
            import asyncio

            async def go():
                asyncio.ensure_future(pump())
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["A201"]

    def test_fires_on_loop_create_task(self, lint):
        findings = lint("""
            import asyncio

            async def go():
                loop = asyncio.get_running_loop()
                loop.create_task(pump())
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["A201"]

    def test_fires_anywhere_in_repro(self, lint):
        findings = lint("""
            import asyncio

            async def go():
                asyncio.create_task(pump())
        """, module="repro.api.fixture")
        assert rule_ids(findings) == ["A201"]

    def test_assigned_task_is_clean(self, lint):
        findings = lint("""
            import asyncio

            async def go(tasks):
                task = asyncio.create_task(pump())
                tasks.append(task)
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_appended_task_is_clean(self, lint):
        # the repo idiom: self._tasks.append(asyncio.create_task(...))
        findings = lint("""
            import asyncio

            class Node:
                async def go(self):
                    self._tasks.append(asyncio.create_task(pump()))
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_awaited_task_is_clean(self, lint):
        findings = lint("""
            import asyncio

            async def go():
                await asyncio.create_task(pump())
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_suppression_with_reason_honored(self, lint):
        findings = lint("""
            import asyncio

            async def go():
                asyncio.create_task(pump())  # lint: ignore[A201] daemon; process exits with loop
        """, module="repro.runtime.fixture")
        assert findings == []


# --------------------------------------------------------------------- #
# A202 blocking calls in async def
# --------------------------------------------------------------------- #

class TestA202BlockingInAsync:
    def test_fires_on_time_sleep(self, lint):
        findings = lint("""
            import time

            async def pump():
                time.sleep(1)
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["A202"]

    def test_fires_on_subprocess_and_open(self, lint):
        findings = lint("""
            import subprocess

            async def pump():
                subprocess.run(["true"])
                with open("/tmp/x") as fh:
                    return fh.read()
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["A202", "A202"]

    def test_async_sleep_is_clean(self, lint):
        findings = lint("""
            import asyncio

            async def pump():
                await asyncio.sleep(1)
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_sync_function_is_clean(self, lint):
        findings = lint("""
            import time

            def warmup():
                time.sleep(1)
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_scoped_to_runtime_only(self, lint):
        findings = lint("""
            import time

            async def pump():
                time.sleep(1)
        """, module="repro.bench.fixture")
        assert findings == []


# --------------------------------------------------------------------- #
# L301 await under lock (PR 6 incident class)
# --------------------------------------------------------------------- #

class TestL301AwaitUnderLock:
    def test_fires_on_dial_retry_under_lock(self, lint):
        # the literal PR 6 shape: open_connection + sleep backoff while
        # holding self._lock
        findings = lint("""
            import asyncio

            class Node:
                async def _connect(self, host, port):
                    async with self._lock:
                        for attempt in range(40):
                            try:
                                r, w = await asyncio.open_connection(host, port)
                                return w
                            except OSError:
                                await asyncio.sleep(0.05 * (attempt + 1))
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["L301", "L301"]
        assert "PR 6" in findings[0].message

    def test_fires_on_drain_and_wait_for_under_lock(self, lint):
        findings = lint("""
            import asyncio

            class Node:
                async def send(self, writer, frame, event):
                    async with self._lock:
                        writer.write(frame)
                        await writer.drain()
                        await asyncio.wait_for(event.wait(), 1.0)
        """, module="repro.runtime.fixture")
        assert rule_ids(findings) == ["L301", "L301"]

    def test_clean_when_io_is_outside_lock(self, lint):
        findings = lint("""
            import asyncio

            class Node:
                async def handle(self, msg):
                    async with self._lock:
                        effects = self.server.handle_message(msg)
                    for effect in effects:
                        await self._send(effect)
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_non_lock_context_manager_is_clean(self, lint):
        findings = lint("""
            import asyncio

            class Node:
                async def fetch(self, session, url):
                    async with session.get(url) as resp:
                        return await resp.read()
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_await_of_plain_helper_under_lock_is_clean(self, lint):
        # lexical rule: only named network/sleep primitives are flagged
        findings = lint("""
            import asyncio

            class Node:
                async def handle(self, msg):
                    async with self._lock:
                        await self._execute(msg)
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_nested_function_awaits_not_attributed_to_lock(self, lint):
        findings = lint("""
            import asyncio

            class Node:
                async def plan(self):
                    async with self._lock:
                        async def later():
                            await asyncio.sleep(1)
                        self._later = later
        """, module="repro.runtime.fixture")
        assert findings == []


# --------------------------------------------------------------------- #
# F401 frozen-dataclass bypass
# --------------------------------------------------------------------- #

class TestF401FrozenBypass:
    def test_fires_on_object_new_and_dict_update(self, lint):
        findings = lint("""
            def decode(payload):
                req = object.__new__(Request)
                req.__dict__.update(origin=1, seq=2)
                return req
        """, module="repro.api.fixture")
        assert rule_ids(findings) == ["F401", "F401"]

    def test_fires_on_dict_subscript_assignment(self, lint):
        findings = lint("""
            def patch(req):
                req.__dict__["seq"] = 7
        """, module="repro.core.fixture")
        assert rule_ids(findings) == ["F401"]

    def test_wire_module_exempt_by_policy(self, lint):
        # the codec fast path is whitelisted in DEFAULT_POLICY, not via
        # per-line suppressions
        findings = lint("""
            def decode(payload):
                req = object.__new__(Request)
                req.__dict__.update(origin=1, seq=2)
                return req
        """, module="repro.runtime.wire")
        assert findings == []

    def test_normal_construction_is_clean(self, lint):
        findings = lint("""
            def decode(payload):
                return Request(origin=1, seq=2)
        """, module="repro.api.fixture")
        assert findings == []
