"""Suppression machinery: reasons are mandatory, ids are validated,
stale suppressions are findings themselves."""

from .conftest import rule_ids

BROKEN = """
    import time

    def stamp():
        return time.time(){comment}
"""


class TestSuppressionHygiene:
    def test_reason_required_s901(self, lint):
        findings = lint(BROKEN.format(
            comment="  # lint: ignore[D101]"))
        assert sorted(rule_ids(findings)) == ["D101", "S901"]

    def test_unknown_rule_id_s902(self, lint):
        findings = lint(BROKEN.format(
            comment="  # lint: ignore[D999] wrong id"))
        assert sorted(rule_ids(findings)) == ["D101", "S902"]

    def test_stale_suppression_s903(self, lint):
        findings = lint("""
            def stamp(sim):
                return sim.now  # lint: ignore[D101] not actually needed
        """)
        assert rule_ids(findings) == ["S903"]
        assert "stale" in findings[0].message

    def test_s_rules_cannot_be_suppressed(self, lint):
        findings = lint("""
            def stamp(sim):
                return sim.now  # lint: ignore[S903] quiet the meta rule
        """)
        assert "S902" in rule_ids(findings)

    def test_wrong_rule_id_does_not_suppress(self, lint):
        findings = lint(BROKEN.format(
            comment="  # lint: ignore[D102] mismatched id"))
        assert "D101" in rule_ids(findings)

    def test_multiple_ids_one_comment(self, lint):
        findings = lint("""
            import time
            import random

            def stamp():
                return time.time() + random.random()  # lint: ignore[D101, D102] debug telemetry only
        """)
        assert findings == []

    def test_reason_is_preserved_case(self, lint):
        # suppressing one rule leaves the other finding intact
        findings = lint("""
            import time
            import random

            def stamp():
                return time.time() + random.random()  # lint: ignore[D101] telemetry
        """)
        assert rule_ids(findings) == ["D102"]
