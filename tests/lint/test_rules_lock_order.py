"""L501: lock-order cycle detection over the interprocedural graph."""

from .conftest import rule_ids


def l501(findings):
    return [f for f in findings if f.rule_id == "L501"]


class TestDirectInversion:
    def test_opposite_nesting_in_two_methods_is_a_cycle(self, lint):
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._lock_a:
                        async with self._lock_b:
                            self.x = 1

                async def rev(self):
                    async with self._lock_b:
                        async with self._lock_a:
                            self.x = 2
        """)
        assert rule_ids(findings) == ["L501"]
        (finding,) = findings
        assert "lock-order cycle" in finding.message
        assert "Node._lock_a" in finding.message
        assert "Node._lock_b" in finding.message
        assert "pick one global acquisition order" in finding.message

    def test_cycle_is_reported_once_not_per_direction(self, lint):
        # the A->B and B->A edges close the same cycle: one finding
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._lock_a:
                        async with self._lock_b:
                            self.x = 1

                async def rev(self):
                    async with self._lock_b:
                        async with self._lock_a:
                            self.x = 2

                async def rev2(self):
                    async with self._lock_b:
                        async with self._lock_a:
                            self.x = 3
        """)
        assert len(l501(findings)) == 1

    def test_consistent_order_is_clean(self, lint):
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._lock_a:
                        async with self._lock_b:
                            self.x = 1

                async def also_fwd(self):
                    async with self._lock_a:
                        async with self._lock_b:
                            self.x = 2
        """)
        assert l501(findings) == []


class TestCallDeepInversion:
    def test_inner_acquisition_behind_a_call_is_an_edge(self, lint):
        # the PR 6 shape: the second acquisition hides one call away,
        # so a lexical rule can never see the inversion
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._lock_a:
                        await self._inner()

                async def _inner(self):
                    async with self._lock_b:
                        self.x = 1

                async def rev(self):
                    async with self._lock_b:
                        async with self._lock_a:
                            self.x = 2
        """)
        assert rule_ids(findings) == ["L501"]
        (finding,) = findings
        assert "Node._lock_a" in finding.message
        assert "Node._lock_b" in finding.message

    def test_call_deep_same_order_is_clean(self, lint):
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._lock_a:
                        await self._inner()

                async def _inner(self):
                    async with self._lock_b:
                        self.x = 1

                async def also_fwd(self):
                    async with self._lock_a:
                        async with self._lock_b:
                            self.x = 2
        """)
        assert l501(findings) == []


class TestNonCycles:
    def test_single_lock_program_early_outs(self, lint):
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._lock:
                        self.x = 1

                async def rev(self):
                    async with self._lock:
                        self.x = 2
        """)
        assert l501(findings) == []

    def test_reacquiring_the_same_lock_is_not_an_ordering_edge(
            self, lint):
        # re-entrancy is a different bug class; held == acquired must
        # not fabricate a self-edge even with two locks in the program
        findings = lint("""
            class Node:
                async def reenter(self):
                    async with self._lock_a:
                        async with self._lock_a:
                            self.x = 1

                async def other(self):
                    async with self._lock_b:
                        async with self._lock_a:
                            self.x = 2
        """)
        assert l501(findings) == []

    def test_non_lock_contexts_are_ignored(self, lint):
        # with-items without "lock" in the name are not acquisitions
        findings = lint("""
            class Node:
                async def fwd(self):
                    async with self._session:
                        async with self._channel:
                            self.x = 1

                async def rev(self):
                    async with self._channel:
                        async with self._session:
                            self.x = 2
        """)
        assert l501(findings) == []
