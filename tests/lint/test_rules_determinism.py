"""D-rule fixtures: each rule fires on the broken form, stays silent on
the fixed form, and respects an explained suppression."""

from .conftest import rule_ids


# --------------------------------------------------------------------- #
# D101 wall clock
# --------------------------------------------------------------------- #

class TestD101WallClock:
    def test_fires_on_time_time(self, lint):
        findings = lint("""
            import time

            def stamp():
                return time.time()
        """)
        assert rule_ids(findings) == ["D101"]
        assert "wall clock" in findings[0].message

    def test_fires_on_monotonic_and_sleep(self, lint):
        findings = lint("""
            import time

            def wait():
                time.sleep(0.1)
                return time.monotonic()
        """)
        assert rule_ids(findings) == ["D101", "D101"]

    def test_fires_through_import_alias(self, lint):
        findings = lint("""
            from time import monotonic as mono

            def stamp():
                return mono()
        """)
        assert rule_ids(findings) == ["D101"]

    def test_fires_on_datetime_now(self, lint):
        findings = lint("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert rule_ids(findings) == ["D101"]

    def test_silent_on_virtual_clock(self, lint):
        findings = lint("""
            def stamp(sim):
                return sim.now
        """)
        assert findings == []

    def test_silent_outside_deterministic_scope(self, lint):
        findings = lint("""
            import time

            def stamp():
                return time.time()
        """, module="repro.runtime.fixture")
        assert findings == []

    def test_suppression_with_reason_honored(self, lint):
        findings = lint("""
            import time

            def stamp():
                return time.time()  # lint: ignore[D101] debug-only counter
        """)
        assert findings == []


# --------------------------------------------------------------------- #
# D102 global RNG / entropy
# --------------------------------------------------------------------- #

class TestD102GlobalRng:
    def test_fires_on_module_level_random(self, lint):
        findings = lint("""
            import random

            def roll():
                return random.random()
        """)
        assert rule_ids(findings) == ["D102"]

    def test_fires_on_from_import(self, lint):
        findings = lint("""
            from random import randint

            def roll():
                return randint(1, 6)
        """)
        assert rule_ids(findings) == ["D102"]

    def test_fires_on_os_urandom_and_uuid4(self, lint):
        findings = lint("""
            import os
            import uuid

            def token():
                return os.urandom(8), uuid.uuid4()
        """)
        assert rule_ids(findings) == ["D102", "D102"]

    def test_seeded_random_instance_allowed_by_policy(self, lint):
        # The allowance is encoded in the rule, not a suppression: a
        # seeded instance RNG is the one blessed randomness source.
        findings = lint("""
            import random

            class Engine:
                def __init__(self, seed):
                    self._rng = random.Random(seed)

                def roll(self):
                    return self._rng.random()
        """)
        assert findings == []


# --------------------------------------------------------------------- #
# D103 id() ordering
# --------------------------------------------------------------------- #

class TestD103IdOrdering:
    def test_fires_on_key_id(self, lint):
        findings = lint("""
            def order(nodes):
                return sorted(nodes, key=id)
        """)
        assert "D103" in rule_ids(findings)

    def test_fires_on_id_inside_ordering_call(self, lint):
        findings = lint("""
            def order(nodes):
                return sorted(nodes, key=lambda n: id(n))
        """)
        assert "D103" in rule_ids(findings)

    def test_silent_on_stable_key(self, lint):
        findings = lint("""
            def order(nodes):
                return sorted(nodes, key=lambda n: n.pid)
        """)
        assert findings == []

    def test_silent_on_id_outside_ordering(self, lint):
        findings = lint("""
            def log_identity(node):
                return id(node)
        """)
        assert findings == []


# --------------------------------------------------------------------- #
# D104 set iteration
# --------------------------------------------------------------------- #

class TestD104SetIteration:
    def test_fires_on_for_loop_over_set_local(self, lint):
        findings = lint("""
            def emit(pids):
                peers = set(pids)
                out = []
                for p in peers:
                    out.append(p)
                return out
        """)
        assert rule_ids(findings) == ["D104"]

    def test_fires_on_set_literal_loop(self, lint):
        findings = lint("""
            def emit():
                for p in {3, 1, 2}:
                    yield p
        """)
        assert rule_ids(findings) == ["D104"]

    def test_fires_on_self_attribute_set(self, lint):
        findings = lint("""
            class Tracker:
                def __init__(self, members):
                    self.members = set(members)

                def order(self):
                    return [p for p in self.members]
        """)
        assert rule_ids(findings) == ["D104"]

    def test_fires_on_annotated_parameter(self, lint):
        findings = lint("""
            def drain(failed: set[int]):
                return list(failed)
        """)
        assert rule_ids(findings) == ["D104"]

    def test_fires_on_dict_comprehension_over_set(self, lint):
        findings = lint("""
            def index(members):
                live = frozenset(members)
                return {p: [] for p in live}
        """)
        assert rule_ids(findings) == ["D104"]

    def test_fires_on_set_union_expression(self, lint):
        findings = lint("""
            def merge(a, b):
                both = set(a) | set(b)
                return tuple(both)
        """)
        assert rule_ids(findings) == ["D104"]

    def test_sorted_wrap_is_clean(self, lint):
        findings = lint("""
            def emit(pids):
                peers = set(pids)
                out = []
                for p in sorted(peers):
                    out.append(p)
                return out
        """)
        assert findings == []

    def test_order_insensitive_sinks_are_clean(self, lint):
        findings = lint("""
            def stats(pids):
                peers = set(pids)
                return (len(peers), sum(peers), min(peers), max(peers),
                        any(p > 3 for p in peers),
                        sorted(x + 1 for x in peers))
        """)
        assert findings == []

    def test_set_comprehension_over_set_is_clean(self, lint):
        # set -> set never materialises an order
        findings = lint("""
            def grow(pids):
                peers = set(pids)
                return {p + 1 for p in peers}
        """)
        assert findings == []

    def test_silent_on_lists_and_dicts(self, lint):
        findings = lint("""
            def emit(rows):
                order = list(rows)
                index = {}
                for r in order:
                    index[r] = True
                return [k for k in index]
        """)
        assert findings == []

    def test_local_name_scoping_no_cross_function_bleed(self, lint):
        # ``edges`` is a set in one function, a list in another: only
        # the set-scope iteration is flagged.
        findings = lint("""
            def a():
                edges = set()
                return list(edges)

            def b():
                edges = [1, 2]
                return list(edges)
        """)
        assert rule_ids(findings) == ["D104"]
        assert findings[0].line == 4    # the list(edges) inside a()

    def test_suppression_with_reason_honored(self, lint):
        findings = lint("""
            def emit(pids):
                peers = set(pids)
                out = []
                for p in peers:  # lint: ignore[D104] commutative fold
                    out.append(p)
                return out
        """)
        assert findings == []

    def test_standalone_suppression_applies_to_next_line(self, lint):
        findings = lint("""
            def emit(pids):
                peers = set(pids)
                out = []
                # lint: ignore[D104] order folded into a set afterwards
                for p in peers:
                    out.append(p)
                return set(out)
        """)
        assert findings == []
