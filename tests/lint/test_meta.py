"""The gate itself: ``python -m repro.lint src/`` is clean, every
suppression in the tree is explained, and deliberately reintroducing
the PR 3 / PR 6 incident patterns makes the analyzer fail."""

import pathlib
import re
import shutil
import textwrap
import time

from repro.lint import DEFAULT_POLICY, lint_paths, lint_source
from repro.lint.analyzer import iter_python_files

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestSrcTreeIsClean:
    def test_lint_src_is_clean(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_suppression_in_src_has_a_reason(self):
        # belt and braces on top of S901: grep the raw text too, so even
        # a comment the tokenizer misses cannot smuggle in a bare ignore
        pattern = re.compile(r"#\s*lint:\s*ignore\[[^\]]*\]\s*(\S?)")
        for path in iter_python_files([str(SRC)]):
            for line_no, line in enumerate(
                    pathlib.Path(path).read_text().splitlines(), 1):
                match = pattern.search(line)
                if match:
                    assert match.group(1), (
                        f"{path}:{line_no}: suppression without a reason")

    def test_wire_fast_path_is_policy_encoded_not_suppressed(self):
        # the F401 exemption for the codec fast path must come from the
        # policy table, not per-line ignores in wire.py
        wire = SRC / "repro" / "runtime" / "wire.py"
        text = wire.read_text()
        assert "object.__new__" in text         # fast path still there
        assert "lint: ignore" not in text
        assert not DEFAULT_POLICY.applies("F401", "repro.runtime.wire")
        assert DEFAULT_POLICY.applies("F401", "repro.runtime.node")


def _lint_runtime_snippet(source):
    return lint_source(textwrap.dedent(source),
                       "src/repro/runtime/scratch.py")


class TestIncidentRegressions:
    """Reintroducing either shipped-and-fixed bug class must fail the
    gate (and hence the CI lint job)."""

    def test_pr3_task_leak_fails_the_gate(self):
        # PR 3: conn-handler tasks spawned and dropped, leaking across
        # stop() — the exact class A201 encodes
        findings = _lint_runtime_snippet("""
            import asyncio

            class Node:
                async def connect_peers(self):
                    asyncio.create_task(self._heartbeat_loop())
                    asyncio.create_task(self._timeout_loop())
        """)
        assert [f.rule_id for f in findings] == ["A201", "A201"]

    def test_pr6_await_under_lock_fails_the_gate(self):
        # PR 6: the dial-retry loop awaited open_connection + sleep
        # backoff while holding the node lock (~41s stall)
        findings = _lint_runtime_snippet("""
            import asyncio

            class Node:
                async def _get_writer(self, peer, addr):
                    async with self._lock:
                        for attempt in range(40):
                            try:
                                _r, w = await asyncio.open_connection(
                                    addr.host, addr.port)
                                return w
                            except OSError:
                                await asyncio.sleep(0.05 * (attempt + 1))
        """)
        assert {f.rule_id for f in findings} == {"L301"}
        assert len(findings) == 2

    def test_current_runtime_does_not_regress(self):
        # the real node.py/proc.py stay clean under the same rules
        findings = lint_paths([str(SRC / "repro" / "runtime")])
        assert findings == [], "\n".join(f.render() for f in findings)


def _runtime_tree_copy(tmp_path):
    """A private copy of ``src/repro/runtime`` to seed regressions into
    (the package is self-contained enough for the whole-program pass).
    The ``repro`` path component is kept so policy scoping sees the
    same ``repro.runtime.*`` modules as the real tree."""
    dst = tmp_path / "repro" / "runtime"
    shutil.copytree(SRC / "repro" / "runtime", dst)
    return dst


class TestWholeProgramRegressions:
    """The interprocedural bug classes the lexical rules provably miss:
    seeding either into a copy of the real runtime tree must fail the
    gate — with the whole-program rule, not its lexical cousin."""

    def test_pr6_shape_one_call_deep_fails_the_gate(self, tmp_path):
        # the PR 6 dial-retry loop, moved one function away from the
        # lock: L301 cannot see across the call boundary, L401 must
        tree = _runtime_tree_copy(tmp_path)
        (tree / "scratch.py").write_text(textwrap.dedent("""
            import asyncio


            class Node:
                async def _get_writer(self, peer, addr):
                    async with self._lock:
                        writer = await self._dial(addr)
                        return writer

                async def _dial(self, addr):
                    for attempt in range(40):
                        try:
                            _r, w = await asyncio.open_connection(
                                addr.host, addr.port)
                            return w
                        except OSError:
                            await asyncio.sleep(0.05 * (attempt + 1))
        """))
        findings = lint_paths([str(tmp_path)])
        assert {f.rule_id for f in findings} == {"L401"}
        assert "L301" not in {f.rule_id for f in findings}
        assert all(f.path.endswith("scratch.py") for f in findings)

    def test_new_wire_kind_without_dispatch_arm_fails_the_gate(
            self, tmp_path):
        # add an envelope kind constant but no dispatcher arm: every
        # codec dispatch site is now non-exhaustive
        tree = _runtime_tree_copy(tmp_path)
        wire = tree / "wire.py"
        wire.write_text(wire.read_text().replace(
            "_K_CONTROL = 4", "_K_CONTROL = 4\n_K_PING = 5"))
        findings = lint_paths([str(tmp_path)])
        assert findings, "seeded kind constant went undetected"
        assert {f.rule_id for f in findings} == {"X502"}
        assert all("_K_PING" in f.message for f in findings)


class TestWholeProgramPerf:
    def test_full_src_pass_stays_interactive(self):
        # the gate runs on every CI push and locally pre-commit: the
        # whole-program pass (parse + call graph + taint fixpoint +
        # exhaustiveness) must stay in single-digit seconds on src/
        start = time.perf_counter()
        findings = lint_paths([str(SRC)])
        elapsed = time.perf_counter() - start
        assert findings == []
        assert elapsed < 5.0, f"whole-program pass took {elapsed:.2f}s"
