"""The gate itself: ``python -m repro.lint src/`` is clean, every
suppression in the tree is explained, and deliberately reintroducing
the PR 3 / PR 6 incident patterns makes the analyzer fail."""

import pathlib
import re
import shutil
import textwrap
import time

from repro.lint import DEFAULT_POLICY, lint_paths, lint_source
from repro.lint.analyzer import iter_python_files

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestSrcTreeIsClean:
    def test_lint_src_is_clean(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_suppression_in_src_has_a_reason(self):
        # belt and braces on top of S901: grep the raw text too, so even
        # a comment the tokenizer misses cannot smuggle in a bare ignore
        pattern = re.compile(r"#\s*lint:\s*ignore\[[^\]]*\]\s*(\S?)")
        for path in iter_python_files([str(SRC)]):
            for line_no, line in enumerate(
                    pathlib.Path(path).read_text().splitlines(), 1):
                match = pattern.search(line)
                if match:
                    assert match.group(1), (
                        f"{path}:{line_no}: suppression without a reason")

    def test_wire_fast_path_is_policy_encoded_not_suppressed(self):
        # the F401 exemption for the codec fast path must come from the
        # policy table, not per-line ignores in wire.py
        wire = SRC / "repro" / "runtime" / "wire.py"
        text = wire.read_text()
        assert "object.__new__" in text         # fast path still there
        assert "lint: ignore" not in text
        assert not DEFAULT_POLICY.applies("F401", "repro.runtime.wire")
        assert DEFAULT_POLICY.applies("F401", "repro.runtime.node")


def _lint_runtime_snippet(source):
    return lint_source(textwrap.dedent(source),
                       "src/repro/runtime/scratch.py")


class TestIncidentRegressions:
    """Reintroducing either shipped-and-fixed bug class must fail the
    gate (and hence the CI lint job)."""

    def test_pr3_task_leak_fails_the_gate(self):
        # PR 3: conn-handler tasks spawned and dropped, leaking across
        # stop() — the exact class A201 encodes
        findings = _lint_runtime_snippet("""
            import asyncio

            class Node:
                async def connect_peers(self):
                    asyncio.create_task(self._heartbeat_loop())
                    asyncio.create_task(self._timeout_loop())
        """)
        assert [f.rule_id for f in findings] == ["A201", "A201"]

    def test_pr6_await_under_lock_fails_the_gate(self):
        # PR 6: the dial-retry loop awaited open_connection + sleep
        # backoff while holding the node lock (~41s stall)
        findings = _lint_runtime_snippet("""
            import asyncio

            class Node:
                async def _get_writer(self, peer, addr):
                    async with self._lock:
                        for attempt in range(40):
                            try:
                                _r, w = await asyncio.open_connection(
                                    addr.host, addr.port)
                                return w
                            except OSError:
                                await asyncio.sleep(0.05 * (attempt + 1))
        """)
        assert {f.rule_id for f in findings} == {"L301"}
        assert len(findings) == 2

    def test_current_runtime_does_not_regress(self):
        # the real node.py/proc.py stay clean under the same rules
        findings = lint_paths([str(SRC / "repro" / "runtime")])
        assert findings == [], "\n".join(f.render() for f in findings)


def _runtime_tree_copy(tmp_path):
    """A private copy of ``src/repro/runtime`` to seed regressions into
    (the package is self-contained enough for the whole-program pass).
    The ``repro`` path component is kept so policy scoping sees the
    same ``repro.runtime.*`` modules as the real tree."""
    dst = tmp_path / "repro" / "runtime"
    shutil.copytree(SRC / "repro" / "runtime", dst)
    return dst


class TestWholeProgramRegressions:
    """The interprocedural bug classes the lexical rules provably miss:
    seeding either into a copy of the real runtime tree must fail the
    gate — with the whole-program rule, not its lexical cousin."""

    def test_pr6_shape_one_call_deep_fails_the_gate(self, tmp_path):
        # the PR 6 dial-retry loop, moved one function away from the
        # lock: L301 cannot see across the call boundary, L401 must
        tree = _runtime_tree_copy(tmp_path)
        (tree / "scratch.py").write_text(textwrap.dedent("""
            import asyncio


            class Node:
                async def _get_writer(self, peer, addr):
                    async with self._lock:
                        writer = await self._dial(addr)
                        return writer

                async def _dial(self, addr):
                    for attempt in range(40):
                        try:
                            _r, w = await asyncio.open_connection(
                                addr.host, addr.port)
                            return w
                        except OSError:
                            await asyncio.sleep(0.05 * (attempt + 1))
        """))
        findings = lint_paths([str(tmp_path)])
        assert {f.rule_id for f in findings} == {"L401"}
        assert "L301" not in {f.rule_id for f in findings}
        assert all(f.path.endswith("scratch.py") for f in findings)

    def test_new_wire_kind_without_dispatch_arm_fails_the_gate(
            self, tmp_path):
        # add an envelope kind constant but no dispatcher arm: every
        # codec dispatch site is now non-exhaustive
        tree = _runtime_tree_copy(tmp_path)
        wire = tree / "wire.py"
        wire.write_text(wire.read_text().replace(
            "_K_CONTROL = 4", "_K_CONTROL = 4\n_K_PING = 5"))
        findings = lint_paths([str(tmp_path)])
        assert findings, "seeded kind constant went undetected"
        assert {f.rule_id for f in findings} == {"X502"}
        assert all("_K_PING" in f.message for f in findings)

    def test_snapshot_gap_fails_the_gate_via_s601_alone(self, tmp_path):
        # an apply()-mutated attribute missing from snapshot() has no
        # lexical signature at all: only the S601 inclusion proof
        # catches it
        tree = _runtime_tree_copy(tmp_path)
        (tree / "scratch.py").write_text(textwrap.dedent("""
            class ShardStateMachine:
                def apply(self, command):
                    self._applied += 1
                    self._store[command.key] = command.value

                def snapshot(self):
                    return dict(self._store)
        """))
        findings = lint_paths([str(tmp_path)])
        assert {f.rule_id for f in findings} == {"S601"}
        (finding,) = findings
        assert "ShardStateMachine._applied" in finding.message
        assert finding.path.endswith("scratch.py")

    def test_lock_inversion_fails_the_gate_via_l501_alone(
            self, tmp_path):
        # opposite acquisition orders across two coroutines: no await
        # of a slow primitive is involved, so L301/L401 stay silent and
        # only the lock-order graph sees the deadlock
        tree = _runtime_tree_copy(tmp_path)
        (tree / "scratch.py").write_text(textwrap.dedent("""
            class Router:
                async def install(self):
                    async with self._table_lock:
                        async with self._flush_lock:
                            self.epoch += 1

                async def flush(self):
                    async with self._flush_lock:
                        async with self._table_lock:
                            self.dirty = ()
        """))
        findings = lint_paths([str(tmp_path)])
        assert {f.rule_id for f in findings} == {"L501"}
        (finding,) = findings
        assert "Router._table_lock" in finding.message
        assert "Router._flush_lock" in finding.message

    def test_field_add_without_version_bump_fails_the_gate(
            self, tmp_path):
        # thread a new `epoch` field through all four codec sites of
        # the FWD kind — both parities and the cross-plane join stay
        # green, so only the committed-lockfile drift gate can object
        tree = _runtime_tree_copy(tmp_path)
        wire = tree / "wire.py"
        wire.write_text(wire.read_text().replace(
            "return _frame((_K_FWD, sender, fwd.round, fwd.origin))",
            "return _frame((_K_FWD, sender, fwd.round, fwd.origin, "
            "fwd.epoch))"
        ).replace(
            "    if kind == _K_FWD:\n"
            "        _k, sender, rnd, origin = env\n"
            "        return sender, Forward(round=rnd, origin=origin)",
            "    if kind == _K_FWD:\n"
            "        _k, sender, rnd, origin, epoch = env\n"
            "        return sender, Forward(round=rnd, origin=origin)"))
        framing = tree / "framing.py"
        framing.write_text(framing.read_text().replace(
            '        return {"type": "fwd", "from": sender, '
            '"round": message.round,\n'
            '                "origin": message.origin}',
            '        return {"type": "fwd", "from": sender, '
            '"round": message.round,\n'
            '                "origin": message.origin, "epoch": 0}'
        ).replace(
            'return sender, Forward(round=rnd, origin=int(obj["origin"]))',
            'return sender, Forward(round=rnd, origin=int(obj["origin"]),\n'
            '                               epoch=obj["epoch"])'))
        findings = lint_paths([str(tmp_path)])
        assert {f.rule_id for f in findings} == {"W601"}
        (finding,) = findings
        assert "without a WIRE_VERSION bump" in finding.message
        assert "FWD" in finding.message

    def test_committed_lockfile_matches_extraction(self, tmp_path):
        # the lockfile in git is exactly what --regen-wire-lock emits
        # from today's tree: a stale commit cannot hide behind the gate
        from repro.lint.rules_wire_schema import regenerate_lockfile

        tree = _runtime_tree_copy(tmp_path)
        committed = (tree / "wire_schema.lock.json").read_text()
        lock_path = regenerate_lockfile([str(tmp_path)])
        assert lock_path is not None
        assert (tree / "wire_schema.lock.json").read_text() == committed


class TestWholeProgramPerf:
    def test_full_src_pass_stays_interactive(self):
        # the gate runs on every CI push and locally pre-commit: the
        # whole-program pass (parse + call graph + taint fixpoint +
        # exhaustiveness) must stay in single-digit seconds on src/
        start = time.perf_counter()
        findings = lint_paths([str(SRC)])
        elapsed = time.perf_counter() - start
        assert findings == []
        assert elapsed < 5.0, f"whole-program pass took {elapsed:.2f}s"
