"""CLI surface: formats, exit codes, and the self-documenting catalog."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.lint import all_rules
from repro.lint.cli import main
from repro.lint.reporters import render_rule_catalog


def run_cli(args, capsys):
    code = main(args)
    return code, capsys.readouterr().out


BAD_SNIPPET = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


@pytest.fixture
def bad_tree(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "scratch.py").write_text(BAD_SNIPPET)
    return tmp_path


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out = run_cli([str(tmp_path)], capsys)
        assert code == 0
        assert "clean" in out

    def test_findings_exit_nonzero(self, bad_tree, capsys):
        code, out = run_cli([str(bad_tree)], capsys)
        assert code == 1
        assert "D101" in out

    def test_json_format(self, bad_tree, capsys):
        code, out = run_cli([str(bad_tree), "--format=json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["clean"] is False
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "D101"
        assert finding["line"] == 4

    def test_json_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out = run_cli([str(tmp_path), "--format=json"], capsys)
        assert code == 0
        assert json.loads(out)["clean"] is True

    def test_syntax_error_is_a_finding(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        code, out = run_cli([str(tmp_path)], capsys)
        assert code == 1
        assert "E000" in out

    def test_output_file_mirrors_the_report(self, bad_tree, capsys,
                                            tmp_path):
        report_path = tmp_path / "lint-report.json"
        code, out = run_cli([str(bad_tree), "--format=json",
                             "--output", str(report_path)], capsys)
        assert code == 1
        assert report_path.read_text() == out


class TestJsonSchema:
    """CI uploads the JSON report as a build artifact; its shape is a
    contract for downstream tooling and only changes with a version
    bump."""

    def test_schema_is_stable(self, bad_tree, capsys):
        code, out = run_cli([str(bad_tree), "--format=json"], capsys)
        payload = json.loads(out)
        assert payload["schema_version"] == 1
        assert set(payload) == {"schema_version", "findings", "count",
                                "clean"}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule",
                                "severity", "message"}
        assert finding["severity"] == "error"


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=lint@test", "-c", "user.name=lint",
         *args],
        cwd=cwd, check=True, capture_output=True)


@pytest.fixture
def git_tree(tmp_path):
    """A committed tree with one clean and one findings-bearing file."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "scratch.py").write_text(BAD_SNIPPET)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestChangedOnly:
    def test_findings_in_unchanged_files_are_filtered(self, git_tree,
                                                      capsys,
                                                      monkeypatch):
        monkeypatch.chdir(git_tree)
        (git_tree / "repro" / "sim" / "clean.py").write_text(
            "x = 2\n")
        code, out = run_cli(["repro", "--changed-only", "HEAD",
                             "--format=json"], capsys)
        # scratch.py still has its D101, but it did not change
        assert code == 0
        assert json.loads(out)["count"] == 0

    def test_findings_in_changed_files_are_reported(self, git_tree,
                                                    capsys,
                                                    monkeypatch):
        monkeypatch.chdir(git_tree)
        (git_tree / "repro" / "sim" / "scratch.py").write_text(
            BAD_SNIPPET + "\n# touched\n")
        code, out = run_cli(["repro", "--changed-only", "HEAD",
                             "--format=json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["count"] == 1
        assert payload["findings"][0]["path"].endswith("scratch.py")

    def test_unknown_ref_falls_back_to_full_report(self, git_tree,
                                                   capsys,
                                                   monkeypatch):
        # a bad ref must not silently pass the gate
        monkeypatch.chdir(git_tree)
        code = main(["repro", "--changed-only", "no-such-ref",
                     "--format=json"])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot diff" in captured.err
        assert json.loads(captured.out)["count"] == 1


class TestRuleCatalog:
    def test_list_rules_nonempty(self, capsys):
        # the catalog cannot rot: every registered rule documents itself
        code, out = run_cli(["--list-rules"], capsys)
        assert code == 0
        rules = all_rules()
        assert len(rules) >= 9
        for rule in rules:
            assert rule.id in out
            assert rule.summary.split("(")[0].strip()[:30] in out

    def test_every_rule_has_id_severity_summary_example(self):
        for rule in all_rules():
            assert rule.id and rule.id[0] in "DALFSXWR"
            assert rule.summary
            assert rule.example
            assert str(rule.severity) in ("error", "warning")
            assert rule.kind in ("file", "program")

    def test_expected_families_present(self):
        ids = {rule.id for rule in all_rules()}
        assert {"D101", "D102", "D103", "D104",
                "A201", "A202", "L301", "F401",
                "S901", "S902", "S903",
                "D201", "A301", "L401", "X501", "X502",
                "S601", "W601", "L501", "R701"} <= ids
        assert len(ids) == 20

    def test_whole_program_rules_are_program_kind(self):
        kinds = {rule.id: rule.kind for rule in all_rules()}
        for rule_id in ("D201", "A301", "L401", "X501", "X502",
                        "S601", "W601", "L501", "R701"):
            assert kinds[rule_id] == "program"
        for rule_id in ("D101", "A202", "L301", "F401"):
            assert kinds[rule_id] == "file"

    def test_catalog_mentions_suppression_syntax(self):
        text = render_rule_catalog()
        assert "lint: ignore[RULE-ID]" in text


class TestModuleInvocation:
    def test_python_dash_m_entry_point(self, bad_tree):
        # the CI job runs exactly this
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad_tree),
             "--format=json"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        assert json.loads(proc.stdout)["count"] == 1
