"""CLI surface: formats, exit codes, and the self-documenting catalog."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.lint import all_rules
from repro.lint.cli import main
from repro.lint.reporters import render_rule_catalog


def run_cli(args, capsys):
    code = main(args)
    return code, capsys.readouterr().out


BAD_SNIPPET = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


@pytest.fixture
def bad_tree(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "scratch.py").write_text(BAD_SNIPPET)
    return tmp_path


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out = run_cli([str(tmp_path)], capsys)
        assert code == 0
        assert "clean" in out

    def test_findings_exit_nonzero(self, bad_tree, capsys):
        code, out = run_cli([str(bad_tree)], capsys)
        assert code == 1
        assert "D101" in out

    def test_json_format(self, bad_tree, capsys):
        code, out = run_cli([str(bad_tree), "--format=json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["clean"] is False
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "D101"
        assert finding["line"] == 4

    def test_json_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out = run_cli([str(tmp_path), "--format=json"], capsys)
        assert code == 0
        assert json.loads(out)["clean"] is True

    def test_syntax_error_is_a_finding(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        code, out = run_cli([str(tmp_path)], capsys)
        assert code == 1
        assert "E000" in out


class TestRuleCatalog:
    def test_list_rules_nonempty(self, capsys):
        # the catalog cannot rot: every registered rule documents itself
        code, out = run_cli(["--list-rules"], capsys)
        assert code == 0
        rules = all_rules()
        assert len(rules) >= 9
        for rule in rules:
            assert rule.id in out
            assert rule.summary.split("(")[0].strip()[:30] in out

    def test_every_rule_has_id_severity_summary_example(self):
        for rule in all_rules():
            assert rule.id and rule.id[0] in "DALFS"
            assert rule.summary
            assert rule.example
            assert str(rule.severity) in ("error", "warning")

    def test_expected_families_present(self):
        ids = {rule.id for rule in all_rules()}
        assert {"D101", "D102", "D103", "D104",
                "A201", "A202", "L301", "F401",
                "S901", "S902", "S903"} <= ids

    def test_catalog_mentions_suppression_syntax(self):
        text = render_rule_catalog()
        assert "lint: ignore[RULE-ID]" in text


class TestModuleInvocation:
    def test_python_dash_m_entry_point(self, bad_tree):
        # the CI job runs exactly this
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad_tree),
             "--format=json"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        assert json.loads(proc.stdout)["count"] == 1
