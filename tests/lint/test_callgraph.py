"""Call-graph resolution: the edges every whole-program rule stands on."""

import textwrap

from repro.lint.astcache import ASTCache, default_cache
from repro.lint.callgraph import Program


def build_program(**modules):
    """Program from ``module_path="source"`` pairs (dots as ``__``)."""
    files = []
    for key, source in modules.items():
        module = key.replace("__", ".")
        path = "src/" + module.replace(".", "/") + ".py"
        parsed = default_cache().parse_source(
            textwrap.dedent(source), path)
        files.append((module, parsed))
    return Program.build(files)


def callees_of(program, qname):
    return [callee for _site, callee in program.callees(qname)]


class TestImportResolution:
    def test_from_import_with_alias(self):
        program = build_program(
            repro__sim__util="""
                def helper():
                    return 1
            """,
            repro__sim__main="""
                from repro.sim.util import helper as h

                def caller():
                    return h()
            """)
        assert callees_of(program, "repro.sim.main.caller") == \
            ["repro.sim.util.helper"]

    def test_module_alias_dotted_call(self):
        program = build_program(
            repro__sim__util="""
                def helper():
                    return 1
            """,
            repro__sim__main="""
                import repro.sim.util as u

                def caller():
                    return u.helper()
            """)
        assert callees_of(program, "repro.sim.main.caller") == \
            ["repro.sim.util.helper"]

    def test_relative_import_resolves_against_module_path(self):
        program = build_program(
            repro__core__server="""
                class Server:
                    def __init__(self):
                        pass
            """,
            repro__runtime__node="""
                from ..core.server import Server

                def boot():
                    return Server()
            """)
        assert callees_of(program, "repro.runtime.node.boot") == \
            ["repro.core.server.Server.__init__"]

    def test_unresolvable_call_gets_external_not_edge(self):
        program = build_program(
            repro__sim__main="""
                import socket

                def caller(mystery):
                    mystery.poke()
                    socket.create_connection(("h", 1))
            """)
        fn = program.functions["repro.sim.main.caller"]
        assert callees_of(program, fn.qname) == []
        externals = [s.external for s in fn.calls if s.external]
        assert "socket.create_connection" in externals


class TestMethodResolution:
    def test_self_method_through_base_class(self):
        program = build_program(
            repro__sim__mod="""
                class Base:
                    def ping(self):
                        return 1

                class Child(Base):
                    def caller(self):
                        return self.ping()
            """)
        assert callees_of(program, "repro.sim.mod.Child.caller") == \
            ["repro.sim.mod.Base.ping"]

    def test_self_attr_instance_method(self):
        program = build_program(
            repro__sim__mod="""
                class Worker:
                    def run(self):
                        return 1

                class Owner:
                    def __init__(self):
                        self._w = Worker()

                    def go(self):
                        self._w.run()
            """)
        assert callees_of(program, "repro.sim.mod.Owner.go") == \
            ["repro.sim.mod.Worker.run"]

    def test_local_variable_instance_method(self):
        program = build_program(
            repro__sim__mod="""
                class Worker:
                    def run(self):
                        return 1

                def go():
                    w = Worker()
                    return w.run()
            """)
        got = callees_of(program, "repro.sim.mod.go")
        assert "repro.sim.mod.Worker.run" in got

    def test_annotated_parameter_instance_method(self):
        program = build_program(
            repro__sim__mod="""
                class Worker:
                    def run(self):
                        return 1

                def go(w: Worker):
                    return w.run()
            """)
        assert callees_of(program, "repro.sim.mod.go") == \
            ["repro.sim.mod.Worker.run"]

    def test_conflicting_attr_assignment_drops_inference(self):
        program = build_program(
            repro__sim__mod="""
                class A:
                    def run(self):
                        return 1

                class B:
                    def run(self):
                        return 2

                class Owner:
                    def __init__(self, flag):
                        self._w = A()
                        if flag:
                            self._w = B()

                    def go(self):
                        self._w.run()
            """)
        # either-class attr: conservatively no edge rather than a wrong one
        assert callees_of(program, "repro.sim.mod.Owner.go") == []


class TestRegistryIndirection:
    def test_factory_gets_edges_to_registered_inits(self):
        program = build_program(
            repro__api__backends="""
                from repro.api import register_backend

                class TcpBackend:
                    def __init__(self):
                        self.kind = "tcp"

                def _register():
                    register_backend("tcp", TcpBackend)
            """,
            repro__api__factory="""
                def create_deployment(name):
                    pass

                def launch(name):
                    return create_deployment(name)
            """)
        assert program.registered_classes == \
            ["repro.api.backends.TcpBackend"]
        assert "repro.api.backends.TcpBackend.__init__" in \
            callees_of(program, "repro.api.factory.launch")


class TestFindChain:
    def test_shortest_chain_is_found(self):
        program = build_program(
            repro__sim__mod="""
                def c():
                    return "leaf"

                def b():
                    return c()

                def a():
                    return b()
            """)
        chain = program.find_chain(
            "repro.sim.mod.a", lambda fn: fn.name == "c")
        assert chain == ["repro.sim.mod.a", "repro.sim.mod.b",
                         "repro.sim.mod.c"]

    def test_no_match_returns_none(self):
        program = build_program(
            repro__sim__mod="""
                def a():
                    return 1
            """)
        assert program.find_chain(
            "repro.sim.mod.a", lambda fn: fn.name == "zzz") is None

    def test_cycles_terminate(self):
        program = build_program(
            repro__sim__mod="""
                def a():
                    return b()

                def b():
                    return a()
            """)
        assert program.find_chain(
            "repro.sim.mod.a", lambda fn: fn.name == "zzz") is None


class TestASTCache:
    def test_unchanged_file_reuses_parse(self, tmp_path):
        cache = ASTCache()
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        first = cache.parse(str(target))
        assert cache.parse(str(target)) is first

    def test_changed_file_reparses(self, tmp_path):
        cache = ASTCache()
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        first = cache.parse(str(target))
        target.write_text("x = 1234\n")
        second = cache.parse(str(target))
        assert second is not first
        assert "1234" in second.source

    def test_syntax_error_is_not_cached(self, tmp_path):
        import pytest
        cache = ASTCache()
        target = tmp_path / "mod.py"
        target.write_text("def f(:\n")
        with pytest.raises(SyntaxError):
            cache.parse(str(target))
        assert len(cache) == 0
        target.write_text("def f():\n    return 1\n")
        assert cache.parse(str(target)).tree is not None
