"""Workload generators for the three application scenarios."""

import pytest

from repro.core import AllConcurConfig, ClusterOptions, SimCluster
from repro.graphs import gs_digraph
from repro.sim import IBV_PARAMS
from repro.workloads import (
    ApmWorkload,
    ConstantRateWorkload,
    FixedBatchWorkload,
    GlobalRateWorkload,
    KeyedWorkload,
)


def make_cluster(n=8, auto_advance=True):
    graph = gs_digraph(n, 3)
    return SimCluster(graph,
                      config=AllConcurConfig(graph=graph,
                                             auto_advance=auto_advance),
                      options=ClusterOptions(params=IBV_PARAMS))


class TestConstantRate:
    def test_injects_expected_request_count(self):
        cluster = make_cluster(auto_advance=False)
        wl = ConstantRateWorkload(rate_per_server=10_000, request_nbytes=64,
                                  injection_period=1e-4)
        wl.install(cluster, duration=10e-3)
        cluster.run(until=10e-3)
        for pid in cluster.members:
            pending = cluster.server(pid).queue.total_submitted
            assert pending == pytest.approx(100, abs=2)

    def test_fractional_rates_accumulate(self):
        cluster = make_cluster(auto_advance=False)
        wl = ConstantRateWorkload(rate_per_server=3.3, request_nbytes=40,
                                  injection_period=0.1)
        wl.install(cluster, duration=10.0)
        cluster.run(until=10.0)
        total = cluster.server(0).queue.total_submitted
        assert total == pytest.approx(33, abs=1)

    def test_zero_rate_injects_nothing(self):
        cluster = make_cluster(auto_advance=False)
        ConstantRateWorkload(0.0).install(cluster, duration=1.0)
        cluster.run(until=1.0)
        assert cluster.server(0).queue.total_submitted == 0

    def test_negative_rate_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            ConstantRateWorkload(-1.0).install(cluster, duration=1.0)

    def test_per_round_batch_estimate(self):
        wl = ConstantRateWorkload(rate_per_server=1e6)
        assert wl.per_round_batch(100e-6) == 100

    def test_end_to_end_delivery_under_load(self):
        cluster = make_cluster(auto_advance=True)
        ConstantRateWorkload(rate_per_server=50_000, request_nbytes=64,
                             injection_period=20e-6).install(
            cluster, duration=2e-3)
        cluster.start_all()
        cluster.run_until_round(5)
        assert cluster.verify_agreement()
        assert cluster.trace.request_rate(skip_rounds=1) > 0


class TestApmAndGlobalRate:
    def test_apm_rate_conversion(self):
        assert ApmWorkload(apm=200).rate_per_server == pytest.approx(200 / 60)
        assert ApmWorkload(apm=400).request_nbytes == 40

    def test_global_rate_split(self):
        wl = GlobalRateWorkload(total_rate=1e6)
        assert wl.per_server_rate(8) == pytest.approx(125_000)
        with pytest.raises(ValueError):
            wl.per_server_rate(0)

    def test_apm_install_injects(self):
        cluster = make_cluster(auto_advance=False)
        ApmWorkload(apm=6000, injection_period=1e-3).install(
            cluster, duration=0.1)   # 100 actions/s for 0.1 s => ~10
        cluster.run(until=0.1)
        assert cluster.server(0).queue.total_submitted == pytest.approx(10, abs=1)


class TestFixedBatch:
    def test_message_size(self):
        wl = FixedBatchWorkload(batch_requests=2048, request_nbytes=8)
        assert wl.message_nbytes == 16384

    def test_each_round_carries_exactly_one_batch(self):
        cluster = make_cluster(auto_advance=True)
        FixedBatchWorkload(batch_requests=128, request_nbytes=8).install(
            cluster, rounds=3)
        cluster.start_all()
        cluster.run_until_round(2)
        for rnd in (0, 1, 2):
            rec = cluster.trace.deliveries_for_round(rnd)[0]
            assert rec.requests == 8 * 128
            assert rec.nbytes == 8 * 128 * 8

    def test_payload_fn_for_baselines(self):
        wl = FixedBatchWorkload(batch_requests=16, request_nbytes=8)
        batch = wl.payload_fn()(3)
        assert batch.count == 16
        assert batch.nbytes == 128

    def test_rounds_validation(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            FixedBatchWorkload(10).install(cluster, rounds=0)


class TestKeyedWorkload:
    def test_same_seed_replays_identical_stream(self):
        wl = KeyedWorkload(num_keys=128, distribution="zipf", seed=7)
        assert list(wl.keys(500)) == list(wl.keys(500))
        assert list(wl.requests(50)) == list(wl.requests(50))

    def test_different_seeds_diverge(self):
        a = KeyedWorkload(num_keys=128, seed=1)
        b = KeyedWorkload(num_keys=128, seed=2)
        assert list(a.keys(200)) != list(b.keys(200))

    def test_uniform_shape(self):
        import collections

        wl = KeyedWorkload(num_keys=8, distribution="uniform", seed=3)
        counts = collections.Counter(wl.keys(8000))
        assert set(counts) == {f"k{i}" for i in range(8)}
        for key in counts:
            assert counts[key] == pytest.approx(1000, rel=0.25)

    def test_zipf_shape_is_rank_skewed(self):
        import collections

        wl = KeyedWorkload(num_keys=100, distribution="zipf", zipf_s=1.2,
                           seed=5)
        counts = collections.Counter(wl.keys(10000))
        # rank-ordered frequencies: the head dominates, and frequency
        # decays with rank (coarse bins absorb sampling noise)
        assert counts["k0"] > counts["k4"] > counts["k40"]
        assert counts["k0"] > 10000 / 100 * 5   # far above uniform share
        top10 = sum(counts[f"k{i}"] for i in range(10))
        assert top10 > 0.55 * 10000

    def test_requests_are_kv_sets_with_stream_positions(self):
        wl = KeyedWorkload(num_keys=4, seed=1)
        reqs = list(wl.requests(6))
        assert [cmd[2] for _k, cmd in reqs] == list(range(6))
        assert all(cmd[0] == "set" and cmd[1] == key for key, cmd in reqs)

    def test_key_prefix(self):
        wl = KeyedWorkload(num_keys=4, seed=1, key_prefix="user")
        assert all(k.startswith("user") for k in wl.keys(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyedWorkload(num_keys=0)
        with pytest.raises(ValueError):
            KeyedWorkload(num_keys=4, distribution="pareto")
        with pytest.raises(ValueError):
            KeyedWorkload(num_keys=4, distribution="zipf", zipf_s=0)
        with pytest.raises(ValueError):
            list(KeyedWorkload(num_keys=4).keys(-1))
