"""Workload generators for the three application scenarios."""

import pytest

from repro.core import AllConcurConfig, ClusterOptions, SimCluster
from repro.graphs import gs_digraph
from repro.sim import IBV_PARAMS
from repro.workloads import (
    ApmWorkload,
    ConstantRateWorkload,
    FixedBatchWorkload,
    GlobalRateWorkload,
)


def make_cluster(n=8, auto_advance=True):
    graph = gs_digraph(n, 3)
    return SimCluster(graph,
                      config=AllConcurConfig(graph=graph,
                                             auto_advance=auto_advance),
                      options=ClusterOptions(params=IBV_PARAMS))


class TestConstantRate:
    def test_injects_expected_request_count(self):
        cluster = make_cluster(auto_advance=False)
        wl = ConstantRateWorkload(rate_per_server=10_000, request_nbytes=64,
                                  injection_period=1e-4)
        wl.install(cluster, duration=10e-3)
        cluster.run(until=10e-3)
        for pid in cluster.members:
            pending = cluster.server(pid).queue.total_submitted
            assert pending == pytest.approx(100, abs=2)

    def test_fractional_rates_accumulate(self):
        cluster = make_cluster(auto_advance=False)
        wl = ConstantRateWorkload(rate_per_server=3.3, request_nbytes=40,
                                  injection_period=0.1)
        wl.install(cluster, duration=10.0)
        cluster.run(until=10.0)
        total = cluster.server(0).queue.total_submitted
        assert total == pytest.approx(33, abs=1)

    def test_zero_rate_injects_nothing(self):
        cluster = make_cluster(auto_advance=False)
        ConstantRateWorkload(0.0).install(cluster, duration=1.0)
        cluster.run(until=1.0)
        assert cluster.server(0).queue.total_submitted == 0

    def test_negative_rate_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            ConstantRateWorkload(-1.0).install(cluster, duration=1.0)

    def test_per_round_batch_estimate(self):
        wl = ConstantRateWorkload(rate_per_server=1e6)
        assert wl.per_round_batch(100e-6) == 100

    def test_end_to_end_delivery_under_load(self):
        cluster = make_cluster(auto_advance=True)
        ConstantRateWorkload(rate_per_server=50_000, request_nbytes=64,
                             injection_period=20e-6).install(
            cluster, duration=2e-3)
        cluster.start_all()
        cluster.run_until_round(5)
        assert cluster.verify_agreement()
        assert cluster.trace.request_rate(skip_rounds=1) > 0


class TestApmAndGlobalRate:
    def test_apm_rate_conversion(self):
        assert ApmWorkload(apm=200).rate_per_server == pytest.approx(200 / 60)
        assert ApmWorkload(apm=400).request_nbytes == 40

    def test_global_rate_split(self):
        wl = GlobalRateWorkload(total_rate=1e6)
        assert wl.per_server_rate(8) == pytest.approx(125_000)
        with pytest.raises(ValueError):
            wl.per_server_rate(0)

    def test_apm_install_injects(self):
        cluster = make_cluster(auto_advance=False)
        ApmWorkload(apm=6000, injection_period=1e-3).install(
            cluster, duration=0.1)   # 100 actions/s for 0.1 s => ~10
        cluster.run(until=0.1)
        assert cluster.server(0).queue.total_submitted == pytest.approx(10, abs=1)


class TestFixedBatch:
    def test_message_size(self):
        wl = FixedBatchWorkload(batch_requests=2048, request_nbytes=8)
        assert wl.message_nbytes == 16384

    def test_each_round_carries_exactly_one_batch(self):
        cluster = make_cluster(auto_advance=True)
        FixedBatchWorkload(batch_requests=128, request_nbytes=8).install(
            cluster, rounds=3)
        cluster.start_all()
        cluster.run_until_round(2)
        for rnd in (0, 1, 2):
            rec = cluster.trace.deliveries_for_round(rnd)[0]
            assert rec.requests == 8 * 128
            assert rec.nbytes == 8 * 128 * 8

    def test_payload_fn_for_baselines(self):
        wl = FixedBatchWorkload(batch_requests=16, request_nbytes=8)
        batch = wl.payload_fn()(3)
        assert batch.count == 16
        assert batch.nbytes == 128

    def test_rounds_validation(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            FixedBatchWorkload(10).install(cluster, rounds=0)
