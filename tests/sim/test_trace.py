"""Metric collection: latency, throughput, timelines (§5 metrics)."""

import math

import pytest

from repro.sim import DeliveryRecord, RoundTrace, median_and_ci, percentile


def record(rnd, server, time, requests=1, nbytes=64, senders=1):
    return DeliveryRecord(round=rnd, server=server, time=time,
                          requests=requests, nbytes=nbytes, senders=senders)


class TestPercentiles:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        vals = [5.0, 1.0, 9.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_median_and_ci_contains_median(self):
        vals = [float(i) for i in range(100)]
        med, lo, hi = median_and_ci(vals)
        assert lo <= med <= hi

    def test_median_and_ci_small_sample(self):
        med, lo, hi = median_and_ci([2.0, 4.0])
        assert (lo, hi) == (2.0, 4.0)
        assert med == pytest.approx(3.0)


class TestRoundTrace:
    def test_round_start_keeps_earliest(self):
        t = RoundTrace()
        t.note_round_start(0, 5.0)
        t.note_round_start(0, 3.0)
        t.note_round_start(0, 7.0)
        assert t.round_start[0] == 3.0

    def test_latencies_relative_to_round_start(self):
        t = RoundTrace()
        t.note_round_start(0, 1.0)
        t.record_delivery(record(0, 0, 1.5))
        t.record_delivery(record(0, 1, 2.0))
        assert sorted(t.round_latencies(0)) == [0.5, 1.0]
        assert t.agreement_latency(0) == pytest.approx(0.75)

    def test_unknown_round_raises(self):
        t = RoundTrace()
        with pytest.raises(ValueError):
            t.round_latencies(3)
        with pytest.raises(ValueError):
            t.round_completion_time(3)

    def test_rounds_listing(self):
        t = RoundTrace()
        t.record_delivery(record(1, 0, 2.0))
        t.record_delivery(record(0, 0, 1.0))
        assert t.rounds == [0, 1]

    def test_completion_time_is_last_delivery(self):
        t = RoundTrace()
        t.record_delivery(record(0, 0, 1.0))
        t.record_delivery(record(0, 1, 4.0))
        assert t.round_completion_time(0) == 4.0

    def test_agreement_throughput(self):
        t = RoundTrace()
        t.note_round_start(0, 0.0)
        t.note_round_start(1, 1.0)
        for rnd in (0, 1):
            for server in (0, 1):
                t.record_delivery(record(rnd, server, rnd + 1.0, nbytes=100))
        # 200 bytes over 2 seconds
        assert t.agreement_throughput() == pytest.approx(100.0)

    def test_request_rate(self):
        t = RoundTrace()
        t.note_round_start(0, 0.0)
        t.record_delivery(record(0, 0, 2.0, requests=10))
        assert t.request_rate() == pytest.approx(5.0)

    def test_skip_rounds_excludes_warmup(self):
        t = RoundTrace()
        t.note_round_start(0, 0.0)
        t.note_round_start(1, 10.0)
        t.record_delivery(record(0, 0, 9.0))
        t.record_delivery(record(1, 0, 10.5))
        all_lats = t.all_latencies()
        warm = t.all_latencies(skip_rounds=1)
        assert len(all_lats) == 2
        assert warm == [0.5]

    def test_empty_trace_throughput_zero(self):
        t = RoundTrace()
        assert t.agreement_throughput() == 0.0
        assert t.request_rate() == 0.0

    def test_throughput_timeline_bins(self):
        t = RoundTrace()
        t.note_round_start(0, 0.0)
        t.record_delivery(record(0, 0, 0.05, requests=10))
        t.record_delivery(record(1, 0, 0.25, requests=20))
        timeline = t.throughput_timeline(0.1, until=0.3)
        assert timeline[0] == (0.0, pytest.approx(100.0))
        assert timeline[2] == (pytest.approx(0.2), pytest.approx(200.0))

    def test_throughput_timeline_validation(self):
        with pytest.raises(ValueError):
            RoundTrace().throughput_timeline(0.0)
