"""Failure injection and failure detectors (§2.2.2, §3.2)."""

import pytest

from repro.graphs import binomial_graph, gs_digraph
from repro.sim import (
    EventuallyPerfectFailureDetector,
    FailureInjector,
    HeartbeatFailureDetector,
    PerfectFailureDetector,
    Simulator,
)


class TestFailureInjector:
    def test_fail_now(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        inj.fail_now(3)
        assert inj.is_failed(3)
        assert not inj.is_failed(1)
        assert inj.failure_time(3) == 0.0

    def test_fail_at_schedules(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        inj.fail_at(2, 5.0)
        assert not inj.is_failed(2)
        sim.run_until_idle()
        assert inj.is_failed(2)
        assert inj.failure_time(2) == 5.0

    def test_listeners_notified_once(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        events = []
        inj.subscribe(events.append)
        inj.fail_now(1)
        inj.fail_now(1)
        assert len(events) == 1
        assert events[0].pid == 1

    def test_send_budget(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        inj.fail_after_sends(0, 2)
        assert inj.has_send_budget(0)
        assert inj.consume_send_budget(0)
        assert inj.consume_send_budget(0)
        assert not inj.consume_send_budget(0)

    def test_no_budget_means_unlimited(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        assert all(inj.consume_send_budget(5) for _ in range(100))

    def test_budget_validation(self):
        inj = FailureInjector(Simulator())
        with pytest.raises(ValueError):
            inj.fail_after_sends(0, -1)

    def test_clear_forgets_failure(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        inj.fail_now(4)
        inj.clear(4)
        assert not inj.is_failed(4)

    def test_failed_mapping_snapshot(self):
        inj = FailureInjector(Simulator())
        inj.fail_now(1)
        inj.fail_now(2)
        assert set(inj.failed) == {1, 2}


class TestPerfectFailureDetector:
    def test_successors_detect_after_delay(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        fd = PerfectFailureDetector(sim, graph, inj, detection_delay=1e-3)
        suspicions = []
        fd.subscribe(lambda obs, sus: suspicions.append((obs, sus)))
        inj.fail_now(0)
        sim.run_until_idle()
        assert sim.now == pytest.approx(1e-3)
        assert set(suspicions) == {(s, 0) for s in graph.successors(0)}

    def test_only_successors_suspect(self):
        sim = Simulator()
        graph = gs_digraph(8, 3)
        inj = FailureInjector(sim)
        fd = PerfectFailureDetector(sim, graph, inj)
        suspicions = []
        fd.subscribe(lambda obs, sus: suspicions.append((obs, sus)))
        inj.fail_now(2)
        sim.run_until_idle()
        observers = {obs for obs, _ in suspicions}
        assert observers == set(graph.successors(2))

    def test_failed_observer_does_not_suspect(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        fd = PerfectFailureDetector(sim, graph, inj)
        suspicions = []
        fd.subscribe(lambda obs, sus: suspicions.append((obs, sus)))
        victim_successor = graph.successors(0)[0]
        inj.fail_now(victim_successor)
        inj.fail_now(0)
        sim.run_until_idle()
        assert all(obs != victim_successor for obs, _ in suspicions)

    def test_has_suspected_bookkeeping(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        fd = PerfectFailureDetector(sim, graph, inj)
        inj.fail_now(0)
        sim.run_until_idle()
        succ = graph.successors(0)[0]
        assert fd.has_suspected(succ, 0)
        assert not fd.has_suspected(0, succ)


class TestHeartbeatFailureDetector:
    def test_detection_within_timeout(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        fd = HeartbeatFailureDetector(sim, graph, inj,
                                      heartbeat_period=10e-3, timeout=100e-3)
        suspicions = []
        fd.subscribe(lambda obs, sus: suspicions.append(sim.now))
        inj.fail_at(0, 0.055)
        sim.run_until_idle()
        assert suspicions
        # last heartbeat at 0.05, so detection at 0.15
        assert suspicions[0] == pytest.approx(0.15)
        # detection latency is bounded by Δto + Δhb
        assert suspicions[0] - 0.055 <= 0.100 + 0.010 + 1e-9

    def test_timeout_must_cover_period(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(sim, graph, inj,
                                     heartbeat_period=0.2, timeout=0.1)


class TestEventuallyPerfectDetector:
    def test_false_suspicion_injection(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        fd = EventuallyPerfectFailureDetector(sim, graph, inj)
        suspicions = []
        fd.subscribe(lambda obs, sus: suspicions.append((obs, sus)))
        observer = graph.successors(0)[0]
        fd.inject_false_suspicion(observer, 0, at_time=0.5)
        sim.run_until_idle()
        assert (observer, 0) in suspicions
        assert not inj.is_failed(0)   # it was a *false* suspicion

    def test_timeout_doubles_after_mistake(self):
        sim = Simulator()
        graph = binomial_graph(9)
        inj = FailureInjector(sim)
        fd = EventuallyPerfectFailureDetector(sim, graph, inj, timeout=0.1)
        observer = graph.successors(0)[0]
        fd.inject_false_suspicion(observer, 0, at_time=0.1)
        sim.run_until_idle()
        assert fd.timeout == pytest.approx(0.2)

    def test_only_predecessors_can_be_falsely_suspected(self):
        sim = Simulator()
        graph = gs_digraph(8, 3)
        inj = FailureInjector(sim)
        fd = EventuallyPerfectFailureDetector(sim, graph, inj)
        non_pred = next(p for p in range(8)
                        if p not in graph.predecessors(0) and p != 0)
        with pytest.raises(ValueError):
            fd.inject_false_suspicion(0, non_pred, at_time=0.1)
