"""LogP network model tests."""

import pytest

from repro.sim import (
    ETHERNET_PARAMS,
    IBV_PARAMS,
    TCP_PARAMS,
    ExponentialJitter,
    LogPParams,
    Network,
    NoJitter,
    Simulator,
    UniformJitter,
)


def make_net(params=TCP_PARAMS, jitter=None, coalesce=True):
    sim = Simulator(seed=1)
    net = Network(sim, params, jitter=jitter, coalesce=coalesce)
    inbox = {}

    def attach(pid):
        inbox[pid] = []
        net.attach(pid, lambda src, dst, msg: inbox[dst].append((src, msg)))

    return sim, net, inbox, attach


class TestLogPParams:
    def test_paper_parameters(self):
        assert TCP_PARAMS.L == pytest.approx(12e-6)
        assert TCP_PARAMS.o == pytest.approx(1.8e-6)
        assert IBV_PARAMS.L == pytest.approx(1.25e-6)
        assert IBV_PARAMS.o == pytest.approx(0.38e-6)

    def test_transmission_time_short_message(self):
        assert TCP_PARAMS.transmission_time() == pytest.approx(
            12e-6 + 2 * 1.8e-6)

    def test_send_cost_includes_bytes(self):
        cost = IBV_PARAMS.send_cost(5000)
        assert cost > IBV_PARAMS.send_cost(0)

    def test_ethernet_preset_slower_than_ibv(self):
        assert ETHERNET_PARAMS.transmission_time() > \
            IBV_PARAMS.transmission_time()


class TestDelivery:
    def test_basic_delivery(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        assert net.send(0, 1, "hello")
        sim.run_until_idle()
        assert inbox[1] == [(0, "hello")]
        assert sim.now == pytest.approx(TCP_PARAMS.transmission_time())

    def test_sends_serialised_at_sender(self):
        sim, net, inbox, attach = make_net()
        for pid in range(4):
            attach(pid)
        net.multicast(0, [1, 2, 3], "m")
        sim.run_until_idle()
        # last copy leaves after 3 overheads, then wire latency + recv o
        expected = 3 * TCP_PARAMS.o + TCP_PARAMS.L + TCP_PARAMS.o
        assert sim.now == pytest.approx(expected)

    def test_receive_serialised_at_receiver(self):
        sim, net, inbox, attach = make_net()
        for pid in range(3):
            attach(pid)
        net.send(0, 2, "a")
        net.send(1, 2, "b")
        sim.run_until_idle()
        assert len(inbox[2]) == 2
        # both arrive at L + o + o, the second waits one extra recv overhead
        assert sim.now == pytest.approx(TCP_PARAMS.L + 2 * TCP_PARAMS.o
                                        + TCP_PARAMS.o)

    def test_unknown_sender_rejected(self):
        _sim, net, _inbox, attach = make_net()
        attach(1)
        with pytest.raises(ValueError):
            net.send(9, 1, "x")

    def test_duplicate_attach_rejected(self):
        _sim, net, _inbox, attach = make_net()
        attach(0)
        with pytest.raises(ValueError):
            net.attach(0, lambda *a: None)

    def test_failed_sender_suppressed(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.mark_failed(0)
        assert net.send(0, 1, "x") is False
        sim.run_until_idle()
        assert inbox[1] == []
        assert net.stats.messages_dropped == 1

    def test_failed_receiver_blackholed(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.send(0, 1, "x")
        net.mark_failed(1)
        sim.run_until_idle()
        assert inbox[1] == []

    def test_recovered_receiver_gets_messages_again(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.mark_failed(1)
        net.mark_recovered(1)
        net.send(0, 1, "x")
        sim.run_until_idle()
        assert inbox[1] == [(0, "x")]

    def test_detach_stops_delivery(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.send(0, 1, "x")
        net.detach(1)
        sim.run_until_idle()
        assert inbox[1] == []

    def test_byte_size_increases_delay(self):
        sim1, net1, _in1, attach1 = make_net()
        attach1(0); attach1(1)
        net1.send(0, 1, "small", nbytes=0)
        sim1.run_until_idle()
        t_small = sim1.now

        sim2, net2, _in2, attach2 = make_net()
        attach2(0); attach2(1)
        net2.send(0, 1, "big", nbytes=1 << 20)
        sim2.run_until_idle()
        assert sim2.now > t_small

    def test_stats_counters(self):
        sim, net, _inbox, attach = make_net()
        for pid in range(3):
            attach(pid)
        net.multicast(0, [1, 2], "m", nbytes=10)
        sim.run_until_idle()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 2
        assert net.stats.bytes_sent == 20
        assert net.stats.per_process_sent[0] == 2
        assert net.stats.per_process_received[1] == 1


class TestCoalescing:
    """Per-edge event coalescing: same-edge sends share one arrival event
    while their batch is in flight, with per-logical-message accounting."""

    def test_same_edge_burst_coalesces(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        for i in range(4):
            net.send(0, 1, f"m{i}")
        sim.run_until_idle()
        assert inbox[1] == [(0, f"m{i}") for i in range(4)]
        assert net.stats.events_coalesced == 3
        # one arrival event + one receive-completion per message
        assert sim.events_processed == 1 + 4

    def test_uncoalesced_network_schedules_per_message(self):
        sim, net, inbox, attach = make_net(coalesce=False)
        attach(0)
        attach(1)
        for i in range(4):
            net.send(0, 1, f"m{i}")
        sim.run_until_idle()
        assert inbox[1] == [(0, f"m{i}") for i in range(4)]
        assert net.stats.events_coalesced == 0
        assert sim.events_processed == 4 + 4

    def test_coalesced_timing_matches_uncoalesced(self):
        """Single-sender timing is exactly the per-message LogP model:
        sends serialise at o per copy, the last copy completes at
        k*o + L + o."""
        results = {}
        for coalesce in (False, True):
            sim, net, inbox, attach = make_net(coalesce=coalesce)
            attach(0)
            attach(1)
            for i in range(3):
                net.send(0, 1, i)
            sim.run_until_idle()
            results[coalesce] = (sim.now, inbox[1])
        assert results[True] == results[False]
        expected = 3 * TCP_PARAMS.o + TCP_PARAMS.L + TCP_PARAMS.o
        assert results[True][0] == pytest.approx(expected)

    def test_messages_and_bytes_counted_per_logical_message(self):
        sim, net, _inbox, attach = make_net()
        attach(0)
        attach(1)
        for _ in range(5):
            net.send(0, 1, "m", nbytes=10)
        sim.run_until_idle()
        assert net.stats.messages_sent == 5
        assert net.stats.bytes_sent == 50
        assert net.stats.messages_delivered == 5
        assert net.stats.per_process_sent[0] == 5
        assert net.stats.per_process_received[1] == 5
        assert net.stats.events_coalesced == 4

    def test_batches_are_per_edge(self):
        sim, net, inbox, attach = make_net()
        for pid in range(3):
            attach(pid)
        net.send(0, 1, "a")
        net.send(0, 2, "b")
        sim.run_until_idle()
        assert net.stats.events_coalesced == 0
        assert inbox[1] == [(0, "a")]
        assert inbox[2] == [(0, "b")]

    def test_send_after_batch_fired_starts_new_batch(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.send(0, 1, "first")
        sim.run_until_idle()
        net.send(0, 1, "second")
        sim.run_until_idle()
        assert inbox[1] == [(0, "first"), (0, "second")]
        assert net.stats.events_coalesced == 0

    def test_jittered_wire_disables_coalescing(self):
        sim, net, inbox, attach = make_net(jitter=ExponentialJitter(5e-6))
        attach(0)
        attach(1)
        assert net.coalesce is False
        for i in range(3):
            net.send(0, 1, i)
        sim.run_until_idle()
        # jitter may reorder arrivals; all three copies are delivered
        assert sorted(m for _s, m in inbox[1]) == [0, 1, 2]
        assert net.stats.events_coalesced == 0

    def test_receiver_failing_mid_batch_drops_whole_batch(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        for i in range(3):
            net.send(0, 1, i)
        net.mark_failed(1)
        sim.run_until_idle()
        assert inbox[1] == []
        assert net.stats.messages_dropped == 3

    def test_receiver_failing_mid_flight_drops_unreceived_copies(self):
        """Fail-stop: copies whose receive had not completed when the
        destination failed are dropped, not delivered."""
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        for i in range(4):
            net.send(0, 1, i)
        # first copy completes at o + L + o; fail just after that
        fail_at = TCP_PARAMS.o + TCP_PARAMS.L + TCP_PARAMS.o + 1e-9
        sim.schedule_at(fail_at, net.mark_failed, 1, priority=-1)
        sim.run_until_idle()
        assert [m for _s, m in inbox[1]] == [0]
        assert net.stats.messages_delivered == 1
        assert net.stats.messages_dropped == 3


class TestJitter:
    def test_no_jitter_deterministic(self):
        assert NoJitter().sample(None) == 0.0

    def test_exponential_jitter_positive(self):
        sim = Simulator(seed=3)
        j = ExponentialJitter(mean=1e-5)
        samples = [j.sample(sim.rng) for _ in range(100)]
        assert all(s >= 0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(1e-5, rel=0.5)

    def test_uniform_jitter_bounds(self):
        sim = Simulator(seed=3)
        j = UniformJitter(1e-6, 2e-6)
        for _ in range(50):
            s = j.sample(sim.rng)
            assert 1e-6 <= s <= 2e-6

    def test_jittered_network_still_delivers(self):
        sim, net, inbox, attach = make_net(jitter=ExponentialJitter(5e-6))
        attach(0)
        attach(1)
        net.send(0, 1, "x")
        sim.run_until_idle()
        assert inbox[1]
        assert sim.now >= TCP_PARAMS.transmission_time()
