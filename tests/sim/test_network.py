"""LogP network model tests."""

import pytest

from repro.sim import (
    ETHERNET_PARAMS,
    IBV_PARAMS,
    TCP_PARAMS,
    ExponentialJitter,
    LogPParams,
    Network,
    NoJitter,
    Simulator,
    UniformJitter,
)


def make_net(params=TCP_PARAMS, jitter=None):
    sim = Simulator(seed=1)
    net = Network(sim, params, jitter=jitter)
    inbox = {}

    def attach(pid):
        inbox[pid] = []
        net.attach(pid, lambda src, dst, msg: inbox[dst].append((src, msg)))

    return sim, net, inbox, attach


class TestLogPParams:
    def test_paper_parameters(self):
        assert TCP_PARAMS.L == pytest.approx(12e-6)
        assert TCP_PARAMS.o == pytest.approx(1.8e-6)
        assert IBV_PARAMS.L == pytest.approx(1.25e-6)
        assert IBV_PARAMS.o == pytest.approx(0.38e-6)

    def test_transmission_time_short_message(self):
        assert TCP_PARAMS.transmission_time() == pytest.approx(
            12e-6 + 2 * 1.8e-6)

    def test_send_cost_includes_bytes(self):
        cost = IBV_PARAMS.send_cost(5000)
        assert cost > IBV_PARAMS.send_cost(0)

    def test_ethernet_preset_slower_than_ibv(self):
        assert ETHERNET_PARAMS.transmission_time() > \
            IBV_PARAMS.transmission_time()


class TestDelivery:
    def test_basic_delivery(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        assert net.send(0, 1, "hello")
        sim.run_until_idle()
        assert inbox[1] == [(0, "hello")]
        assert sim.now == pytest.approx(TCP_PARAMS.transmission_time())

    def test_sends_serialised_at_sender(self):
        sim, net, inbox, attach = make_net()
        for pid in range(4):
            attach(pid)
        net.multicast(0, [1, 2, 3], "m")
        sim.run_until_idle()
        # last copy leaves after 3 overheads, then wire latency + recv o
        expected = 3 * TCP_PARAMS.o + TCP_PARAMS.L + TCP_PARAMS.o
        assert sim.now == pytest.approx(expected)

    def test_receive_serialised_at_receiver(self):
        sim, net, inbox, attach = make_net()
        for pid in range(3):
            attach(pid)
        net.send(0, 2, "a")
        net.send(1, 2, "b")
        sim.run_until_idle()
        assert len(inbox[2]) == 2
        # both arrive at L + o + o, the second waits one extra recv overhead
        assert sim.now == pytest.approx(TCP_PARAMS.L + 2 * TCP_PARAMS.o
                                        + TCP_PARAMS.o)

    def test_unknown_sender_rejected(self):
        _sim, net, _inbox, attach = make_net()
        attach(1)
        with pytest.raises(ValueError):
            net.send(9, 1, "x")

    def test_duplicate_attach_rejected(self):
        _sim, net, _inbox, attach = make_net()
        attach(0)
        with pytest.raises(ValueError):
            net.attach(0, lambda *a: None)

    def test_failed_sender_suppressed(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.mark_failed(0)
        assert net.send(0, 1, "x") is False
        sim.run_until_idle()
        assert inbox[1] == []
        assert net.stats.messages_dropped == 1

    def test_failed_receiver_blackholed(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.send(0, 1, "x")
        net.mark_failed(1)
        sim.run_until_idle()
        assert inbox[1] == []

    def test_recovered_receiver_gets_messages_again(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.mark_failed(1)
        net.mark_recovered(1)
        net.send(0, 1, "x")
        sim.run_until_idle()
        assert inbox[1] == [(0, "x")]

    def test_detach_stops_delivery(self):
        sim, net, inbox, attach = make_net()
        attach(0)
        attach(1)
        net.send(0, 1, "x")
        net.detach(1)
        sim.run_until_idle()
        assert inbox[1] == []

    def test_byte_size_increases_delay(self):
        sim1, net1, _in1, attach1 = make_net()
        attach1(0); attach1(1)
        net1.send(0, 1, "small", nbytes=0)
        sim1.run_until_idle()
        t_small = sim1.now

        sim2, net2, _in2, attach2 = make_net()
        attach2(0); attach2(1)
        net2.send(0, 1, "big", nbytes=1 << 20)
        sim2.run_until_idle()
        assert sim2.now > t_small

    def test_stats_counters(self):
        sim, net, _inbox, attach = make_net()
        for pid in range(3):
            attach(pid)
        net.multicast(0, [1, 2], "m", nbytes=10)
        sim.run_until_idle()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 2
        assert net.stats.bytes_sent == 20
        assert net.stats.per_process_sent[0] == 2
        assert net.stats.per_process_received[1] == 1


class TestJitter:
    def test_no_jitter_deterministic(self):
        assert NoJitter().sample(None) == 0.0

    def test_exponential_jitter_positive(self):
        sim = Simulator(seed=3)
        j = ExponentialJitter(mean=1e-5)
        samples = [j.sample(sim.rng) for _ in range(100)]
        assert all(s >= 0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(1e-5, rel=0.5)

    def test_uniform_jitter_bounds(self):
        sim = Simulator(seed=3)
        j = UniformJitter(1e-6, 2e-6)
        for _ in range(50):
            s = j.sample(sim.rng)
            assert 1e-6 <= s <= 2e-6

    def test_jittered_network_still_delivers(self):
        sim, net, inbox, attach = make_net(jitter=ExponentialJitter(5e-6))
        attach(0)
        attach(1)
        net.send(0, 1, "x")
        sim.run_until_idle()
        assert inbox[1]
        assert sim.now >= TCP_PARAMS.transmission_time()
