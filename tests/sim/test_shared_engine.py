"""Hosting several clusters on ONE simulator engine.

The sharded service runs all of its groups on a single virtual clock, so
everything a cluster schedules or keys by node id — network receivers,
failure injector and detector state, delivery watchers, the round trace —
must be instance-scoped per cluster.  These tests pin that contract by
co-hosting two independent clusters on one engine and checking that
nothing leaks between them.
"""

import pytest

from repro.api import SimDeployment
from repro.core import AllConcurConfig, ClusterOptions, SimCluster
from repro.graphs import gs_digraph
from repro.sim import Simulator


def make_cluster(sim, n=6, degree=3, namespace="", seed=1):
    graph = gs_digraph(n, degree)
    return SimCluster(graph,
                      config=AllConcurConfig(graph=graph,
                                             auto_advance=False),
                      options=ClusterOptions(seed=seed),
                      sim=sim, namespace=namespace)


class TestSharedEngineClusters:
    def test_external_engine_is_adopted_not_owned(self):
        sim = Simulator(seed=3)
        cluster = make_cluster(sim, namespace="a")
        assert cluster.sim is sim and not cluster.owns_engine
        solo = SimCluster(gs_digraph(6, 3))
        assert solo.owns_engine

    def test_two_clusters_agree_independently(self):
        sim = Simulator(seed=1)
        a = make_cluster(sim, n=6, namespace="a")
        b = make_cluster(sim, n=8, namespace="b")
        for rnd in range(3):
            for cluster in (a, b):
                for pid in cluster.alive_members:
                    cluster.node(pid).fill_window()
            a.run_until_round(rnd)
            b.run_until_round(rnd)
        assert a.verify_agreement() and b.verify_agreement()
        assert a.min_delivered_rounds() == 3
        assert b.min_delivered_rounds() == 3
        # one clock: both clusters observed the same virtual timeline
        assert a.sim.now == b.sim.now == sim.now

    def test_round_watcher_of_one_cluster_does_not_starve_the_other(self):
        # run_until_round(a) stops the shared engine at a's delivery; b's
        # remaining events must still be deliverable by b's own run.
        sim = Simulator(seed=1)
        a = make_cluster(sim, n=6, namespace="a")
        b = make_cluster(sim, n=8, namespace="b")
        for cluster in (a, b):
            for pid in cluster.alive_members:
                cluster.node(pid).fill_window()
        a.run_until_round(0)
        # b may or may not have finished while a ran; its own watcher
        # must complete it either way, and a's watchers must be detached.
        assert all(node.on_deliver is None for node in a.nodes.values())
        b.run_until_round(0)
        assert b.min_delivered_rounds() == 1
        assert a.verify_agreement() and b.verify_agreement()

    def test_failure_injection_is_instance_scoped(self):
        sim = Simulator(seed=1)
        a = make_cluster(sim, namespace="a")
        b = make_cluster(sim, namespace="b")
        a.fail_server(2)
        assert a.injector.is_failed(2)
        assert not b.injector.is_failed(2)
        assert 2 not in a.alive_members
        assert 2 in b.alive_members
        # b's node 2 is alive and attached; a's is crashed
        assert not a.nodes[2].alive and b.nodes[2].alive
        for cluster in (a, b):
            for pid in cluster.alive_members:
                cluster.node(pid).fill_window()
        a.run_until_round(0)
        b.run_until_round(0)
        assert a.verify_agreement() and b.verify_agreement()
        # a delivered without its failed member; b with all of its own
        assert len(a.delivered_sets(0).popitem()[1]) == 5
        assert len(b.delivered_sets(0).popitem()[1]) == 6

    def test_detectors_notify_only_their_own_cluster(self):
        sim = Simulator(seed=1)
        a = make_cluster(sim, namespace="a")
        b = make_cluster(sim, namespace="b")
        suspicions = []
        a.detector.subscribe(lambda obs, sus: suspicions.append(("a", obs, sus)))
        b.detector.subscribe(lambda obs, sus: suspicions.append(("b", obs, sus)))
        a.fail_server(1)
        sim.run(until=sim.now + 1e-3)
        assert suspicions, "a's detector must raise suspicions"
        assert all(tag == "a" for tag, _o, _s in suspicions)

    def test_traces_do_not_cross_contaminate(self):
        sim = Simulator(seed=1)
        a = make_cluster(sim, n=6, namespace="a")
        b = make_cluster(sim, n=8, namespace="b")
        for cluster in (a, b):
            for pid in cluster.alive_members:
                cluster.node(pid).fill_window()
        a.run_until_round(0)
        b.run_until_round(0)
        assert len(a.trace.records) == 6    # one record per own member
        assert len(b.trace.records) == 8
        assert {r.server for r in a.trace.records} == set(range(6))

    def test_network_stats_are_per_cluster(self):
        sim = Simulator(seed=1)
        a = make_cluster(sim, namespace="a")
        b = make_cluster(sim, namespace="b")
        for pid in a.alive_members:
            a.node(pid).fill_window()
        a.run_until_round(0)
        assert a.network.stats.messages_sent > 0
        assert b.network.stats.messages_sent == 0


class TestSharedEngineDeployments:
    def test_deployments_share_engine_via_kwarg(self):
        sim = Simulator(seed=2)
        a = SimDeployment(gs_digraph(6, 3), engine=sim, namespace="a")
        b = SimDeployment(gs_digraph(6, 3), engine=sim, namespace="b")
        assert a.sim is b.sim is sim
        ha = a.submit("from-a", at=0)
        hb = b.submit("from-b", at=0)
        a.run_rounds(1)
        b.run_rounds(1)
        assert ha.done and hb.done
        assert a.check_agreement() and b.check_agreement()
        # each deployment logged only its own rounds
        assert len(a.deliveries()) == 1 and len(b.deliveries()) == 1
        assert a.deliveries()[0].messages != b.deliveries()[0].messages

    def test_fill_complete_split_equals_run_rounds(self):
        # Coordinated two-phase driving must deliver exactly what the
        # plain run_rounds path delivers.
        def outcome(two_phase: bool):
            dep = SimDeployment(gs_digraph(6, 3),
                                options=ClusterOptions(seed=4))
            dep.submit(("x", 1), at=2)
            if two_phase:
                for _ in range(3):
                    dep.fill_round()
                    dep.complete_round()
            else:
                dep.run_rounds(3)
            return [(e.round, e.messages) for e in dep.deliveries()]

        assert outcome(True) == outcome(False)

    def test_join_on_one_group_leaves_the_other_untouched(self):
        sim = Simulator(seed=2)
        a = SimDeployment(gs_digraph(6, 3), engine=sim, namespace="a")
        b = SimDeployment(gs_digraph(6, 3), engine=sim, namespace="b")
        a.run_rounds(1)
        b.run_rounds(1)
        a.fail(4)
        a.run_rounds(1)
        b.run_rounds(1)
        before = sim.now
        a.join(4)          # advances the shared clock (join latency)
        assert sim.now > before
        assert a.epoch == 1 and b.epoch == 0
        assert len(b.alive_members) == 6
        a.run_rounds(1)
        b.run_rounds(1)
        assert a.check_agreement() and b.check_agreement()

    def test_seed_of_owned_engine_still_applies(self):
        dep = SimDeployment(gs_digraph(6, 3),
                            options=ClusterOptions(seed=9))
        assert dep.sim.seed == 9
        shared = Simulator(seed=7)
        hosted = SimDeployment(gs_digraph(6, 3), engine=shared,
                               options=ClusterOptions(seed=9))
        assert hosted.sim.seed == 7   # the external engine's seed governs
