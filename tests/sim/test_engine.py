"""Discrete-event engine and event-queue tests."""

import pytest

from repro.sim import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_fifo_for_equal_times(self):
        q = EventQueue()
        order = []
        q.push(1.0, order.append, ("a",))
        q.push(1.0, order.append, ("b",))
        q.push(1.0, order.append, ("c",))
        while (ev := q.pop()) is not None:
            ev.callback(*ev.args)
        assert order == ["a", "b", "c"]

    def test_time_ordering(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        assert q.peek_time() == 1.0

    def test_priority_breaks_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, order.append, ("low",), priority=5)
        q.push(1.0, order.append, ("high",), priority=-5)
        while (ev := q.pop()) is not None:
            ev.callback(*ev.args)
        assert order == ["high", "low"]

    def test_cancellation(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        handle.cancel()
        assert handle.cancelled
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        h.cancel()
        assert q.peek_time() == 2.0

    def test_len_and_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.clear()
        assert q.pop() is None


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "x")
        sim.schedule(0.5, fired.append, "y")
        sim.run_until_idle()
        assert fired == ["y", "x"]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: None)
        sim.run_until_idle()
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.run(max_events=10)
        assert sim.events_processed == 10

    def test_stop_when_predicate(self):
        sim = Simulator()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run(stop_when=lambda: counter["n"] >= 3, max_events=100)
        assert counter["n"] == 3

    def test_cascading_events_same_time(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        sim.run_until_idle()
        assert log == ["first", "second"]

    def test_rng_is_deterministic_per_seed(self):
        a = Simulator(seed=42).rng.random()
        b = Simulator(seed=42).rng.random()
        c = Simulator(seed=43).rng.random()
        assert a == b
        assert a != c

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5
