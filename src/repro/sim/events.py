"""Event primitives for the discrete-event simulator.

The simulator is the substrate that replaces the paper's physical clusters
(InfiniBand cluster, Cray XC40): servers are simulated processes, message
transmission times follow the LogP model with the paper's own measured
parameters, and failures are injected deterministically.  Determinism is a
hard requirement — every experiment and property-based test must be exactly
replayable from a seed — so events are ordered by ``(time, priority, seq)``
where ``seq`` is a monotonically increasing tie-breaker.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue", "EventHandle"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, priority, seq)``; the callback and its arguments
    do not participate in comparisons.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped when popped."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple = (), priority: int = 0) -> EventHandle:
        """Schedule *callback(*args)* at *time*."""
        ev = Event(time=time, priority=priority, seq=next(self._counter),
                   callback=callback, args=args)
        heapq.heappush(self._heap, ev)
        return EventHandle(ev)

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event (without removing it)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        self._heap.clear()
