"""Event primitives for the discrete-event simulator.

The simulator is the substrate that replaces the paper's physical clusters
(InfiniBand cluster, Cray XC40): servers are simulated processes, message
transmission times follow the LogP model with the paper's own measured
parameters, and failures are injected deterministically.  Determinism is a
hard requirement — every experiment and property-based test must be exactly
replayable from a seed — so events are ordered by ``(time, priority, seq)``
where ``seq`` is a monotonically increasing tie-breaker.

Hot-path design
---------------

The event queue is the single busiest structure of a packet-level run
(hundreds of thousands of heap operations per simulated round), so it is
built to keep every comparison — and, for the common case, every
allocation — in C:

* heap entries are plain 5-tuples ``(time, priority, seq, x, y)``; ``seq``
  is unique, so ``heapq``'s tuple comparisons never look past it and never
  call back into Python;
* the common event — priority 0 or 1/2, never cancelled: network
  deliveries, workload injections — is stored **without** an
  :class:`Event` object: ``x`` is the callback and ``y`` its argument
  tuple (:meth:`EventQueue.push_fast`);
* only cancellable events (:meth:`EventQueue.push`, which returns an
  :class:`EventHandle`) allocate an :class:`Event`; their entries carry the
  sentinel ``y is _CANCELLABLE`` so the queue can tell the two shapes
  apart without an ``isinstance`` check.

:class:`~repro.sim.engine.Simulator.run` iterates over the raw entry list
(`EventQueue._heap`) for the same reason; :meth:`EventQueue.pop` remains
the object-level API (used by ``Simulator.step`` and the tests) and
materialises an :class:`Event` view of fast entries on demand.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue", "EventHandle"]

#: marks a heap entry whose 4th element is a (cancellable) Event object
_CANCELLABLE = object()


class Event:
    """A scheduled callback.

    Ordering is by the precomputed ``sort_key == (time, priority, seq)``;
    the callback and its arguments do not participate in comparisons.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "sort_key")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., None],
                 args: tuple[Any, ...] = (),
                 cancelled: bool = False) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.sort_key = (time, priority, seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "Event") -> bool:
        return self.sort_key <= other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Event t={self.time} prio={self.priority} seq={self.seq} "
                f"cancelled={self.cancelled}>")


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped when popped."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventQueue:
    """A deterministic min-heap of scheduled callbacks.

    See the module docstring for the two entry shapes.  The heap list
    itself (``_heap``) is deliberately exposed to
    :class:`~repro.sim.engine.Simulator`'s run loop.
    """

    def __init__(self) -> None:
        #: (time, priority, seq, callback, args) fast entries mixed with
        #: (time, priority, seq, Event, _CANCELLABLE) cancellable entries
        self._heap: list[tuple[Any, ...]] = []
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...] = (), priority: int = 0) -> EventHandle:
        """Schedule *callback(*args)* at *time*; returns a cancel handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        ev = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, ev, _CANCELLABLE))
        return EventHandle(ev)

    def push_fast(self, time: float, callback: Callable[..., None],
                  args: tuple[Any, ...] = (), priority: int = 0) -> None:
        """Fast path for the common never-cancelled event: no
        :class:`Event` and no :class:`EventHandle` are allocated."""
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, callback, args))

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty.

        Fast entries are materialised into an :class:`Event` view (this is
        the object-level API for ``Simulator.step`` and tests; bulk
        execution goes through the raw heap in ``Simulator.run``).
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[4] is _CANCELLABLE:
                ev = entry[3]
                if not ev.cancelled:
                    return ev
            else:
                return Event(entry[0], entry[1], entry[2],
                             entry[3], entry[4])
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event (without removing it)."""
        heap = self._heap
        while heap and heap[0][4] is _CANCELLABLE and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def clear(self) -> None:
        self._heap.clear()
