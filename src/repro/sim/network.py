"""LogP-parameterised network model.

The paper analyses AllConcur with the LogP model (§4): latency ``L``,
per-message CPU overhead ``o``, gap ``g`` (with the common assumption
``o > g``), and ``P = n`` processes.  The evaluation calibrates the model to
the two transports of the C implementation (§5):

* TCP (IP over InfiniBand): ``L = 12 µs``, ``o = 1.8 µs``;
* InfiniBand Verbs (IBV): ``L = 1.25 µs``, ``o = 0.38 µs``.

The simulated network reproduces the LogP cost structure:

* the **sender** pays ``o`` (plus a per-byte cost ``G`` for long messages —
  the LogGP extension) for every message, and its sends are serialised: a
  burst of ``d`` messages to ``d`` successors leaves the NIC back to back;
* the message then spends ``L`` on the wire (plus optional jitter);
* the **receiver** pays ``o`` per message, and its receive handling is also
  serialised, which models the contention-while-receiving discussed in
  §4.2.1.

Failed senders stop sending: if a process fails while a burst is being
serialised, only the messages that left before the failure time are
delivered — exactly the partial-send behaviour that AllConcur's early
termination has to deal with (the ``p0`` example of §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from .engine import Simulator

__all__ = [
    "LogPParams", "TCP_PARAMS", "IBV_PARAMS", "ETHERNET_PARAMS",
    "DelayModel", "NoJitter", "ExponentialJitter", "UniformJitter",
    "NetworkStats", "Network",
]


@dataclass(frozen=True)
class LogPParams:
    """LogP/LogGP parameters, in seconds (and seconds/byte for ``G``).

    Attributes
    ----------
    L:
        Wire latency for a short message.
    o:
        CPU overhead paid by sender and receiver per message.
    g:
        Minimum gap between consecutive message injections; the paper (and
        we) assume ``o > g``, so ``g`` only matters if explicitly raised.
    G:
        Per-byte gap (LogGP): serialisation cost of message payloads.  The
        default corresponds to a 40 Gbit/s link (the Voltaire/ConnectX-3
        fabric of the IB-hsw system).
    name:
        Label used in reports ("TCP", "IBV", ...).
    """

    L: float
    o: float
    g: float = 0.0
    G: float = 1.0 / (40e9 / 8)  # seconds per byte on a 40 Gb/s link
    name: str = "custom"

    def send_cost(self, nbytes: int = 0) -> float:
        """Sender-side occupancy for one message of *nbytes* payload."""
        return max(self.o, self.g) + nbytes * self.G

    def transmission_time(self, nbytes: int = 0) -> float:
        """End-to-end time of a single isolated message: ``L + 2o`` (+bytes)."""
        return self.L + 2 * self.o + nbytes * self.G


#: §5: LogP parameters measured on the IB-hsw system over TCP (IP over IB).
TCP_PARAMS = LogPParams(L=12e-6, o=1.8e-6, name="TCP")
#: §5: LogP parameters measured on the IB-hsw system over InfiniBand Verbs.
IBV_PARAMS = LogPParams(L=1.25e-6, o=0.38e-6, name="IBV")
#: A generic 10 GbE datacenter profile (for what-if studies).
ETHERNET_PARAMS = LogPParams(L=50e-6, o=3.0e-6, G=1.0 / (10e9 / 8),
                             name="10GbE")


class DelayModel(Protocol):
    """Extra (stochastic) wire delay added on top of the LogP latency.

    §3.2 models network delays as a random variable ``T`` from a known
    distribution; these delay models provide that ``T``.
    """

    def sample(self, rng) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class NoJitter:
    """Deterministic network: no extra delay."""

    def sample(self, rng) -> float:
        return 0.0


@dataclass(frozen=True)
class ExponentialJitter:
    """Exponentially distributed extra delay with the given mean (seconds)."""

    mean: float

    def sample(self, rng) -> float:
        return rng.expovariate(1.0 / self.mean) if self.mean > 0 else 0.0


@dataclass(frozen=True)
class UniformJitter:
    """Uniform extra delay in ``[low, high]`` seconds."""

    low: float
    high: float

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class NetworkStats:
    """Aggregate traffic counters (work metric of §4.1)."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_process_sent: dict[int, int] = field(default_factory=dict)
    per_process_received: dict[int, int] = field(default_factory=dict)

    def record_send(self, src: int, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.per_process_sent[src] = self.per_process_sent.get(src, 0) + 1

    def record_delivery(self, dst: int) -> None:
        self.messages_delivered += 1
        self.per_process_received[dst] = \
            self.per_process_received.get(dst, 0) + 1

    def record_drop(self) -> None:
        self.messages_dropped += 1


class Network:
    """Point-to-point reliable message transport over a LogP network.

    The paper assumes *reliable communication*: messages cannot be lost, only
    delayed (§2).  Consequently the network never drops a message whose
    sender was alive when the message left; messages addressed to a failed
    process are delivered to a black hole (counted as drops for statistics
    only).

    Receivers are registered with :meth:`attach`; each receiver is a callable
    ``on_message(src, dst, message)``.
    """

    def __init__(self, sim: Simulator, params: LogPParams = TCP_PARAMS, *,
                 jitter: Optional[DelayModel] = None) -> None:
        self.sim = sim
        self.params = params
        self.jitter = jitter or NoJitter()
        self.stats = NetworkStats()
        self._receivers: dict[int, Callable[[int, int, object], None]] = {}
        self._failed: set[int] = set()
        # Per-process times at which the NIC / CPU become free again,
        # modelling serialised sends and serialised receive handling.
        self._send_free: dict[int, float] = {}
        self._recv_free: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    def attach(self, pid: int,
               on_message: Callable[[int, int, object], None]) -> None:
        """Register process *pid* with its message-delivery callback."""
        if pid in self._receivers:
            raise ValueError(f"process {pid} already attached")
        self._receivers[pid] = on_message
        self._send_free.setdefault(pid, 0.0)
        self._recv_free.setdefault(pid, 0.0)

    def detach(self, pid: int) -> None:
        """Remove a process (used when members leave the system)."""
        self._receivers.pop(pid, None)

    def mark_failed(self, pid: int) -> None:
        """Record that *pid* fail-stopped; subsequent sends from it are
        suppressed and deliveries to it are dropped."""
        self._failed.add(pid)

    def mark_recovered(self, pid: int) -> None:
        """Allow a previously failed id to participate again (rejoin)."""
        self._failed.discard(pid)

    def is_failed(self, pid: int) -> bool:
        return pid in self._failed

    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, message: object, *,
             nbytes: int = 0) -> bool:
        """Send *message* from *src* to *dst*.

        Returns True if the message actually left the sender (i.e. the
        sender had not failed).  Delivery is scheduled on the simulator.
        """
        if src in self._failed:
            self.stats.record_drop()
            return False
        if src not in self._receivers:
            raise ValueError(f"unknown sender {src}")
        params = self.params
        # serialise sends at the sender
        start = max(self.sim.now, self._send_free.get(src, 0.0))
        occupancy = params.send_cost(nbytes)
        departure = start + occupancy
        self._send_free[src] = departure
        self.stats.record_send(src, nbytes)
        wire = params.L + self.jitter.sample(self.sim.rng)
        arrival = departure + wire
        self.sim.schedule_at(arrival, self._deliver, src, dst, message,
                             priority=1)
        return True

    def multicast(self, src: int, dsts, message: object, *,
                  nbytes: int = 0) -> int:
        """Send *message* to every destination in *dsts* (serialised at the
        sender, in the given order).  Returns the number of copies sent."""
        sent = 0
        for dst in dsts:
            if self.send(src, dst, message, nbytes=nbytes):
                sent += 1
        return sent

    # ------------------------------------------------------------------ #
    def _deliver(self, src: int, dst: int, message: object) -> None:
        receiver = self._receivers.get(dst)
        if receiver is None or dst in self._failed:
            self.stats.record_drop()
            return
        # serialise receive handling (receiver overhead o per message)
        start = max(self.sim.now, self._recv_free.get(dst, 0.0))
        done = start + self.params.o
        self._recv_free[dst] = done
        self.stats.record_delivery(dst)
        if done <= self.sim.now:
            receiver(src, dst, message)
        else:
            self.sim.schedule_at(done, receiver, src, dst, message,
                                 priority=2)
