"""LogP-parameterised network model.

The paper analyses AllConcur with the LogP model (§4): latency ``L``,
per-message CPU overhead ``o``, gap ``g`` (with the common assumption
``o > g``), and ``P = n`` processes.  The evaluation calibrates the model to
the two transports of the C implementation (§5):

* TCP (IP over InfiniBand): ``L = 12 µs``, ``o = 1.8 µs``;
* InfiniBand Verbs (IBV): ``L = 1.25 µs``, ``o = 0.38 µs``.

The simulated network reproduces the LogP cost structure:

* the **sender** pays ``o`` (plus a per-byte cost ``G`` for long messages —
  the LogGP extension) for every message, and its sends are serialised: a
  burst of ``d`` messages to ``d`` successors leaves the NIC back to back;
* the message then spends ``L`` on the wire (plus optional jitter);
* the **receiver** pays ``o`` per message, and its receive handling is also
  serialised, which models the contention-while-receiving discussed in
  §4.2.1.

Failed senders stop sending: if a process fails while a burst is being
serialised, only the messages that left before the failure time are
delivered — exactly the partial-send behaviour that AllConcur's early
termination has to deal with (the ``p0`` example of §2.3).
"""

from __future__ import annotations

import random

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol

from .engine import Simulator

__all__ = [
    "LogPParams", "TCP_PARAMS", "IBV_PARAMS", "ETHERNET_PARAMS",
    "DelayModel", "NoJitter", "ExponentialJitter", "UniformJitter",
    "NetworkStats", "Network",
]


@dataclass(frozen=True)
class LogPParams:
    """LogP/LogGP parameters, in seconds (and seconds/byte for ``G``).

    Attributes
    ----------
    L:
        Wire latency for a short message.
    o:
        CPU overhead paid by sender and receiver per message.
    g:
        Minimum gap between consecutive message injections; the paper (and
        we) assume ``o > g``, so ``g`` only matters if explicitly raised.
    G:
        Per-byte gap (LogGP): serialisation cost of message payloads.  The
        default corresponds to a 40 Gbit/s link (the Voltaire/ConnectX-3
        fabric of the IB-hsw system).
    name:
        Label used in reports ("TCP", "IBV", ...).
    """

    L: float
    o: float
    g: float = 0.0
    G: float = 1.0 / (40e9 / 8)  # seconds per byte on a 40 Gb/s link
    name: str = "custom"

    def send_cost(self, nbytes: int = 0) -> float:
        """Sender-side occupancy for one message of *nbytes* payload."""
        return max(self.o, self.g) + nbytes * self.G

    def transmission_time(self, nbytes: int = 0) -> float:
        """End-to-end time of a single isolated message: ``L + 2o`` (+bytes)."""
        return self.L + 2 * self.o + nbytes * self.G


#: §5: LogP parameters measured on the IB-hsw system over TCP (IP over IB).
TCP_PARAMS = LogPParams(L=12e-6, o=1.8e-6, name="TCP")
#: §5: LogP parameters measured on the IB-hsw system over InfiniBand Verbs.
IBV_PARAMS = LogPParams(L=1.25e-6, o=0.38e-6, name="IBV")
#: A generic 10 GbE datacenter profile (for what-if studies).
ETHERNET_PARAMS = LogPParams(L=50e-6, o=3.0e-6, G=1.0 / (10e9 / 8),
                             name="10GbE")


class DelayModel(Protocol):
    """Extra (stochastic) wire delay added on top of the LogP latency.

    §3.2 models network delays as a random variable ``T`` from a known
    distribution; these delay models provide that ``T``.
    """

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class NoJitter:
    """Deterministic network: no extra delay."""

    def sample(self, rng: random.Random) -> float:
        return 0.0


@dataclass(frozen=True)
class ExponentialJitter:
    """Exponentially distributed extra delay with the given mean (seconds)."""

    mean: float

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean) if self.mean > 0 else 0.0


@dataclass(frozen=True)
class UniformJitter:
    """Uniform extra delay in ``[low, high]`` seconds."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class NetworkStats:
    """Aggregate traffic counters (work metric of §4.1).

    All message/byte counters are per **logical message**: with per-edge
    event coalescing one queue event may carry several messages, but each of
    them is counted individually here.  ``events_coalesced`` records how
    many logical messages rode along in an already-scheduled same-edge
    queue event (i.e. the number of arrival events the coalescing fast path
    saved).
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    #: logical messages that shared a previously scheduled same-edge event
    events_coalesced: int = 0
    per_process_sent: dict[int, int] = field(default_factory=dict)
    per_process_received: dict[int, int] = field(default_factory=dict)

    def record_send(self, src: int, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.per_process_sent[src] = self.per_process_sent.get(src, 0) + 1

    def record_delivery(self, dst: int) -> None:
        self.messages_delivered += 1
        self.per_process_received[dst] = \
            self.per_process_received.get(dst, 0) + 1

    def record_drop(self) -> None:
        self.messages_dropped += 1


class Network:
    """Point-to-point reliable message transport over a LogP network.

    The paper assumes *reliable communication*: messages cannot be lost, only
    delayed (§2).  Consequently the network never drops a message whose
    sender was alive when the message left; messages addressed to a failed
    process are delivered to a black hole (counted as drops for statistics
    only).

    Receivers are registered with :meth:`attach`; each receiver is a callable
    ``on_message(src, dst, message)``.

    Per-edge event coalescing
    -------------------------

    With ``coalesce=True`` (the default, honoured only for deterministic —
    non-jittered — wires), messages sent over the same ``(src, dst)`` edge
    share **one** arrival event while that edge has a batch in flight: the
    first send schedules the event at its own arrival time, and every
    further same-edge send issued before the event fires rides along
    (protocol cores emit bursts — forwarding a broadcast plus
    A-broadcasting their own message, filling a ``k``-deep pipeline window,
    disseminating failure notifications — and in steady state an edge
    carries a message every few µs of sender occupancy while the wire
    latency ``L`` is an order of magnitude larger, so batches form
    naturally).  Scheduling one heap entry per copy is the single largest
    event-count term of a packet-level run.

    Every message keeps its *individual* LogP cost: sender occupancy is
    serialised per message, each copy has its own wire arrival time, and
    the receiver pays ``o`` per message starting no earlier than that
    copy's arrival.  Coalescing coarsens the receive-contention model in
    two documented ways (delivery contents and per-edge order are never
    affected): a same-edge batch claims the receiver's serialised CPU
    slots when its first copy arrives, so a third party's message arriving
    mid-batch queues behind the whole batch instead of interleaving with
    it (under sustained multi-predecessor load this shifts completion
    times and can accumulate into percent-level differences in measured
    round latency/throughput — the committed BENCH files are generated
    with coalescing ON, the shipped default); and failure/detach checks
    for the later copies of a batch happen at receive-completion time
    rather than at wire arrival, so a process that fails mid-batch drops
    the copies it had not finished receiving (fail-stop semantics; the
    per-message path delivers a copy that *arrived* before the failure
    even if its receive overhead completes after).
    """

    def __init__(self, sim: Simulator, params: LogPParams = TCP_PARAMS, *,
                 jitter: Optional[DelayModel] = None,
                 coalesce: bool = True) -> None:
        self.sim = sim
        self.params = params
        self.jitter = jitter or NoJitter()
        #: deterministic wire: no per-message jitter sampling needed
        self._no_jitter = isinstance(self.jitter, NoJitter)
        #: per-edge same-instant coalescing (active only with NoJitter)
        self.coalesce = coalesce and self._no_jitter
        # LogP constants and the queue's fast push, hoisted for the
        # per-message send path (params is a frozen dataclass)
        self._L = params.L
        self._o = params.o
        self._base_occ = max(params.o, params.g)
        self._G = params.G
        self._push = sim._queue.push_fast
        self.stats = NetworkStats()
        self._receivers: dict[int, Callable[[int, int, object], None]] = {}
        self._failed: set[int] = set()
        # Per-process times at which the NIC / CPU become free again,
        # modelling serialised sends and serialised receive handling.
        self._send_free: dict[int, float] = {}
        self._recv_free: dict[int, float] = {}
        # Open same-edge batches: (src, dst) -> [(message, arrival), ...].
        # The scheduled arrival event holds the message list by identity, so
        # appends between scheduling and firing are delivered with it.
        self._open_batches: dict[tuple[int, int],
                                 list[tuple[object, float]]] = {}

    # ------------------------------------------------------------------ #
    def attach(self, pid: int,
               on_message: Callable[[int, int, object], None]) -> None:
        """Register process *pid* with its message-delivery callback."""
        if pid in self._receivers:
            raise ValueError(f"process {pid} already attached")
        self._receivers[pid] = on_message
        self._send_free.setdefault(pid, 0.0)
        self._recv_free.setdefault(pid, 0.0)

    def detach(self, pid: int) -> None:
        """Remove a process (used when members leave the system)."""
        self._receivers.pop(pid, None)

    def mark_failed(self, pid: int) -> None:
        """Record that *pid* fail-stopped; subsequent sends from it are
        suppressed and deliveries to it are dropped."""
        self._failed.add(pid)

    def mark_recovered(self, pid: int) -> None:
        """Allow a previously failed id to participate again (rejoin)."""
        self._failed.discard(pid)

    def is_failed(self, pid: int) -> bool:
        return pid in self._failed

    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, message: object,
             nbytes: int = 0) -> bool:
        """Send *message* from *src* to *dst*.

        Returns True if the message actually left the sender (i.e. the
        sender had not failed).  Delivery is scheduled on the simulator.
        """
        if src in self._failed:
            self.stats.record_drop()
            return False
        if src not in self._receivers:
            raise ValueError(f"unknown sender {src}")
        now = self.sim._now
        # serialise sends at the sender
        free = self._send_free.get(src, 0.0)
        start = now if now > free else free
        departure = start + self._base_occ + nbytes * self._G
        self._send_free[src] = departure
        # inlined stats.record_send (per logical message; hot path)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        stats.per_process_sent[src] = stats.per_process_sent.get(src, 0) + 1
        wire = self._L if self._no_jitter \
            else self._L + self.jitter.sample(self.sim.rng)
        arrival = departure + wire
        if self.coalesce:
            key = (src, dst)
            batch = self._open_batches.get(key)
            if batch is not None:
                # Edge has an un-fired arrival event: ride along.  Sender
                # serialisation makes arrivals monotone per edge, so the
                # batch stays sorted by arrival time.
                batch.append((message, arrival))
                stats.events_coalesced += 1
            else:
                batch = [(message, arrival)]
                self._open_batches[key] = batch
                self._push(arrival, self._deliver_batch,
                           (src, dst, batch), 1)
        else:
            self._push(arrival, self._deliver, (src, dst, message), 1)
        return True

    def send_burst(self, src: int, targets: Iterable[int],
                   message: object,
                   nbytes: int = 0) -> int:
        """Send one copy of *message* to each destination in *targets*
        (serialised at the sender, in order) — behaviourally identical to
        calling :meth:`send` in a loop, with the per-copy sender checks
        and stats bookkeeping hoisted out of the loop.  This is the shape
        of every protocol `Send` effect (one message, ``d`` successors).
        Returns the number of copies sent (0 if the sender has failed)."""
        if src in self._failed:
            for _ in targets:
                self.stats.record_drop()
            return 0
        if src not in self._receivers:
            raise ValueError(f"unknown sender {src}")
        count = len(targets)
        now = self.sim._now
        free = self._send_free.get(src, 0.0)
        departure = now if now > free else free
        occupancy = self._base_occ + nbytes * self._G
        stats = self.stats
        stats.messages_sent += count
        stats.bytes_sent += nbytes * count
        stats.per_process_sent[src] = \
            stats.per_process_sent.get(src, 0) + count
        no_jitter = self._no_jitter
        L = self._L
        coalesce = self.coalesce
        batches = self._open_batches
        push = self._push
        for dst in targets:
            departure += occupancy
            wire = L if no_jitter \
                else L + self.jitter.sample(self.sim.rng)
            arrival = departure + wire
            if coalesce:
                key = (src, dst)
                batch = batches.get(key)
                if batch is not None:
                    batch.append((message, arrival))
                    stats.events_coalesced += 1
                else:
                    batch = [(message, arrival)]
                    batches[key] = batch
                    push(arrival, self._deliver_batch, (src, dst, batch), 1)
            else:
                push(arrival, self._deliver, (src, dst, message), 1)
        self._send_free[src] = departure
        return count

    def multicast(self, src: int, dsts: Iterable[int],
                  message: object, *,
                  nbytes: int = 0) -> int:
        """Send *message* to every destination in *dsts* (serialised at the
        sender, in the given order).  Returns the number of copies sent."""
        sent = 0
        for dst in dsts:
            if self.send(src, dst, message, nbytes=nbytes):
                sent += 1
        return sent

    # ------------------------------------------------------------------ #
    def _deliver(self, src: int, dst: int, message: object) -> None:
        receiver = self._receivers.get(dst)
        if receiver is None or dst in self._failed:
            self.stats.record_drop()
            return
        # serialise receive handling (receiver overhead o per message)
        start = max(self.sim.now, self._recv_free.get(dst, 0.0))
        done = start + self.params.o
        self._recv_free[dst] = done
        self.stats.record_delivery(dst)
        if done <= self.sim.now:
            receiver(src, dst, message)
        else:
            self._push(done, receiver, (src, dst, message), 2)

    def _deliver_batch(self, src: int, dst: int,
                       batch: list[tuple[object, float]]) -> None:
        """Deliver a coalesced same-edge batch.

        Fires at the first copy's arrival time; each copy is handled with
        its own precomputed arrival (deterministic wire — coalescing is
        disabled under jitter), paying the receiver overhead ``o`` serially
        exactly as the per-message path would.  Accounting and the
        failure/detach check happen per copy at its receive-completion
        time (:meth:`_finish_recv`), so a destination failing mid-batch
        drops the copies it had not finished receiving.
        """
        if self._open_batches.get((src, dst)) is batch:
            del self._open_batches[(src, dst)]
        receiver = self._receivers.get(dst)
        if receiver is None or dst in self._failed:
            for _ in batch:
                self.stats.record_drop()
            return
        now = self.sim._now
        free = self._recv_free.get(dst, 0.0)
        o = self._o
        push = self._push
        finish = self._finish_recv
        for message, arrival in batch:
            start = arrival if arrival > free else free
            done = start + o
            free = done
            if done <= now:
                finish(receiver, src, dst, message)
            else:
                push(done, finish, (receiver, src, dst, message), 2)
        self._recv_free[dst] = free

    def _finish_recv(self, receiver: Callable[[int, int, object], None],
                     src: int, dst: int,
                     message: object) -> None:
        """Complete one coalesced receive: account the delivery and invoke
        the receiver — or drop, if the destination failed while the copy
        was still in flight / being received (fail-stop: a failed process
        stops processing messages).  *receiver* is captured at batch-fire
        time, exactly like the per-message path captures it at arrival."""
        if dst in self._failed:
            self.stats.record_drop()
            return
        stats = self.stats
        stats.messages_delivered += 1
        stats.per_process_received[dst] = \
            stats.per_process_received.get(dst, 0) + 1
        receiver(src, dst, message)
