"""Discrete-event simulation substrate.

Replaces the paper's physical testbeds (96-node InfiniBand cluster, Cray
XC40) with a deterministic, LogP-parameterised simulator: virtual servers,
reliable point-to-point message transport, fail-stop failure injection and
heartbeat-style failure detectors.
"""

from .engine import SimulationError, Simulator
from .events import Event, EventHandle, EventQueue
from .failure_detector import (
    EventuallyPerfectFailureDetector,
    FailureDetectorBase,
    HeartbeatFailureDetector,
    PerfectFailureDetector,
)
from .failures import FailureEvent, FailureInjector
from .network import (
    ETHERNET_PARAMS,
    IBV_PARAMS,
    TCP_PARAMS,
    ExponentialJitter,
    LogPParams,
    Network,
    NetworkStats,
    NoJitter,
    UniformJitter,
)
from .trace import DeliveryRecord, RoundTrace, median_and_ci, percentile

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventHandle",
    "EventQueue",
    "LogPParams",
    "TCP_PARAMS",
    "IBV_PARAMS",
    "ETHERNET_PARAMS",
    "Network",
    "NetworkStats",
    "NoJitter",
    "ExponentialJitter",
    "UniformJitter",
    "FailureEvent",
    "FailureInjector",
    "FailureDetectorBase",
    "PerfectFailureDetector",
    "HeartbeatFailureDetector",
    "EventuallyPerfectFailureDetector",
    "DeliveryRecord",
    "RoundTrace",
    "median_and_ci",
    "percentile",
]
