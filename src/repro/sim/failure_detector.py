"""Failure detectors (§2.2.2, §3.2, §3.3.2).

AllConcur requires a failure detector (FD) because consensus is unsolvable in
a purely asynchronous system with failures (FLP).  The paper uses a
heartbeat-based FD: every server sends heartbeats to its successors with
period ``Δhb``; a server that receives no heartbeat from a predecessor for
``Δto`` suspects it to have failed.

Three simulated detectors are provided:

* :class:`PerfectFailureDetector` (``P``): suspicion happens only after an
  actual failure, after a configurable detection delay.  Used by the
  correctness analysis (§3.1) and most benchmarks ("all the experiments
  assume a perfect FD", §5).
* :class:`HeartbeatFailureDetector`: detection latency derived from the
  heartbeat parameters — a failure at time ``t`` is detected by each alive
  successor at ``t' = (last heartbeat before t) + Δto``, matching the
  unavailability windows of Figure 7.  With network jitter it can also
  *falsely* suspect (accuracy violation, §3.2).
* :class:`EventuallyPerfectFailureDetector` (``◇P``): like the heartbeat FD
  but with a schedule of injected false suspicions and a timeout that
  doubles after every mistake, for exercising the surviving-partition
  mechanism (§3.3.2).

All detectors notify subscribers with ``on_suspect(observer, suspect)``
callbacks: *observer* is the server whose local FD raised the suspicion of
*suspect* (one of its predecessors in ``G``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..graphs.digraph import Digraph
from .engine import Simulator
from .failures import FailureEvent, FailureInjector

__all__ = [
    "FailureDetectorBase",
    "PerfectFailureDetector",
    "HeartbeatFailureDetector",
    "EventuallyPerfectFailureDetector",
]

SuspectCallback = Callable[[int, int], None]


class FailureDetectorBase:
    """Common machinery: who observes whom, and suspicion fan-out."""

    def __init__(self, sim: Simulator, graph: Digraph,
                 injector: FailureInjector) -> None:
        self.sim = sim
        self.graph = graph
        self.injector = injector
        self._subscribers: list[SuspectCallback] = []
        self._suspected: set[tuple[int, int]] = set()  # (observer, suspect)
        injector.subscribe(self._on_failure)

    def subscribe(self, callback: SuspectCallback) -> None:
        """Register ``callback(observer, suspect)``."""
        self._subscribers.append(callback)

    def close(self) -> None:
        """Stop observing failures (deregisters from the injector).

        Membership changes replace the detector; the old one must not keep
        scheduling suspicions (or keep itself alive through the injector's
        listener list) for the new epoch."""
        self.injector.unsubscribe(self._on_failure)
        self._subscribers.clear()

    def has_suspected(self, observer: int, suspect: int) -> bool:
        return (observer, suspect) in self._suspected

    # -- to be provided by subclasses ----------------------------------- #
    def detection_delay(self, observer: int, suspect: int,
                        failure_time: float) -> float:
        """Delay between the failure and the observer's suspicion."""
        raise NotImplementedError

    # -------------------------------------------------------------------- #
    def _on_failure(self, event: FailureEvent) -> None:
        """A server failed: schedule detection at each alive successor."""
        suspect = event.pid
        for observer in self.graph.successors(suspect):
            if self.injector.is_failed(observer):
                continue
            delay = self.detection_delay(observer, suspect, event.time)
            self.sim.schedule(delay, self._raise_suspicion, observer, suspect)

    def _raise_suspicion(self, observer: int, suspect: int) -> None:
        if self.injector.is_failed(observer):
            return  # the observer failed in the meantime
        if (observer, suspect) in self._suspected:
            return
        self._suspected.add((observer, suspect))
        for cb in self._subscribers:
            cb(observer, suspect)


class PerfectFailureDetector(FailureDetectorBase):
    """``P``: complete and accurate.  Detection after a fixed delay."""

    def __init__(self, sim: Simulator, graph: Digraph,
                 injector: FailureInjector, *,
                 detection_delay: float = 20e-6) -> None:
        super().__init__(sim, graph, injector)
        self._delay = detection_delay

    def detection_delay(self, observer: int, suspect: int,
                        failure_time: float) -> float:
        return self._delay


class HeartbeatFailureDetector(FailureDetectorBase):
    """Heartbeat-based FD with period ``Δhb`` and timeout ``Δto`` (§3.2).

    The detector is *complete*: a real failure at time ``t`` is detected by
    each successor once its timeout expires.  The successor last heard a
    heartbeat at some time in ``[t - Δhb, t]`` (we place it
    deterministically, using the failed server's heartbeat phase), so the
    suspicion is raised at ``last_heartbeat + Δto``.

    With ``false_suspicion_rate > 0`` the detector can also violate accuracy
    — used to study the ◇P mode.
    """

    def __init__(self, sim: Simulator, graph: Digraph,
                 injector: FailureInjector, *,
                 heartbeat_period: float = 10e-3,
                 timeout: float = 100e-3) -> None:
        super().__init__(sim, graph, injector)
        if timeout < heartbeat_period:
            raise ValueError("timeout must be at least the heartbeat period")
        self.heartbeat_period = heartbeat_period
        self.timeout = timeout

    def detection_delay(self, observer: int, suspect: int,
                        failure_time: float) -> float:
        # The last heartbeat the observer received from the suspect was sent
        # at the last multiple of Δhb before the failure (servers start their
        # heartbeat timers at time 0).
        period = self.heartbeat_period
        last_hb = (failure_time // period) * period
        detect_at = last_hb + self.timeout
        return max(detect_at - failure_time, 0.0)


class EventuallyPerfectFailureDetector(HeartbeatFailureDetector):
    """``◇P``: may falsely suspect alive servers, but eventually stops.

    False suspicions are injected explicitly with
    :meth:`inject_false_suspicion`; after every false suspicion the timeout
    doubles (the standard Chandra–Toueg adaptation), so a bounded number of
    injections leads to eventual accuracy.
    """

    def __init__(self, sim: Simulator, graph: Digraph,
                 injector: FailureInjector, *,
                 heartbeat_period: float = 10e-3,
                 timeout: float = 100e-3) -> None:
        super().__init__(sim, graph, injector,
                         heartbeat_period=heartbeat_period, timeout=timeout)
        self.false_suspicions: list[tuple[int, int, float]] = []

    def inject_false_suspicion(self, observer: int, suspect: int,
                               at_time: float) -> None:
        """Schedule *observer* to falsely suspect *suspect* at *at_time*."""
        if suspect not in set(self.graph.predecessors(observer)):
            raise ValueError(
                f"{suspect} is not a predecessor of {observer}; the FD only "
                f"monitors predecessors")
        self.false_suspicions.append((observer, suspect, at_time))
        self.sim.schedule_at(at_time, self._false_suspect, observer, suspect)

    def _false_suspect(self, observer: int, suspect: int) -> None:
        if self.injector.is_failed(observer):
            return
        # Doubling the timeout models the eventual-accuracy adaptation.
        self.timeout *= 2
        self._raise_suspicion(observer, suspect)
