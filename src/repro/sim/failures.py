"""Failure injection.

Servers follow the fail-stop model (§2): a failed server stops sending and
processing messages and never recovers (a rejoining server comes back with a
new identity / membership change, §3).  The injector supports the failure
triggers the paper's scenarios need:

* fail at an absolute simulated time (Figure 7's F events);
* fail after the server has sent a given number of copies of a specific
  message — this reproduces the §2.3 scenario where ``p0`` fails after
  sending ``m0`` to only one successor;
* fail at the beginning of a given round.

The injector notifies registered listeners (the network, failure detectors,
trace collectors) when a failure actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .engine import Simulator

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """A failure that has happened: *pid* failed at *time*."""

    pid: int
    time: float
    reason: str = "injected"


class FailureInjector:
    """Central registry of injected failures.

    Components query :meth:`is_failed`; listeners subscribe with
    :meth:`subscribe` to be told when a failure occurs (the perfect failure
    detector uses this to schedule detection at the successors).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._failed: dict[int, FailureEvent] = {}
        self._listeners: list[Callable[[FailureEvent], None]] = []
        #: send-budget based failures: pid -> remaining sends before failure
        self._send_budget: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def subscribe(self, listener: Callable[[FailureEvent], None]) -> None:
        """Register a callback invoked at the moment a server fails."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[FailureEvent], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent).

        Long-lived injectors outlive individual nodes (membership changes
        rebuild the node set), so nodes must deregister their liveness
        listeners when they are replaced."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def is_failed(self, pid: int) -> bool:
        return pid in self._failed

    def failure_time(self, pid: int) -> Optional[float]:
        ev = self._failed.get(pid)
        return ev.time if ev else None

    @property
    def failed(self) -> dict[int, FailureEvent]:
        """Mapping of failed pid -> failure event."""
        return dict(self._failed)

    # ------------------------------------------------------------------ #
    def fail_now(self, pid: int, *, reason: str = "injected") -> None:
        """Fail *pid* immediately (at the current simulated time)."""
        if pid in self._failed:
            return
        ev = FailureEvent(pid=pid, time=self.sim.now, reason=reason)
        self._failed[pid] = ev
        for listener in self._listeners:
            listener(ev)

    def fail_at(self, pid: int, time: float, *,
                reason: str = "scheduled") -> None:
        """Schedule *pid* to fail at absolute simulated *time*."""
        self.sim.schedule_at(time, self.fail_now, pid, priority=-1)
        # priority -1: the failure takes effect before messages scheduled at
        # exactly the same instant are processed.

    def clear(self, pid: int) -> None:
        """Forget a failure (used when a server rejoins with the same id
        after a membership change; the paper treats this as a new member)."""
        self._failed.pop(pid, None)
        self._send_budget.pop(pid, None)

    def fail_after_sends(self, pid: int, sends: int) -> None:
        """Fail *pid* after it has completed *sends* further message sends.

        The AllConcur simulation node consults :meth:`consume_send_budget`
        before each send; when the budget reaches zero the node calls
        :meth:`fail_now`.  This reproduces the partial-dissemination failures
        of §2.3 / Figure 2.
        """
        if sends < 0:
            raise ValueError("sends must be non-negative")
        self._send_budget[pid] = sends

    def consume_send_budget(self, pid: int) -> bool:
        """Consume one unit of *pid*'s send budget.

        Returns True if *pid* may still send (and decrements the budget);
        returns False if the budget is exhausted — the caller must then stop
        sending and fail the server.
        """
        if pid not in self._send_budget:
            return True
        remaining = self._send_budget[pid]
        if remaining <= 0:
            return False
        self._send_budget[pid] = remaining - 1
        return True

    def has_send_budget(self, pid: int) -> bool:
        """True if *pid* has a send-budget trigger installed."""
        return pid in self._send_budget
