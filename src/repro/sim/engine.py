"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and the event queue.  Components
(network, processes, failure detectors, failure injectors) schedule callbacks
on it.  Simulated time is a float in **seconds**; the LogP parameters of the
paper (§5: L = 12 µs / o = 1.8 µs over TCP, L = 1.25 µs / o = 0.38 µs over
InfiniBand Verbs) are expressed in the same unit.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from .events import EventHandle, EventQueue
from .events import _CANCELLABLE

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All stochastic
        components (delay jitter, random failures) must draw from
        :attr:`rng` so that runs are exactly reproducible.
    """

    def __init__(self, *, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._rng = random.Random(seed)
        self._seed = seed
        self._events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The simulator-owned RNG; the single source of randomness."""
        return self._rng

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostic / perf metric)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any, priority: int = 0) -> EventHandle:
        """Schedule *callback(*args)* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any, priority: int = 0) -> EventHandle:
        """Schedule *callback(*args)* at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})")
        return self._queue.push(time, callback, args, priority)

    def post(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...] = (), priority: int = 0) -> None:
        """Fast-path scheduling at absolute *time*: no cancel handle.  This
        is the hot path of the network and workload layers — the
        overwhelming majority of events are never cancelled, so the
        :class:`~repro.sim.events.EventHandle` allocation of
        :meth:`schedule_at` is pure overhead there."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})")
        self._queue.push_fast(time, callback, args, priority)

    def request_stop(self) -> None:
        """Ask a :meth:`run` in progress to stop before the next event.

        Callbacks (e.g. a cluster's delivery watcher) use this instead of a
        ``stop_when`` predicate when the stop condition is event-driven:
        the flag costs one attribute check per loop iteration, whereas a
        predicate costs a Python call after every event.  The request is
        consumed by the run loop (or, if none is active, by the next one).
        """
        self._stop_requested = True

    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self._events_processed += 1
        ev.callback(*ev.args)
        return True

    def run(self, *, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the virtual clock would pass this time (the event that
            would exceed it is left in the queue and the clock is advanced to
            ``until``).
        max_events:
            Stop after this many events (guard against runaways).
        stop_when:
            Predicate evaluated after every event; the run stops as soon as
            it returns True.  (For event-driven stop conditions prefer
            :meth:`request_stop`, which avoids the per-event call.)

        Returns
        -------
        float
            The virtual time at which the run stopped.
        """
        processed = 0
        # The loop iterates over the raw heap entries (see events.py for
        # the two entry shapes) so that the per-event cost is a handful of
        # C-level operations: no pop()/peek_time() calls, no Event
        # materialisation for fast entries.
        heap = self._queue._heap
        heappop = heapq.heappop
        remaining = -1 if max_events is None else max_events
        while True:
            if self._stop_requested:
                self._stop_requested = False
                break
            if processed == remaining:
                break
            while heap and heap[0][4] is _CANCELLABLE \
                    and heap[0][3].cancelled:
                heappop(heap)
            if not heap:
                break
            entry = heap[0]
            if until is not None and entry[0] > until:
                self._now = until
                break
            heappop(heap)
            self._now = entry[0]
            self._events_processed += 1
            x = entry[3]
            if entry[4] is _CANCELLABLE:
                x.callback(*x.args)
            else:
                x(*entry[4])
            processed += 1
            if stop_when is not None and stop_when():
                break
        if until is not None and self._now < until and \
                self._queue.peek_time() is None:
            # idle until the horizon
            self._now = until
        return self._now

    def run_until_idle(self, *, max_events: int = 50_000_000) -> float:
        """Run until no events remain.  Convenience wrapper for tests."""
        return self.run(max_events=max_events)
