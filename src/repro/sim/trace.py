"""Tracing and measurement of simulated AllConcur runs.

The evaluation section of the paper uses three performance metrics:

* **agreement latency** — time to reach agreement on a round;
* **agreement throughput** — amount of data agreed upon per second;
* **aggregated throughput** — agreement throughput × number of servers.

:class:`RoundTrace` collects per-round, per-server delivery records from
which all three are derived, plus the work metric of §4.1 (messages
sent/received per server), and nonparametric median / 95% confidence
intervals as recommended by the benchmarking guidelines the paper follows
(Hoefler & Belli, SC'15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["DeliveryRecord", "RoundTrace", "median_and_ci", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of a sequence."""
    if not values:
        raise ValueError("empty sequence")
    s = sorted(values)
    if len(s) == 1:
        return s[0]
    pos = (len(s) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return s[lo]
    frac = pos - lo
    return s[lo] * (1 - frac) + s[hi] * frac


def median_and_ci(values: Sequence[float],
                  confidence: float = 0.95) -> tuple[float, float, float]:
    """Median and a nonparametric confidence interval around it.

    Uses the binomial order-statistic interval: the CI bounds are the
    order statistics at ranks ``n/2 ± z*sqrt(n)/2``.  Returns
    ``(median, lower, upper)``; for fewer than 3 samples the CI degenerates
    to the min/max.
    """
    if not values:
        raise ValueError("empty sequence")
    s = sorted(values)
    n = len(s)
    med = percentile(s, 50)
    if n < 3:
        return med, s[0], s[-1]
    z = 1.96 if confidence >= 0.95 else 1.64
    half = z * math.sqrt(n) / 2.0
    lo_rank = max(int(math.floor(n / 2.0 - half)), 0)
    hi_rank = min(int(math.ceil(n / 2.0 + half)), n - 1)
    return med, s[lo_rank], s[hi_rank]


@dataclass(frozen=True)
class DeliveryRecord:
    """One server's A-delivery of one round."""

    round: int
    server: int
    time: float
    #: number of application requests delivered in this round
    requests: int
    #: total payload bytes delivered in this round
    nbytes: int
    #: number of distinct senders whose messages were delivered
    senders: int


@dataclass
class RoundTrace:
    """Collects delivery records and derives the paper's metrics."""

    records: list[DeliveryRecord] = field(default_factory=list)
    #: round -> time at which the round was started (first A-broadcast)
    round_start: dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def note_round_start(self, round_no: int, time: float) -> None:
        """Record the earliest A-broadcast time of a round."""
        cur = self.round_start.get(round_no)
        if cur is None or time < cur:
            self.round_start[round_no] = time

    def record_delivery(self, record: DeliveryRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------ #
    @property
    def rounds(self) -> list[int]:
        """All round numbers with at least one delivery, sorted."""
        return sorted({r.round for r in self.records})

    def deliveries_for_round(self, round_no: int) -> list[DeliveryRecord]:
        return [r for r in self.records if r.round == round_no]

    def round_completion_time(self, round_no: int) -> float:
        """Time at which the *last* server delivered the round."""
        recs = self.deliveries_for_round(round_no)
        if not recs:
            raise ValueError(f"round {round_no} has no deliveries")
        return max(r.time for r in recs)

    def round_latencies(self, round_no: int) -> list[float]:
        """Per-server agreement latency of a round (delivery − round start)."""
        start = self.round_start.get(round_no)
        if start is None:
            raise ValueError(f"round {round_no} was never started")
        return [r.time - start for r in self.deliveries_for_round(round_no)]

    def agreement_latency(self, round_no: int) -> float:
        """Median per-server agreement latency of a round."""
        lats = self.round_latencies(round_no)
        return percentile(lats, 50)

    def all_latencies(self, *, skip_rounds: int = 0) -> list[float]:
        """Per-server latencies over all rounds, optionally skipping warmup."""
        out: list[float] = []
        for rnd in self.rounds[skip_rounds:]:
            out.extend(self.round_latencies(rnd))
        return out

    # ------------------------------------------------------------------ #
    def agreement_throughput(self, *, start_time: float = 0.0,
                             end_time: Optional[float] = None,
                             skip_rounds: int = 0) -> float:
        """Bytes agreed upon per second, averaged over the trace.

        The amount agreed per round is counted once (it is the same set at
        every server); the elapsed time runs from the first considered round
        start to the last delivery.
        """
        rounds = self.rounds[skip_rounds:]
        if not rounds:
            return 0.0
        total_bytes = 0
        for rnd in rounds:
            recs = self.deliveries_for_round(rnd)
            total_bytes += max(r.nbytes for r in recs)
        t0 = max(start_time, self.round_start.get(rounds[0], start_time))
        t1 = end_time if end_time is not None else \
            max(self.round_completion_time(r) for r in rounds)
        if t1 <= t0:
            return 0.0
        return total_bytes / (t1 - t0)

    def steady_request_rate(self, *, skip_rounds: int = 1) -> float:
        """Requests agreed per second, anchored at round *completion* times.

        :meth:`request_rate` measures from the first considered round's
        start; with round pipelining a round is A-broadcast up to ``k-1``
        rounds before the frontier reaches it, which pulls round starts
        earlier and understates the steady-state rate.  Anchoring both ends
        of the window at completion times (the end of the warmup round to
        the end of the last round) measures the actual delivery cadence and
        is comparable across pipeline depths.
        """
        if skip_rounds < 1:
            raise ValueError("skip_rounds must be at least 1 (the anchor)")
        rounds = self.rounds
        if len(rounds) <= skip_rounds:
            return 0.0
        total_requests = 0
        for rnd in rounds[skip_rounds:]:
            recs = self.deliveries_for_round(rnd)
            total_requests += max(r.requests for r in recs)
        t0 = self.round_completion_time(rounds[skip_rounds - 1])
        t1 = self.round_completion_time(rounds[-1])
        if t1 <= t0:
            return 0.0
        return total_requests / (t1 - t0)

    def request_rate(self, *, skip_rounds: int = 0) -> float:
        """Requests agreed upon per second."""
        rounds = self.rounds[skip_rounds:]
        if not rounds:
            return 0.0
        total_requests = 0
        for rnd in rounds:
            recs = self.deliveries_for_round(rnd)
            total_requests += max(r.requests for r in recs)
        t0 = self.round_start.get(rounds[0], 0.0)
        t1 = max(self.round_completion_time(r) for r in rounds)
        if t1 <= t0:
            return 0.0
        return total_requests / (t1 - t0)

    def throughput_timeline(self, bin_width: float,
                            *, until: Optional[float] = None
                            ) -> list[tuple[float, float]]:
        """Requests delivered per second, binned (Figure 7's time series).

        Each round's requests are attributed to the bin of its completion
        time at the earliest delivering server (matching how a client of any
        single server would observe throughput).
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        horizon = until
        if horizon is None:
            horizon = max((r.time for r in self.records), default=0.0)
        nbins = int(math.ceil(horizon / bin_width)) + 1
        bins = [0.0] * nbins
        for rnd in self.rounds:
            recs = self.deliveries_for_round(rnd)
            t = min(r.time for r in recs)
            reqs = max(r.requests for r in recs)
            idx = min(int(t / bin_width), nbins - 1)
            bins[idx] += reqs
        return [(i * bin_width, bins[i] / bin_width) for i in range(nbins)]
