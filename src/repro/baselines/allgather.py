"""Unreliable agreement baseline (MPI_Allgather-style), §5 / Figure 10a.

The paper measures the cost of AllConcur's fault tolerance by comparing it
against *unreliable agreement*: disseminating every server's message to every
other server with ``MPI_Allgather``, with no failure detector and no
redundancy.  The average overhead of AllConcur is reported as 58 %.

Two dissemination schedules are provided, running on the same LogP network
as the AllConcur simulation:

* ``"direct"`` — every server sends its message directly to the other
  ``n - 1`` servers (what a naive allgather over sockets does);
* ``"ring"`` — the classic ring allgather: ``n - 1`` steps, in each step a
  server forwards the block it received in the previous step to its right
  neighbour (what MPI implementations use for large messages; fewer
  per-message overheads are paid for small ``n`` but the same total bytes).

Both deliver the full message set at every server; neither tolerates a single
failure — a crashed server simply causes the others to hang, which is
exactly the behaviour the paper contrasts AllConcur against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.batching import Batch
from ..sim.engine import Simulator
from ..sim.network import LogPParams, Network, TCP_PARAMS
from ..sim.trace import DeliveryRecord, RoundTrace

__all__ = ["AllgatherCluster", "AllgatherMessage"]


@dataclass(frozen=True)
class AllgatherMessage:
    """One block exchanged by the allgather: the batch of *origin*."""

    round: int
    origin: int
    payload: Batch

    @property
    def nbytes(self) -> int:
        return 16 + self.payload.nbytes  # small fixed header


class _AllgatherNode:
    """One participant of the unreliable agreement."""

    def __init__(self, pid: int, cluster: "AllgatherCluster") -> None:
        self.id = pid
        self.cluster = cluster
        self.round = 0
        self.known: dict[int, Batch] = {}
        self.delivered_rounds = 0
        self._buffered: dict[int, list[AllgatherMessage]] = {}
        cluster.network.attach(pid, self._on_message)

    # ------------------------------------------------------------------ #
    def start_round(self, payload: Batch) -> None:
        self.known[self.id] = payload
        self.cluster.trace.note_round_start(self.round, self.cluster.sim.now)
        msg = AllgatherMessage(self.round, self.id, payload)
        if self.cluster.schedule == "direct":
            targets = [p for p in self.cluster.members if p != self.id]
        else:  # ring: send own block to the right neighbour only
            targets = [self.cluster.right_of(self.id)]
        self.cluster.network.multicast(self.id, targets, msg,
                                       nbytes=msg.nbytes)
        self._check_done()

    def _on_message(self, src: int, dst: int, msg: AllgatherMessage) -> None:
        if msg.round != self.round:
            self._buffered.setdefault(msg.round, []).append(msg)
            return
        if msg.origin in self.known:
            return
        self.known[msg.origin] = msg.payload
        if self.cluster.schedule == "ring":
            # forward the block one step further around the ring
            nxt = self.cluster.right_of(self.id)
            if nxt != msg.origin:
                self.cluster.network.send(self.id, nxt, msg, nbytes=msg.nbytes)
        self._check_done()

    def _check_done(self) -> None:
        if len(self.known) < len(self.cluster.members):
            return
        ordered = sorted(self.known.items())
        self.cluster.trace.record_delivery(DeliveryRecord(
            round=self.round,
            server=self.id,
            time=self.cluster.sim.now,
            requests=sum(b.count for _o, b in ordered),
            nbytes=sum(b.nbytes for _o, b in ordered),
            senders=len(ordered),
        ))
        self.delivered_rounds += 1
        self.round += 1
        self.known = {}
        if self.cluster.auto_advance:
            self.start_round(self.cluster.next_payload(self.id))
        # replay buffered blocks that arrived early
        for msg in self._buffered.pop(self.round, []):
            self._on_message(msg.origin, self.id, msg)


class AllgatherCluster:
    """A simulated deployment of the unreliable-agreement baseline."""

    def __init__(self, n: int, *, params: LogPParams = TCP_PARAMS,
                 schedule: str = "direct", auto_advance: bool = True,
                 payload_fn=None, seed: int = 1) -> None:
        if n < 2:
            raise ValueError("need at least two servers")
        if schedule not in ("direct", "ring"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.n = n
        self.schedule = schedule
        self.auto_advance = auto_advance
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, params)
        self.trace = RoundTrace()
        self._payload_fn = payload_fn or (lambda pid: Batch.empty())
        self.members = tuple(range(n))
        self.nodes = {pid: _AllgatherNode(pid, self) for pid in self.members}

    # ------------------------------------------------------------------ #
    def right_of(self, pid: int) -> int:
        return (pid + 1) % self.n

    def next_payload(self, pid: int) -> Batch:
        return self._payload_fn(pid)

    def start_all(self) -> None:
        for pid in self.members:
            self.nodes[pid].start_round(self._payload_fn(pid))

    def run_until_round(self, round_no: int, *,
                        max_events: int = 50_000_000) -> float:
        def done() -> bool:
            return all(node.delivered_rounds > round_no
                       for node in self.nodes.values())

        return self.sim.run(max_events=max_events, stop_when=done)

    def min_delivered_rounds(self) -> int:
        return min(node.delivered_rounds for node in self.nodes.values())
