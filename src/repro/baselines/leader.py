"""Leader-based atomic broadcast baseline (Figure 1a, §4.5, Figure 10c).

The paper compares AllConcur against the standard leader-based deployment:
``n`` servers send their updates to the leader of a small replication group
(Libpaxos with a group of five in the evaluation); the leader (1) collects
the updates, (2) replicates them within the group for fault tolerance
(a Paxos accept/ack exchange with a majority of acceptors), and (3)
disseminates every update to all ``n`` servers.

The baseline below implements exactly that deployment on the same simulated
LogP network used for AllConcur, so the comparison isolates the protocol
structure (central coordinator, O(n²) leader work, n leader connections)
from implementation details.

Two calibration knobs model the cost of running each submitted value through
the proposer pipeline of a real Paxos implementation (Libpaxos3 is
single-threaded and copies every value through libevent buffers):
``value_overhead`` (fixed per-value CPU cost, default 40 µs) and
``value_bandwidth`` (proposer pipeline bandwidth, default 60 MB/s — the
ceiling visible in Figure 10c, where Libpaxos peaks below 0.5 Gb/s
regardless of n).  Setting both to zero yields an *idealised* leader whose
only penalty is the O(n²) structural work; the §4.5 comparison benchmark
reports both settings.

Process ids: servers are ``0 .. n-1``; the replication group occupies
``n .. n+group_size-1`` with the leader at id ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.batching import Batch
from ..sim.engine import Simulator
from ..sim.network import LogPParams, Network, TCP_PARAMS
from ..sim.trace import DeliveryRecord, RoundTrace

__all__ = ["LeaderBasedCluster", "ClientUpdate", "AcceptRequest", "AcceptAck",
           "Decision"]


@dataclass(frozen=True)
class ClientUpdate:
    """A server's update sent to the leader."""

    round: int
    origin: int
    payload: Batch

    @property
    def nbytes(self) -> int:
        return 16 + self.payload.nbytes


@dataclass(frozen=True)
class AcceptRequest:
    """Leader -> acceptor: replicate the round's batch of updates."""

    round: int
    nbytes_total: int

    @property
    def nbytes(self) -> int:
        return 16 + self.nbytes_total


@dataclass(frozen=True)
class AcceptAck:
    """Acceptor -> leader acknowledgement."""

    round: int
    acceptor: int

    @property
    def nbytes(self) -> int:
        return 16


@dataclass(frozen=True)
class Decision:
    """Leader -> server: the ordered updates of the round."""

    round: int
    updates: tuple[tuple[int, Batch], ...]

    @property
    def nbytes(self) -> int:
        return 16 + sum(b.nbytes for _o, b in self.updates)


class LeaderBasedCluster:
    """A simulated leader-based (Paxos-group) agreement deployment."""

    #: default per-value proposer CPU overhead (calibrated to Libpaxos3)
    DEFAULT_VALUE_OVERHEAD = 40e-6
    #: default proposer pipeline bandwidth in bytes/s (calibrated to the
    #: sub-0.5 Gb/s ceiling of Figure 10c)
    DEFAULT_VALUE_BANDWIDTH = 60e6

    def __init__(self, n: int, *, group_size: int = 5,
                 params: LogPParams = TCP_PARAMS,
                 auto_advance: bool = True,
                 payload_fn: Optional[Callable[[int], Batch]] = None,
                 value_overhead: float = DEFAULT_VALUE_OVERHEAD,
                 value_bandwidth: float = DEFAULT_VALUE_BANDWIDTH,
                 seed: int = 1) -> None:
        if n < 2:
            raise ValueError("need at least two servers")
        if group_size < 1:
            raise ValueError("group size must be at least 1")
        if value_overhead < 0 or value_bandwidth < 0:
            raise ValueError("calibration knobs must be non-negative")
        self.n = n
        self.group_size = group_size
        self.value_overhead = value_overhead
        self.value_bandwidth = value_bandwidth
        self.auto_advance = auto_advance
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, params)
        self.trace = RoundTrace()
        self._payload_fn = payload_fn or (lambda pid: Batch.empty())

        self.servers = tuple(range(n))
        self.leader = n
        self.acceptors = tuple(range(n + 1, n + group_size))

        #: per-server current round and delivery count
        self.server_round = {pid: 0 for pid in self.servers}
        self.delivered_rounds = {pid: 0 for pid in self.servers}

        # leader state
        self._collected: dict[int, dict[int, Batch]] = {}
        self._acks: dict[int, set[int]] = {}
        self._replicating: set[int] = set()
        self._decided: set[int] = set()

        for pid in self.servers:
            self.network.attach(pid, self._server_on_message)
        self.network.attach(self.leader, self._leader_on_message)
        for pid in self.acceptors:
            self.network.attach(pid, self._acceptor_on_message)

    # ------------------------------------------------------------------ #
    @property
    def majority(self) -> int:
        """Majority of the replication group (counting the leader)."""
        return self.group_size // 2 + 1

    def min_delivered_rounds(self) -> int:
        return min(self.delivered_rounds.values())

    # ------------------------------------------------------------------ #
    # Server (client) side
    # ------------------------------------------------------------------ #
    def start_all(self) -> None:
        """Every server sends its update for its current round to the leader."""
        for pid in self.servers:
            self._server_send_update(pid)

    def _server_send_update(self, pid: int) -> None:
        rnd = self.server_round[pid]
        payload = self._payload_fn(pid)
        self.trace.note_round_start(rnd, self.sim.now)
        msg = ClientUpdate(round=rnd, origin=pid, payload=payload)
        self.network.send(pid, self.leader, msg, nbytes=msg.nbytes)

    def _server_on_message(self, src: int, dst: int, msg) -> None:
        if not isinstance(msg, Decision):
            return
        rnd = msg.round
        if rnd != self.server_round[dst]:
            return
        self.trace.record_delivery(DeliveryRecord(
            round=rnd,
            server=dst,
            time=self.sim.now,
            requests=sum(b.count for _o, b in msg.updates),
            nbytes=sum(b.nbytes for _o, b in msg.updates),
            senders=len(msg.updates),
        ))
        self.delivered_rounds[dst] += 1
        self.server_round[dst] = rnd + 1
        if self.auto_advance:
            self._server_send_update(dst)

    # ------------------------------------------------------------------ #
    # Leader side
    # ------------------------------------------------------------------ #
    def _leader_on_message(self, src: int, dst: int, msg) -> None:
        if isinstance(msg, ClientUpdate):
            coll = self._collected.setdefault(msg.round, {})
            coll[msg.origin] = msg.payload
            self._maybe_replicate(msg.round)
        elif isinstance(msg, AcceptAck):
            acks = self._acks.setdefault(msg.round, set())
            acks.add(msg.acceptor)
            self._maybe_decide(msg.round)

    def _pipeline_delay(self, coll: dict[int, Batch]) -> float:
        """Time the proposer needs to push the round's n values through its
        pipeline (per-value overhead + copy bandwidth)."""
        per_value = sum(self.value_overhead + (b.nbytes / self.value_bandwidth
                                               if self.value_bandwidth else 0.0)
                        for b in coll.values())
        return per_value

    def _maybe_replicate(self, rnd: int) -> None:
        coll = self._collected.get(rnd, {})
        if len(coll) < self.n or rnd in self._replicating:
            return
        self._replicating.add(rnd)
        delay = self._pipeline_delay(coll)
        if delay > 0:
            self.sim.schedule(delay, self._replicate, rnd)
        else:
            self._replicate(rnd)

    def _replicate(self, rnd: int) -> None:
        coll = self._collected.get(rnd, {})
        total = sum(b.nbytes for b in coll.values())
        if not self.acceptors or self.majority <= 1:
            self._maybe_decide(rnd, force=True)
            return
        req = AcceptRequest(round=rnd, nbytes_total=total)
        self.network.multicast(self.leader, self.acceptors, req,
                               nbytes=req.nbytes)

    def _maybe_decide(self, rnd: int, *, force: bool = False) -> None:
        if rnd in self._decided:
            return
        acks = self._acks.get(rnd, set())
        # the leader itself counts towards the majority
        if not force and len(acks) + 1 < self.majority:
            return
        if rnd not in self._replicating:
            return
        self._decided.add(rnd)
        coll = self._collected.pop(rnd)
        decision = Decision(round=rnd, updates=tuple(sorted(coll.items())))
        # O(n) sends of an O(n)-sized decision: the leader's O(n²) work.
        self.network.multicast(self.leader, self.servers, decision,
                               nbytes=decision.nbytes)

    # ------------------------------------------------------------------ #
    # Acceptor side
    # ------------------------------------------------------------------ #
    def _acceptor_on_message(self, src: int, dst: int, msg) -> None:
        if isinstance(msg, AcceptRequest):
            ack = AcceptAck(round=msg.round, acceptor=dst)
            self.network.send(dst, self.leader, ack, nbytes=ack.nbytes)

    # ------------------------------------------------------------------ #
    def run_until_round(self, round_no: int, *,
                        max_events: int = 50_000_000) -> float:
        def done() -> bool:
            return all(self.delivered_rounds[p] > round_no
                       for p in self.servers)

        return self.sim.run(max_events=max_events, stop_when=done)
