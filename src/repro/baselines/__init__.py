"""Baselines the paper compares AllConcur against (§5).

* :class:`LeaderBasedCluster` — the leader-based (Libpaxos-style) deployment
  of Figure 1a: n servers, a replication group of five, O(n²) leader work.
* :class:`AllgatherCluster` — unreliable agreement (MPI_Allgather-style):
  all-to-all dissemination with no fault tolerance.
"""

from .allgather import AllgatherCluster, AllgatherMessage
from .leader import (
    AcceptAck,
    AcceptRequest,
    ClientUpdate,
    Decision,
    LeaderBasedCluster,
)

__all__ = [
    "AllgatherCluster",
    "AllgatherMessage",
    "LeaderBasedCluster",
    "ClientUpdate",
    "AcceptRequest",
    "AcceptAck",
    "Decision",
]
