"""Wire format of the asyncio/TCP runtime.

The original AllConcur is a C program speaking raw TCP (or InfiniBand
Verbs); this runtime speaks length-prefixed JSON over TCP sockets on
localhost, which is more than enough to demonstrate the deployment path of
the very same protocol core that the simulator exercises (the Python
runtime obviously cannot reach the paper's absolute throughput — see
DESIGN.md, substitutions).

Frame layout: ``4-byte big-endian length`` followed by a UTF-8 JSON object
with a ``"type"`` discriminator.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from ..core.batching import Batch, Request
from ..core.messages import Backward, Broadcast, FailureNotice, Forward, Message

__all__ = ["encode_message", "decode_message", "encode_frame", "FrameDecoder",
           "canonical_payload", "MAX_FRAME_BYTES",
           "batch_to_json", "batch_from_json",
           "request_to_json", "request_from_json"]

#: Upper bound on a frame, to protect against corrupted length prefixes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


def _is_canonical(data: Any) -> bool:
    """Whether *data* already equals its JSON image.

    Exact type checks on purpose: a ``list`` of canonical values survives a
    JSON round trip identically, but a ``tuple`` becomes a list, an
    ``IntEnum`` becomes a plain int and a non-``str`` dict key becomes a
    string — those must keep taking the slow normalising path."""
    if data is None or data is True or data is False:
        return True
    t = type(data)
    if t is str or t is int or t is float:
        return True
    if t is list:
        return all(_is_canonical(v) for v in data)
    if t is dict:
        for k, v in data.items():
            if type(k) is not str or not _is_canonical(v):
                return False
        return True
    return False


def canonical_payload(data: Any) -> Any:
    """Normalise application data to its JSON image (tuples become lists,
    dict keys become strings, …).

    The runtime applies this at the submit boundary so the origin server's
    local copy of a request compares equal to every peer's decoded copy —
    otherwise a submitted tuple would A-deliver as a tuple at its origin
    but as a list everywhere else, and cross-replica comparisons would
    report divergence where there is none.  Raises :class:`TypeError` for
    data the wire format cannot carry (better at submit time than
    mid-broadcast).

    Payloads that are already canonical (the common case: client-batch
    envelopes are built canonical by construction) are returned as-is
    after a cheap recursive check — this runs once per submit on both
    backends, and the old unconditional ``json.loads(json.dumps(data))``
    double-serialisation dominated the submit hot path."""
    if data is None or isinstance(data, (str, int, float, bool)):
        return data
    if _is_canonical(data):
        return data
    return json.loads(json.dumps(data))


def request_to_json(r: Request) -> dict[str, Any]:
    """One request's JSON wire image (also the multi-process runtime's
    control-channel representation)."""
    return {
        "origin": r.origin,
        "seq": r.seq,
        "nbytes": r.nbytes,
        "submit_time": r.submit_time,
        "data": r.data,
        **({"client": r.client} if r.client is not None else {}),
    }


def request_from_json(obj: dict[str, Any]) -> Request:
    """Inverse of :func:`request_to_json`."""
    return Request(origin=obj["origin"], seq=obj["seq"], nbytes=obj["nbytes"],
                   submit_time=obj.get("submit_time", 0.0),
                   data=obj.get("data"), client=obj.get("client"))


def batch_to_json(batch: Batch) -> dict[str, Any]:
    return {
        "count": batch.count,
        "nbytes": batch.nbytes,
        "requests": [request_to_json(r) for r in batch.requests],
    }


def batch_from_json(obj: dict[str, Any]) -> Batch:
    requests = tuple(request_from_json(r) for r in obj.get("requests", ()))
    if requests:
        return Batch.of(requests)
    return Batch(count=obj.get("count", 0), nbytes=obj.get("nbytes", 0))


def encode_message(sender: int, message: Message) -> dict[str, Any]:
    """Convert a protocol message into a JSON-serialisable dict."""
    if isinstance(message, Broadcast):
        return {"type": "bcast", "from": sender, "round": message.round,
                "origin": message.origin,
                "payload": batch_to_json(message.payload)}
    if isinstance(message, FailureNotice):
        return {"type": "fail", "from": sender, "round": message.round,
                "failed": message.failed, "reporter": message.reporter}
    if isinstance(message, Forward):
        return {"type": "fwd", "from": sender, "round": message.round,
                "origin": message.origin}
    if isinstance(message, Backward):
        return {"type": "bwd", "from": sender, "round": message.round,
                "origin": message.origin}
    raise TypeError(f"cannot encode {type(message)!r}")


def decode_message(obj: dict[str, Any]) -> tuple[int, Message]:
    """Inverse of :func:`encode_message`: returns ``(sender, message)``."""
    kind = obj.get("type")
    sender = int(obj["from"])
    rnd = int(obj["round"])
    if kind == "bcast":
        return sender, Broadcast(round=rnd, origin=int(obj["origin"]),
                                 payload=batch_from_json(obj["payload"]))
    if kind == "fail":
        return sender, FailureNotice(round=rnd, failed=int(obj["failed"]),
                                     reporter=int(obj["reporter"]))
    if kind == "fwd":
        return sender, Forward(round=rnd, origin=int(obj["origin"]))
    if kind == "bwd":
        return sender, Backward(round=rnd, origin=int(obj["origin"]))
    raise ValueError(f"unknown message type {kind!r}")


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Length-prefix and encode one JSON object."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({len(body)} bytes)")
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed JSON frames.

    ``max_frame_bytes`` bounds the length prefix: a corrupted (or hostile)
    header that announces an oversized frame raises :class:`ValueError`
    *before* any body bytes are accumulated, instead of buffering up to
    4 GiB."""

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes

    def feed(self, data: bytes) -> list[Any]:
        """Feed raw bytes; return every complete frame decoded so far.

        Items are whatever JSON value the frame body held — the runtime
        only ever sends objects, but a decoder cannot assume that (the
        codec layer above rejects non-object frames explicitly)."""
        self._buffer.extend(data)
        frames: list[Any] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > self.max_frame_bytes:
                raise ValueError(f"frame length {length} exceeds limit")
            if len(self._buffer) < _LEN.size + length:
                break
            body = bytes(self._buffer[_LEN.size:_LEN.size + length])
            del self._buffer[:_LEN.size + length]
            frames.append(json.loads(body.decode("utf-8")))
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
