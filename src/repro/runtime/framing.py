"""Wire format of the asyncio/TCP runtime.

The original AllConcur is a C program speaking raw TCP (or InfiniBand
Verbs); this runtime speaks length-prefixed JSON over TCP sockets on
localhost, which is more than enough to demonstrate the deployment path of
the very same protocol core that the simulator exercises (the Python
runtime obviously cannot reach the paper's absolute throughput — see
DESIGN.md, substitutions).

Frame layout: ``4-byte big-endian length`` followed by a UTF-8 JSON object
with a ``"type"`` discriminator.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from ..core.batching import Batch, Request
from ..core.messages import Backward, Broadcast, FailureNotice, Forward, Message

__all__ = ["encode_message", "decode_message", "encode_frame", "FrameDecoder",
           "canonical_payload", "MAX_FRAME_BYTES"]

#: Upper bound on a frame, to protect against corrupted length prefixes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


def canonical_payload(data: Any) -> Any:
    """Normalise application data to its JSON image (tuples become lists,
    dict keys become strings, …).

    The runtime applies this at the submit boundary so the origin server's
    local copy of a request compares equal to every peer's decoded copy —
    otherwise a submitted tuple would A-deliver as a tuple at its origin
    but as a list everywhere else, and cross-replica comparisons would
    report divergence where there is none.  Raises :class:`TypeError` for
    data the wire format cannot carry (better at submit time than
    mid-broadcast)."""
    if data is None or isinstance(data, (str, int, float, bool)):
        return data
    return json.loads(json.dumps(data))


def _batch_to_json(batch: Batch) -> dict[str, Any]:
    return {
        "count": batch.count,
        "nbytes": batch.nbytes,
        "requests": [
            {
                "origin": r.origin,
                "seq": r.seq,
                "nbytes": r.nbytes,
                "submit_time": r.submit_time,
                "data": r.data,
                **({"client": r.client} if r.client is not None else {}),
            }
            for r in batch.requests
        ],
    }


def _batch_from_json(obj: dict[str, Any]) -> Batch:
    requests = tuple(
        Request(origin=r["origin"], seq=r["seq"], nbytes=r["nbytes"],
                submit_time=r.get("submit_time", 0.0), data=r.get("data"),
                client=r.get("client"))
        for r in obj.get("requests", ()))
    if requests:
        return Batch.of(requests)
    return Batch(count=obj.get("count", 0), nbytes=obj.get("nbytes", 0))


def encode_message(sender: int, message: Message) -> dict[str, Any]:
    """Convert a protocol message into a JSON-serialisable dict."""
    if isinstance(message, Broadcast):
        return {"type": "bcast", "from": sender, "round": message.round,
                "origin": message.origin,
                "payload": _batch_to_json(message.payload)}
    if isinstance(message, FailureNotice):
        return {"type": "fail", "from": sender, "round": message.round,
                "failed": message.failed, "reporter": message.reporter}
    if isinstance(message, Forward):
        return {"type": "fwd", "from": sender, "round": message.round,
                "origin": message.origin}
    if isinstance(message, Backward):
        return {"type": "bwd", "from": sender, "round": message.round,
                "origin": message.origin}
    raise TypeError(f"cannot encode {type(message)!r}")


def decode_message(obj: dict[str, Any]) -> tuple[int, Message]:
    """Inverse of :func:`encode_message`: returns ``(sender, message)``."""
    kind = obj.get("type")
    sender = int(obj["from"])
    rnd = int(obj["round"])
    if kind == "bcast":
        return sender, Broadcast(round=rnd, origin=int(obj["origin"]),
                                 payload=_batch_from_json(obj["payload"]))
    if kind == "fail":
        return sender, FailureNotice(round=rnd, failed=int(obj["failed"]),
                                     reporter=int(obj["reporter"]))
    if kind == "fwd":
        return sender, Forward(round=rnd, origin=int(obj["origin"]))
    if kind == "bwd":
        return sender, Backward(round=rnd, origin=int(obj["origin"]))
    raise ValueError(f"unknown message type {kind!r}")


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Length-prefix and encode one JSON object."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({len(body)} bytes)")
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed JSON frames."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Feed raw bytes; return every complete frame decoded so far."""
        self._buffer.extend(data)
        frames: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise ValueError(f"frame length {length} exceeds limit")
            if len(self._buffer) < _LEN.size + length:
                break
            body = bytes(self._buffer[_LEN.size:_LEN.size + length])
            del self._buffer[:_LEN.size + length]
            frames.append(json.loads(body.decode("utf-8")))
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
