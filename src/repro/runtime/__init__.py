"""Real asyncio/TCP deployment of the AllConcur protocol core.

Demonstrates that the same sans-IO core used by the simulator runs over real
sockets: length-prefixed frames through a pluggable wire codec (binary by
default, JSON as the differential oracle — :mod:`repro.runtime.wire`), one
TCP connection per overlay edge, heartbeat failure detection.  Clusters come
in two shapes: :class:`LocalCluster` hosts every node in the current event
loop, :class:`ProcessCluster` gives each node its own OS process (and event
loop) behind the same async driving surface.
"""

from .cluster import LocalCluster
from .framing import (
    FrameDecoder,
    decode_message,
    encode_frame,
    encode_message,
)
from .node import DeliveredRound, NodeAddress, RuntimeNode
from .proc import ProcessCluster
from .wire import BinaryCodec, JsonCodec, WireCodec, get_codec

__all__ = [
    "LocalCluster",
    "ProcessCluster",
    "RuntimeNode",
    "NodeAddress",
    "DeliveredRound",
    "FrameDecoder",
    "encode_frame",
    "encode_message",
    "decode_message",
    "WireCodec",
    "JsonCodec",
    "BinaryCodec",
    "get_codec",
]
