"""Real asyncio/TCP deployment of the AllConcur protocol core.

Demonstrates that the same sans-IO core used by the simulator runs over real
sockets: length-prefixed JSON framing, one TCP connection per overlay edge,
heartbeat failure detection.
"""

from .cluster import LocalCluster
from .framing import (
    FrameDecoder,
    decode_message,
    encode_frame,
    encode_message,
)
from .node import DeliveredRound, NodeAddress, RuntimeNode

__all__ = [
    "LocalCluster",
    "RuntimeNode",
    "NodeAddress",
    "DeliveredRound",
    "FrameDecoder",
    "encode_frame",
    "encode_message",
    "decode_message",
]
