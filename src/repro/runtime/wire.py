"""Pluggable wire codecs for the TCP runtime — the binary wire plane.

The original runtime spoke length-prefixed JSON (:mod:`.framing`), which is
simple and debuggable but dominated the hot path of a real deployment: every
``<BCAST>`` carrying a batch of requests was dict-ified, string-encoded and
re-parsed on every overlay hop.  This module makes the wire image pluggable
and adds a binary codec that is several times faster in both directions.

Two codecs are registered:

``"binary"`` (default)
    Frame layout::

        4-byte big-endian body length | 1-byte wire version | envelope

    The envelope is a flat tuple — ``(kind, sender, round, ...)`` with
    batches as tuples of ``(origin, seq, nbytes, submit_time, data,
    client)`` request rows — serialised with :mod:`marshal`, CPython's
    C-speed codec for exactly the value shapes the runtime carries
    (payload ``data`` is always a canonical JSON value, enforced at the
    submit boundary by :func:`.framing.canonical_payload`).  The envelope
    idiom follows msgpack-style consensus transports (flat tagged tuples,
    one length-prefixed frame per message); msgpack itself is not a
    dependency of this repository, and marshal is both faster and already
    in the standard library.  Both ends of every connection are CPython
    processes on one host (the deployment model of this runtime), so
    marshal's same-interpreter format assumption holds; the version byte
    exists to fail loudly if that ever changes.

``"json"``
    The original length-prefixed JSON image, byte-identical to what the
    runtime spoke before the binary plane existed.  Kept as the
    differential oracle: the cross-codec equivalence tests run the same
    cluster scenario under both codecs and assert identical delivered
    orders and application end states.

Decoded items are either ``(sender, Message)`` tuples (protocol traffic)
or plain dicts (control frames — heartbeats).  Decoders are incremental
and hardened: truncated frames wait for more bytes, an oversized length
prefix raises before any body is buffered, and a garbage version byte or
undecodable envelope raises :class:`ValueError` instead of crashing the
connection handler with an arbitrary exception.
"""

from __future__ import annotations

import marshal
import struct
from typing import Any, Union, cast

from ..core.batching import Batch, Request
from ..core.messages import Backward, Broadcast, FailureNotice, Forward, Message
from .framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_message,
    encode_frame,
    encode_message,
)

__all__ = ["WIRE_VERSION", "WireCodec", "JsonCodec", "BinaryCodec",
           "get_codec", "CODECS", "DecodedFrame"]

#: Version byte leading every binary frame body.  Bumped whenever the
#: envelope layout changes; a decoder that sees any other value raises.
WIRE_VERSION = 1

_LEN = struct.Struct(">I")
_VERSION_BYTE = bytes([WIRE_VERSION])

# Envelope kind tags (first element of every binary envelope tuple).
_K_BCAST = 0
_K_FAIL = 1
_K_FWD = 2
_K_BWD = 3
_K_CONTROL = 4

#: JSON ``"type"`` discriminators that are protocol messages; anything
#: else (``"heartbeat"``) is a control frame and passes through as a dict.
_JSON_PROTOCOL_KINDS = frozenset({"bcast", "fail", "fwd", "bwd"})

#: One decoded frame: protocol traffic or a control dict.
DecodedFrame = Union[tuple[int, Message], dict[str, Any]]


class WireCodec:
    """Interface every wire codec implements.

    A codec owns the full frame image (length prefix included) for both
    protocol messages and control frames, plus an incremental per-connection
    decoder.  Codecs are stateless singletons; all per-connection state
    lives in the decoder.
    """

    name: str = "?"

    def encode_message(self, sender: int, message: Message) -> bytes:
        """One protocol message as a complete frame."""
        raise NotImplementedError

    def encode_control(self, obj: dict[str, Any]) -> bytes:
        """One control frame (e.g. a heartbeat) as a complete frame."""
        raise NotImplementedError

    def decoder(self, *,
                max_frame_bytes: int = MAX_FRAME_BYTES) -> "Any":
        """A fresh incremental decoder for one connection."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# --------------------------------------------------------------------- #
# JSON codec (the differential oracle — the pre-binary wire image)
# --------------------------------------------------------------------- #

class _JsonMessageDecoder:
    """Incremental decoder yielding ``(sender, Message)`` / control dicts."""

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._frames = FrameDecoder(max_frame_bytes=max_frame_bytes)

    def feed(self, data: bytes) -> list[DecodedFrame]:
        items: list[DecodedFrame] = []
        for obj in self._frames.feed(data):
            if isinstance(obj, dict) and obj.get("type") in _JSON_PROTOCOL_KINDS:
                items.append(decode_message(obj))
            elif isinstance(obj, dict):
                items.append(obj)
            else:
                raise ValueError(f"frame is not an object: {obj!r}")
        return items

    @property
    def pending_bytes(self) -> int:
        return self._frames.pending_bytes


class JsonCodec(WireCodec):
    """Length-prefixed JSON frames — byte-identical to the original wire."""

    name = "json"

    def encode_message(self, sender: int, message: Message) -> bytes:
        return encode_frame(encode_message(sender, message))

    def encode_control(self, obj: dict[str, Any]) -> bytes:
        return encode_frame(obj)

    def decoder(self, *, max_frame_bytes: int = MAX_FRAME_BYTES
                ) -> _JsonMessageDecoder:
        return _JsonMessageDecoder(max_frame_bytes=max_frame_bytes)


# --------------------------------------------------------------------- #
# Binary codec
# --------------------------------------------------------------------- #

class _BinaryMessageDecoder:
    """Incremental decoder for version-tagged marshal envelopes."""

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes

    def feed(self, data: bytes) -> list[DecodedFrame]:
        buf = self._buffer
        buf.extend(data)
        items: list[DecodedFrame] = []
        header = _LEN.size
        while len(buf) >= header:
            (length,) = _LEN.unpack_from(buf, 0)
            if length > self.max_frame_bytes:
                raise ValueError(f"frame length {length} exceeds limit")
            if len(buf) < header + length:
                break
            body = bytes(buf[header:header + length])
            del buf[:header + length]
            items.append(_decode_body(body))
        return items

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def _decode_body(body: bytes) -> DecodedFrame:
    if not body:
        raise ValueError("empty frame body")
    if body[0] != WIRE_VERSION:
        raise ValueError(f"unsupported wire version {body[0]} "
                         f"(expected {WIRE_VERSION})")
    try:
        envelope = marshal.loads(body[1:])
    except (ValueError, EOFError, TypeError) as exc:
        raise ValueError(f"undecodable binary envelope: {exc}") from None
    try:
        return _decode_envelope(envelope)
    except ValueError:
        raise
    except (TypeError, IndexError, KeyError) as exc:
        raise ValueError(f"malformed binary envelope: {exc}") from None


def _decode_envelope(env: Any) -> DecodedFrame:
    kind = env[0]
    if kind == _K_BCAST:
        _k, sender, rnd, origin, count, nbytes, rows = env
        new = object.__new__
        requests: tuple[Request, ...]
        if rows:
            decoded: list[Request] = []
            append = decoded.append
            for o, s, nb, st, d, c in rows:
                request = new(Request)
                request.__dict__.update(
                    origin=o, seq=s, nbytes=nb, submit_time=st,
                    data=d, client=c)
                append(request)
            requests = tuple(decoded)
        else:
            requests = ()
        batch = new(Batch)
        batch.__dict__.update(count=count, nbytes=nbytes, requests=requests)
        return sender, Broadcast(round=rnd, origin=origin, payload=batch)
    if kind == _K_FAIL:
        _k, sender, rnd, failed, reporter = env
        return sender, FailureNotice(round=rnd, failed=failed,
                                     reporter=reporter)
    if kind == _K_FWD:
        _k, sender, rnd, origin = env
        return sender, Forward(round=rnd, origin=origin)
    if kind == _K_BWD:
        _k, sender, rnd, origin = env
        return sender, Backward(round=rnd, origin=origin)
    if kind == _K_CONTROL:
        obj = env[1]
        if not isinstance(obj, dict):
            raise ValueError(f"control frame is not an object: {obj!r}")
        return obj
    raise ValueError(f"unknown envelope kind {kind!r}")


def _frame(envelope: tuple[Any, ...]) -> bytes:
    body = _VERSION_BYTE + marshal.dumps(envelope)
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({len(body)} bytes)")
    return _LEN.pack(len(body)) + body


class BinaryCodec(WireCodec):
    """Length-prefixed, version-tagged marshal envelopes (see module doc).

    Several times faster than :class:`JsonCodec` in both directions: the
    encoder packs flat tuples straight from the message objects (no
    intermediate dict tree, no number-to-string conversion) and the
    decoder rebuilds :class:`~repro.core.batching.Request` rows through a
    fast-construction path that bypasses the frozen-dataclass ``__init__``
    (the wire already carries the batch's ``count``/``nbytes``, so the
    ``__post_init__`` re-aggregation is skipped too).
    """

    name = "binary"

    def encode_message(self, sender: int, message: Message) -> bytes:
        # exact-type dispatch through one type() lookup; the casts mirror
        # what each branch established (mypy cannot narrow through `t`)
        t = type(message)
        if t is Broadcast:
            bcast = cast(Broadcast, message)
            batch = bcast.payload
            rows = tuple(
                (r.origin, r.seq, r.nbytes, r.submit_time, r.data, r.client)
                for r in batch.requests)
            return _frame((_K_BCAST, sender, bcast.round, bcast.origin,
                           batch.count, batch.nbytes, rows))
        if t is FailureNotice:
            fail = cast(FailureNotice, message)
            return _frame((_K_FAIL, sender, fail.round, fail.failed,
                           fail.reporter))
        if t is Forward:
            fwd = cast(Forward, message)
            return _frame((_K_FWD, sender, fwd.round, fwd.origin))
        if t is Backward:
            bwd = cast(Backward, message)
            return _frame((_K_BWD, sender, bwd.round, bwd.origin))
        raise TypeError(f"cannot encode {type(message)!r}")

    def encode_control(self, obj: dict[str, Any]) -> bytes:
        return _frame((_K_CONTROL, obj))

    def decoder(self, *, max_frame_bytes: int = MAX_FRAME_BYTES
                ) -> _BinaryMessageDecoder:
        return _BinaryMessageDecoder(max_frame_bytes=max_frame_bytes)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

#: Stateless codec singletons, keyed by name.
CODECS: dict[str, WireCodec] = {
    JsonCodec.name: JsonCodec(),
    BinaryCodec.name: BinaryCodec(),
}


def get_codec(codec: Union[str, WireCodec]) -> WireCodec:
    """Resolve a codec name (or pass a codec instance through)."""
    if isinstance(codec, WireCodec):
        return codec
    try:
        return CODECS[codec]
    except KeyError:
        raise ValueError(f"unknown wire codec {codec!r} "
                         f"(available: {sorted(CODECS)})") from None
