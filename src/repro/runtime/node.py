"""asyncio/TCP deployment of the AllConcur protocol core.

Each :class:`RuntimeNode` runs one :class:`~repro.core.server.AllConcurServer`
and talks to its overlay neighbours over TCP: it listens on its own port,
dials every successor, and translates protocol effects into frames through a
pluggable wire codec (:mod:`repro.runtime.wire` — binary by default, JSON as
the differential oracle).  A lightweight heartbeat task implements the
failure detector of §3.2 (period ``Δhb``, timeout ``Δto``): every node
heartbeats its successors and suspects a predecessor after ``Δto`` of
silence.

The runtime exists to demonstrate that the same sans-IO core that the
simulator exercises deploys unchanged over real sockets; it is not a
performance vehicle (see DESIGN.md).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.batching import Batch, Request
from ..core.config import AllConcurConfig
from ..core.interfaces import Deliver, Effect, RoundAdvance, Send
from ..core.messages import Backward, Message
from ..core.server import AllConcurServer
from .framing import canonical_payload
from .wire import DecodedFrame, WireCodec, get_codec

__all__ = ["RuntimeNode", "NodeAddress", "DeliveredRound"]


@dataclass(frozen=True)
class NodeAddress:
    """TCP endpoint of one AllConcur server.

    ``port == 0`` requests an ephemeral port: the node binds to port 0 in
    :meth:`RuntimeNode.start_listening` and publishes the kernel-assigned
    port back into the shared address map before anyone dials it.  This
    replaces the old probe-then-bind port scan, which was TOCTOU-racy (a
    port verified free could be taken before the listener bound it — a
    recurring flaky-CI source).
    """

    server_id: int
    host: str
    port: int


@dataclass(frozen=True)
class DeliveredRound:
    """One A-delivered round as observed by a runtime node."""

    round: int
    messages: tuple[tuple[int, Batch], ...]
    removed: tuple[int, ...]
    wall_time: float


class RuntimeNode:
    """One AllConcur server bound to asyncio TCP transports."""

    def __init__(self, server_id: int, config: AllConcurConfig,
                 addresses: dict[int, NodeAddress], *,
                 heartbeat_period: float = 0.05,
                 heartbeat_timeout: float = 0.5,
                 enable_failure_detector: bool = True,
                 codec: "str | WireCodec" = "binary") -> None:
        if server_id not in addresses:
            raise ValueError(f"no address for server {server_id}")
        self.id = server_id
        self.config = config
        self.addresses = addresses
        #: wire codec shared by every connection of this node ("binary"
        #: default; "json" is the differential oracle — see runtime.wire)
        self.codec = get_codec(codec)
        self.server = AllConcurServer(server_id, config)
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.enable_failure_detector = enable_failure_detector

        self.delivered: list[DeliveredRound] = []
        self.deliver_callbacks: list[Callable[[DeliveredRound], None]] = []

        self._tcp_server: Optional[asyncio.AbstractServer] = None
        #: live inbound connection handlers (cancelled on stop so no
        #: coroutine outlives the event loop)
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._writers: dict[int, asyncio.StreamWriter] = {}
        #: per-peer outbound frame queues, drained by one sender task
        #: each.  Effects are applied *synchronously* under the protocol
        #: lock and only enqueue frames; all socket awaits (dial retry,
        #: drain) happen in the sender tasks, outside the lock — the
        #: PR 6 stall class is structurally impossible, and per-peer
        #: FIFO order is preserved by the single queue per peer.
        self._outboxes: dict[int, asyncio.Queue[bytes]] = {}
        self._senders: dict[int, asyncio.Task[None]] = {}
        self._last_heard: dict[int, float] = {}
        self._suspected: set[int] = set()
        #: peers known to be down: sends are dropped instead of retrying
        #: the dial (a dead listener would otherwise stall the whole
        #: effect-execution pipeline for the full reconnect backoff)
        self._down: set[int] = set()
        self._tasks: list[asyncio.Task[None]] = []
        self._lock = asyncio.Lock()
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start listening and connect to all successors.

        Single-node convenience; a cluster brings all listeners up first
        (:meth:`start_listening` on every node, which publishes the actual
        ports) and only then dials (:meth:`connect_peers`), so no dial can
        race a not-yet-bound listener.
        """
        await self.start_listening()
        await self.connect_peers()

    async def start_listening(self) -> None:
        """Bind the listener and publish the actual port.

        With ``port == 0`` the kernel assigns a free ephemeral port
        atomically at bind time (no probe/bind race); the assigned port is
        written back into the shared address map so peers dial the right
        endpoint."""
        addr = self.addresses[self.id]
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, addr.host, addr.port)
        if addr.port == 0:
            port = self._tcp_server.sockets[0].getsockname()[1]
            self.addresses[self.id] = NodeAddress(self.id, addr.host, port)

    async def connect_peers(self) -> None:
        """Dial every successor (their listeners must be up) and start the
        failure-detector tasks."""
        for succ in self.server.graph.successors(self.id):
            if succ in self.addresses:
                await self._connect(succ)
        if self.enable_failure_detector:
            self._tasks.append(asyncio.create_task(self._heartbeat_loop()))
            self._tasks.append(asyncio.create_task(self._timeout_loop()))

    async def stop(self) -> None:
        """Close every connection and stop background tasks."""
        self._stopped.set()
        senders = list(self._senders.values())
        self._senders.clear()
        self._outboxes.clear()
        for task in self._tasks + senders:
            task.cancel()
        for task in self._tasks + senders:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        conn_tasks = list(self._conn_tasks)
        self._conn_tasks.clear()
        for task in conn_tasks:
            task.cancel()
        for task in conn_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        writers = list(self._writers.values())
        self._writers.clear()
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called (the node is inert)."""
        return self._stopped.is_set()

    @property
    def address(self) -> NodeAddress:
        """This node's published endpoint (actual port once listening)."""
        return self.addresses[self.id]

    # ------------------------------------------------------------------ #
    # Application API
    # ------------------------------------------------------------------ #
    async def submit(self, request: Request) -> None:
        """Queue a request for the next round's message.

        The payload is normalised to its JSON wire image
        (:func:`~repro.runtime.framing.canonical_payload`) so the local
        copy equals what every peer will decode."""
        from dataclasses import replace

        canonical = canonical_payload(request.data)
        if canonical is not request.data:
            request = replace(request, data=canonical)
        async with self._lock:
            self.server.submit(request)

    async def start_round(self, *, payload: Optional[Batch] = None) -> None:
        """A-broadcast into the next open window slot (with the default
        ``pipeline_depth`` of 1: the current round's message)."""
        async with self._lock:
            self._execute(self.server.start_round(payload=payload))

    async def fill_window(self, *, payload: Optional[Batch] = None) -> None:
        """A-broadcast into every open window slot — all ``pipeline_depth``
        rounds the server may run concurrently."""
        async with self._lock:
            self._execute(self.server.fill_window(payload=payload))

    def on_deliver(self, callback: Callable[[DeliveredRound], None]) -> None:
        """Register a callback invoked on every A-delivered round."""
        self.deliver_callbacks.append(callback)

    async def notify_failure(self, suspect: int) -> None:
        """Feed a failure suspicion into the protocol core.

        This is the deterministic counterpart of the heartbeat timeout: the
        cluster's fail-stop operation calls it on every monitor of the
        failed server so membership changes do not depend on detector
        timing.  Duplicates (e.g. the heartbeat loop firing afterwards) are
        absorbed by the ``_suspected`` set."""
        if suspect in self._suspected:
            return
        if suspect not in set(self.server.graph.predecessors(self.id)):
            return
        self._suspected.add(suspect)
        self.mark_down(suspect)
        async with self._lock:
            self._execute(self.server.notify_failure(suspect))

    @property
    def delivered_rounds(self) -> int:
        return len(self.delivered)

    @property
    def broadcast_rounds(self) -> int:
        """Number of rounds this node's server has A-broadcast in."""
        return self.server.broadcast_rounds

    async def wait_for_round(self, round_no: int, *,
                             timeout: float = 30.0) -> DeliveredRound:
        """Wait until the node has delivered *round_no* (0-based)."""
        deadline = time.monotonic() + timeout
        while len(self.delivered) <= round_no:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"server {self.id} did not deliver round {round_no} "
                    f"within {timeout}s")
            await asyncio.sleep(0.005)
        return self.delivered[round_no]

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _connect(self, peer: int) -> None:
        addr = self.addresses[peer]
        for attempt in range(40):
            # Re-checked every attempt: the peer can be marked down (or this
            # node stopped) *while* the retry loop is sleeping.  Without the
            # re-check a send to a just-crashed peer keeps dialling its dead
            # listener for the full backoff — and since effects execute
            # under the protocol lock, that stalls the node's own round
            # driving for ~40s (long enough to look like a lost round).
            if peer in self._down or self._stopped.is_set():
                return
            try:
                _reader, writer = await asyncio.open_connection(
                    addr.host, addr.port)
                self._writers[peer] = writer
                return
            except OSError:
                await asyncio.sleep(0.05 * (attempt + 1))
        raise ConnectionError(f"server {self.id} cannot reach {peer}")

    def mark_down(self, peer: int) -> None:
        """Note that *peer* is dead: close its connection and stop dialling
        it (fail-stop model — a crashed server never comes back under the
        same endpoint within an epoch).

        This is a public sync entry point (the facade thread may call it
        while the loop runs), so it must not mutate ``_writers`` — the
        sender/heartbeat loops pop entries loop-side, and popping here too
        would race them.  Closing is enough: every reader of ``_writers``
        checks ``_down`` or ``is_closing()`` first, and the loop-side
        teardown paths drop the stale entry."""
        self._down.add(peer)
        writer = self._writers.get(peer)
        if writer is not None:
            writer.close()

    async def _get_writer(self, peer: int) -> Optional[asyncio.StreamWriter]:
        if peer in self._down:
            return None
        writer = self._writers.get(peer)
        if writer is None or writer.is_closing():
            try:
                await self._connect(peer)
            except ConnectionError:
                return None
            writer = self._writers.get(peer)
        return writer

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        decoder = self.codec.decoder()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._stopped.is_set():
                data = await reader.read(65536)
                if not data:
                    break
                for item in decoder.feed(data):
                    await self._handle_frame(item)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _handle_frame(self, item: DecodedFrame) -> None:
        if isinstance(item, dict):                     # control frame
            if item.get("type") == "heartbeat":
                self._last_heard[int(item["from"])] = time.monotonic()
                return
            raise ValueError(f"unknown control frame {item.get('type')!r}")
        sender, message = item
        self._last_heard[sender] = time.monotonic()
        async with self._lock:
            self._execute(self.server.handle_message(sender, message))

    # ------------------------------------------------------------------ #
    # Effects
    # ------------------------------------------------------------------ #
    def _execute(self, effects: list[Effect]) -> None:
        """Apply protocol effects synchronously (called under the lock).

        Nothing here may await: sends only *enqueue* frames, and the
        per-peer sender tasks do the socket I/O outside the lock."""
        for effect in effects:
            if isinstance(effect, Send):
                self._send_effect(effect)
            elif isinstance(effect, Deliver):
                record = DeliveredRound(
                    round=effect.round, messages=effect.messages,
                    removed=effect.removed, wall_time=time.monotonic())
                self.delivered.append(record)
                for cb in self.deliver_callbacks:
                    cb(record)
            elif isinstance(effect, RoundAdvance):
                continue

    def _send_effect(self, effect: Send) -> None:
        frame = self.codec.encode_message(self.id, effect.message)
        for target in effect.targets:
            self._enqueue_frame(target, frame)

    def _enqueue_frame(self, peer: int, frame: bytes) -> None:
        """Queue *frame* for *peer*, lazily starting its sender task.

        Enqueueing happens under the protocol lock, so the per-peer
        queue sees frames in effect order; the single sender per peer
        preserves that order on the wire."""
        if peer in self._down or self._stopped.is_set():
            return
        queue = self._outboxes.get(peer)
        if queue is None:
            queue = asyncio.Queue()
            self._outboxes[peer] = queue
            self._senders[peer] = asyncio.create_task(
                self._sender_loop(peer, queue))
        queue.put_nowait(frame)

    async def _sender_loop(self, peer: int,
                           queue: "asyncio.Queue[bytes]") -> None:
        """Drain one peer's outbox: dial (with backoff) and write, both
        outside the protocol lock.  Frames to a down peer are dropped,
        matching the fail-stop model."""
        while not self._stopped.is_set():
            frame = await queue.get()
            writer = await self._get_writer(peer)
            if writer is None:
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self._writers.pop(peer, None)

    # ------------------------------------------------------------------ #
    # Failure detector (heartbeats over the same connections)
    # ------------------------------------------------------------------ #
    async def _heartbeat_loop(self) -> None:
        frame = self.codec.encode_control({"type": "heartbeat",
                                           "from": self.id})
        while not self._stopped.is_set():
            for succ in self.server.graph.successors(self.id):
                writer = self._writers.get(succ)
                if writer is not None and not writer.is_closing():
                    try:
                        writer.write(frame)
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        self._writers.pop(succ, None)
            await asyncio.sleep(self.heartbeat_period)

    async def _timeout_loop(self) -> None:
        while not self._stopped.is_set():
            await asyncio.sleep(self.heartbeat_period)
            now = time.monotonic()
            for pred in self.server.graph.predecessors(self.id):
                if pred in self._suspected:
                    continue
                last = self._last_heard.get(pred)
                if last is None:
                    continue  # never heard yet: grace period
                if now - last > self.heartbeat_timeout and \
                        pred in set(self.server.members):
                    await self.notify_failure(pred)
