"""asyncio/TCP deployment of the AllConcur protocol core.

Each :class:`RuntimeNode` runs one :class:`~repro.core.server.AllConcurServer`
and talks to its overlay neighbours over TCP: it listens on its own port,
dials every successor, and translates protocol effects into frames
(:mod:`repro.runtime.framing`).  A lightweight heartbeat task implements the
failure detector of §3.2 (period ``Δhb``, timeout ``Δto``): every node
heartbeats its successors and suspects a predecessor after ``Δto`` of
silence.

The runtime exists to demonstrate that the same sans-IO core that the
simulator exercises deploys unchanged over real sockets; it is not a
performance vehicle (see DESIGN.md).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.batching import Batch, Request
from ..core.config import AllConcurConfig
from ..core.interfaces import Deliver, RoundAdvance, Send
from ..core.messages import Backward, Message
from ..core.server import AllConcurServer
from .framing import FrameDecoder, decode_message, encode_frame, encode_message

__all__ = ["RuntimeNode", "NodeAddress", "DeliveredRound"]


@dataclass(frozen=True)
class NodeAddress:
    """TCP endpoint of one AllConcur server."""

    server_id: int
    host: str
    port: int


@dataclass(frozen=True)
class DeliveredRound:
    """One A-delivered round as observed by a runtime node."""

    round: int
    messages: tuple[tuple[int, Batch], ...]
    removed: tuple[int, ...]
    wall_time: float


class RuntimeNode:
    """One AllConcur server bound to asyncio TCP transports."""

    def __init__(self, server_id: int, config: AllConcurConfig,
                 addresses: dict[int, NodeAddress], *,
                 heartbeat_period: float = 0.05,
                 heartbeat_timeout: float = 0.5,
                 enable_failure_detector: bool = True) -> None:
        if server_id not in addresses:
            raise ValueError(f"no address for server {server_id}")
        self.id = server_id
        self.config = config
        self.addresses = addresses
        self.server = AllConcurServer(server_id, config)
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.enable_failure_detector = enable_failure_detector

        self.delivered: list[DeliveredRound] = []
        self.deliver_callbacks: list[Callable[[DeliveredRound], None]] = []

        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._last_heard: dict[int, float] = {}
        self._suspected: set[int] = set()
        self._tasks: list[asyncio.Task] = []
        self._lock = asyncio.Lock()
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start listening and connect to all successors."""
        addr = self.addresses[self.id]
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, addr.host, addr.port)
        for succ in self.server.graph.successors(self.id):
            if succ in self.addresses:
                await self._connect(succ)
        if self.enable_failure_detector:
            self._tasks.append(asyncio.create_task(self._heartbeat_loop()))
            self._tasks.append(asyncio.create_task(self._timeout_loop()))

    async def stop(self) -> None:
        """Close every connection and stop background tasks."""
        self._stopped.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None

    # ------------------------------------------------------------------ #
    # Application API
    # ------------------------------------------------------------------ #
    async def submit(self, request: Request) -> None:
        """Queue a request for the next round's message."""
        async with self._lock:
            self.server.submit(request)

    async def start_round(self, *, payload: Optional[Batch] = None) -> None:
        """A-broadcast into the next open window slot (with the default
        ``pipeline_depth`` of 1: the current round's message)."""
        async with self._lock:
            await self._execute(self.server.start_round(payload=payload))

    async def fill_window(self, *, payload: Optional[Batch] = None) -> None:
        """A-broadcast into every open window slot — all ``pipeline_depth``
        rounds the server may run concurrently."""
        async with self._lock:
            await self._execute(self.server.fill_window(payload=payload))

    def on_deliver(self, callback: Callable[[DeliveredRound], None]) -> None:
        """Register a callback invoked on every A-delivered round."""
        self.deliver_callbacks.append(callback)

    @property
    def delivered_rounds(self) -> int:
        return len(self.delivered)

    @property
    def broadcast_rounds(self) -> int:
        """Number of rounds this node's server has A-broadcast in."""
        return self.server.broadcast_rounds

    async def wait_for_round(self, round_no: int, *,
                             timeout: float = 30.0) -> DeliveredRound:
        """Wait until the node has delivered *round_no* (0-based)."""
        deadline = time.monotonic() + timeout
        while len(self.delivered) <= round_no:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"server {self.id} did not deliver round {round_no} "
                    f"within {timeout}s")
            await asyncio.sleep(0.005)
        return self.delivered[round_no]

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _connect(self, peer: int) -> None:
        addr = self.addresses[peer]
        for attempt in range(40):
            try:
                _reader, writer = await asyncio.open_connection(
                    addr.host, addr.port)
                self._writers[peer] = writer
                return
            except OSError:
                await asyncio.sleep(0.05 * (attempt + 1))
        raise ConnectionError(f"server {self.id} cannot reach {peer}")

    async def _get_writer(self, peer: int) -> Optional[asyncio.StreamWriter]:
        writer = self._writers.get(peer)
        if writer is None or writer.is_closing():
            try:
                await self._connect(peer)
            except ConnectionError:
                return None
            writer = self._writers.get(peer)
        return writer

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while not self._stopped.is_set():
                data = await reader.read(65536)
                if not data:
                    break
                for obj in decoder.feed(data):
                    await self._handle_frame(obj)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            writer.close()

    async def _handle_frame(self, obj: dict) -> None:
        kind = obj.get("type")
        if kind == "heartbeat":
            self._last_heard[int(obj["from"])] = time.monotonic()
            return
        sender, message = decode_message(obj)
        self._last_heard[sender] = time.monotonic()
        async with self._lock:
            await self._execute(self.server.handle_message(sender, message))

    # ------------------------------------------------------------------ #
    # Effects
    # ------------------------------------------------------------------ #
    async def _execute(self, effects: list) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                await self._send_effect(effect)
            elif isinstance(effect, Deliver):
                record = DeliveredRound(
                    round=effect.round, messages=effect.messages,
                    removed=effect.removed, wall_time=time.monotonic())
                self.delivered.append(record)
                for cb in self.deliver_callbacks:
                    cb(record)
            elif isinstance(effect, RoundAdvance):
                continue

    async def _send_effect(self, effect: Send) -> None:
        frame = encode_frame(encode_message(self.id, effect.message))
        for target in effect.targets:
            writer = await self._get_writer(target)
            if writer is None:
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self._writers.pop(target, None)

    # ------------------------------------------------------------------ #
    # Failure detector (heartbeats over the same connections)
    # ------------------------------------------------------------------ #
    async def _heartbeat_loop(self) -> None:
        frame = encode_frame({"type": "heartbeat", "from": self.id})
        while not self._stopped.is_set():
            for succ in self.server.graph.successors(self.id):
                writer = self._writers.get(succ)
                if writer is not None and not writer.is_closing():
                    try:
                        writer.write(frame)
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        self._writers.pop(succ, None)
            await asyncio.sleep(self.heartbeat_period)

    async def _timeout_loop(self) -> None:
        while not self._stopped.is_set():
            await asyncio.sleep(self.heartbeat_period)
            now = time.monotonic()
            for pred in self.server.graph.predecessors(self.id):
                if pred in self._suspected:
                    continue
                last = self._last_heard.get(pred)
                if last is None:
                    continue  # never heard yet: grace period
                if now - last > self.heartbeat_timeout and \
                        pred in set(self.server.members):
                    self._suspected.add(pred)
                    async with self._lock:
                        await self._execute(self.server.notify_failure(pred))
