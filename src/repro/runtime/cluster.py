"""Local (single-process) deployment of an AllConcur cluster over TCP.

:class:`LocalCluster` starts one :class:`~repro.runtime.node.RuntimeNode` per
overlay vertex, all inside the current asyncio event loop, listening on
consecutive localhost ports.  It is the entry point the examples and the
runtime tests use:

>>> import asyncio
>>> from repro.graphs import gs_digraph
>>> from repro.runtime import LocalCluster
>>> async def demo():
...     async with LocalCluster(gs_digraph(6, 3)) as cluster:
...         await cluster.submit(0, b"hello")
...         rounds = await cluster.run_rounds(1)
...         return rounds[0]
>>> # asyncio.run(demo())
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Optional, Sequence

from ..core.batching import Batch, Request
from ..core.config import AllConcurConfig
from ..graphs.digraph import Digraph
from .node import DeliveredRound, NodeAddress, RuntimeNode

__all__ = ["LocalCluster", "pick_free_port_base"]


def pick_free_port_base(count: int) -> int:
    """Find a base port such that ``base .. base+count-1`` are bindable."""
    import socket

    for base in range(20000, 60000, max(count, 1) + 7):
        ok = True
        socks = []
        try:
            for offset in range(count):
                s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                try:
                    s.bind(("127.0.0.1", base + offset))
                except OSError:
                    ok = False
                    s.close()
                    break
                socks.append(s)
        finally:
            for s in socks:
                s.close()
        if ok:
            return base
    raise RuntimeError("no free port range found")


class LocalCluster:
    """All servers of one AllConcur deployment, hosted in-process."""

    def __init__(self, graph: Digraph, *, host: str = "127.0.0.1",
                 base_port: Optional[int] = None,
                 config: Optional[AllConcurConfig] = None,
                 heartbeat_period: float = 0.05,
                 heartbeat_timeout: float = 0.5,
                 enable_failure_detector: bool = True) -> None:
        self.graph = graph
        self.config = config or AllConcurConfig(graph=graph,
                                                auto_advance=False)
        members = self.config.initial_members
        port0 = base_port if base_port is not None \
            else pick_free_port_base(len(members))
        self.addresses = {
            pid: NodeAddress(pid, host, port0 + idx)
            for idx, pid in enumerate(members)
        }
        self.nodes: dict[int, RuntimeNode] = {
            pid: RuntimeNode(pid, self.config, self.addresses,
                             heartbeat_period=heartbeat_period,
                             heartbeat_timeout=heartbeat_timeout,
                             enable_failure_detector=enable_failure_detector)
            for pid in members
        }
        self._seq: dict[int, int] = {pid: 0 for pid in members}
        self._started = False

    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def start(self) -> None:
        """Start every node (listeners first, then outgoing connections)."""
        if self._started:
            return
        await asyncio.gather(*(node.start() for node in self.nodes.values()))
        self._started = True

    async def stop(self) -> None:
        await asyncio.gather(*(node.stop() for node in self.nodes.values()),
                             return_exceptions=True)
        self._started = False

    # ------------------------------------------------------------------ #
    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self.nodes))

    async def submit(self, server_id: int, data, *, nbytes: int = 64) -> None:
        """Submit an application request at *server_id*."""
        node = self.nodes[server_id]
        seq = self._seq[server_id]
        self._seq[server_id] = seq + 1
        await node.submit(Request(origin=server_id, seq=seq, nbytes=nbytes,
                                  data=data))

    async def run_rounds(self, rounds: int, *,
                         timeout: float = 30.0) -> list[dict[int, DeliveredRound]]:
        """Run *rounds* full rounds and return, per round, the delivery
        record of every node (they all agree; tests assert it).

        Rounds are driven per window slot: up to ``pipeline_depth`` rounds
        are A-broadcast before waiting for the oldest one to deliver, so a
        deeper pipeline keeps later rounds in flight while earlier ones
        complete.  With the default depth of 1 this is the classic
        broadcast-then-wait lockstep.
        """
        results: list[dict[int, DeliveredRound]] = []
        depth = self.config.pipeline_depth
        base = min(node.delivered_rounds for node in self.nodes.values())
        issued_base = min(node.broadcast_rounds
                          for node in self.nodes.values())
        for idx in range(rounds):
            # Keep the window full: issue slots up to `depth` rounds ahead
            # of the oldest round still awaited.  Progress is measured by
            # rounds actually A-broadcast (a membership-change barrier can
            # temporarily cap the window, making start_round a no-op; the
            # slot is retried once the window drains and reopens).
            while True:
                issued = min(node.broadcast_rounds
                             for node in self.nodes.values()) - issued_base
                if issued >= min(rounds, idx + depth):
                    break
                await asyncio.gather(*(node.start_round()
                                       for node in self.nodes.values()))
                still = min(node.broadcast_rounds
                            for node in self.nodes.values()) - issued_base
                if still == issued:
                    break        # window capped; retry after the next wait
            per_node = {}
            for pid, node in self.nodes.items():
                per_node[pid] = await node.wait_for_round(base + idx,
                                                          timeout=timeout)
            results.append(per_node)
        return results

    def agreement_holds(self) -> bool:
        """Every node delivered identical message sequences for the rounds
        it completed (the runtime counterpart of Lemma 3.5)."""
        nodes = list(self.nodes.values())
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                common = min(a.delivered_rounds, b.delivered_rounds)
                for r in range(common):
                    da, db = a.delivered[r], b.delivered[r]
                    if da.round != db.round:
                        return False
                    if [(o, batch.count, tuple(req.data for req in batch.requests))
                            for o, batch in da.messages] != \
                       [(o, batch.count, tuple(req.data for req in batch.requests))
                            for o, batch in db.messages]:
                        return False
        return True
