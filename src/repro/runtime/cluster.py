"""Local (single-process) deployment of an AllConcur cluster over TCP.

:class:`LocalCluster` starts one :class:`~repro.runtime.node.RuntimeNode` per
overlay vertex, all inside the current asyncio event loop.  Ports are
allocated by the kernel: every node binds to port 0 and publishes the
assigned port before any node dials out, so concurrent clusters (e.g.
parallel CI shards) can never race each other for a port range.

It is the entry point the runtime tests use; applications are better served
by the transport-agnostic facade in :mod:`repro.api`
(:class:`~repro.api.TcpDeployment` wraps this class):

>>> import asyncio
>>> from repro.graphs import gs_digraph
>>> from repro.runtime import LocalCluster
>>> async def demo():
...     async with LocalCluster(gs_digraph(6, 3)) as cluster:
...         await cluster.submit(0, b"hello")
...         rounds = await cluster.run_rounds(1)
...         return rounds[0]
>>> # asyncio.run(demo())
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from ..core.batching import Batch, Request
from ..core.config import AllConcurConfig
from ..graphs.digraph import Digraph
from .node import DeliveredRound, NodeAddress, RuntimeNode

__all__ = ["LocalCluster"]


class LocalCluster:
    """All servers of one AllConcur deployment, hosted in-process."""

    def __init__(self, graph: Digraph, *, host: str = "127.0.0.1",
                 base_port: Optional[int] = None,
                 config: Optional[AllConcurConfig] = None,
                 heartbeat_period: float = 0.05,
                 heartbeat_timeout: float = 0.5,
                 enable_failure_detector: bool = True,
                 namespace: str = "",
                 codec: str = "binary") -> None:
        self.graph = graph
        #: label of this group in multi-group (sharded) deployments — node
        #: ids are only unique per cluster, so diagnostics qualify them
        self.namespace = namespace
        #: wire codec name — "binary" (default) or "json" (the
        #: differential oracle); see :mod:`repro.runtime.wire`
        self.codec = codec
        self.config = config or AllConcurConfig(graph=graph,
                                                auto_advance=False)
        members = self.config.initial_members
        # port 0 = kernel-assigned ephemeral port, published at bind time by
        # RuntimeNode.start_listening; an explicit base_port keeps the old
        # consecutive layout for callers that need fixed endpoints.
        self.addresses = {
            pid: NodeAddress(pid, host,
                             0 if base_port is None else base_port + idx)
            for idx, pid in enumerate(members)
        }
        self.nodes: dict[int, RuntimeNode] = {
            pid: RuntimeNode(pid, self.config, self.addresses,
                             heartbeat_period=heartbeat_period,
                             heartbeat_timeout=heartbeat_timeout,
                             enable_failure_detector=enable_failure_detector,
                             codec=codec)
            for pid in members
        }
        self._seq: dict[int, int] = {pid: 0 for pid in members}
        self._failed: set[int] = set()
        self._started = False

    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    async def start(self) -> None:
        """Start every node: all listeners first (each publishes its
        kernel-assigned port into the shared address map), then the
        outgoing connections — no dial can hit an unbound listener."""
        if self._started:
            return
        await asyncio.gather(*(node.start_listening()
                               for node in self.nodes.values()))
        await asyncio.gather(*(node.connect_peers()
                               for node in self.nodes.values()))
        self._started = True

    async def stop(self) -> None:
        await asyncio.gather(*(node.stop() for node in self.nodes.values()),
                             return_exceptions=True)
        self._started = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.namespace!r}" if self.namespace else ""
        return (f"<LocalCluster{label} n={len(self.nodes)} "
                f"{'started' if self._started else 'stopped'}>")

    def endpoints(self) -> dict[int, tuple[str, int]]:
        """Published ``pid -> (host, port)`` listener addresses.

        Kernel-assigned ports (the ``base_port=None`` default) become
        visible after :meth:`start`.  Multi-group deployments use this to
        confirm groups occupy **disjoint port spaces**: every cluster
        binds its own set of ephemeral ports, so two groups can never
        collide no matter how many share the process.
        """
        return {pid: (addr.host, addr.port)
                for pid, addr in self.addresses.items()}

    # ------------------------------------------------------------------ #
    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self.nodes))

    @property
    def alive_members(self) -> tuple[int, ...]:
        """Members not failed via :meth:`fail`."""
        return tuple(pid for pid in self.members if pid not in self._failed)

    def _live_nodes(self) -> list[RuntimeNode]:
        return [self.nodes[pid] for pid in self.alive_members]

    def next_seq(self, server_id: int) -> int:
        """The sequence number the next request submitted at *server_id*
        will receive (the cluster is the one sequencer per origin; the
        ``repro.api`` facade reads it so facade and direct submissions
        never collide on an ``(origin, seq)`` key)."""
        return self._seq[server_id]

    async def submit(self, server_id: int, data: Any, *,
                     nbytes: int = 64) -> None:
        """Submit an application request at *server_id*."""
        await self.submit_request(
            Request(origin=server_id, seq=self._seq[server_id],
                    nbytes=nbytes, data=data))

    async def submit_request(self, request: Request) -> None:
        """Submit a pre-built request, advancing the origin's sequencer
        past it."""
        self._seq[request.origin] = max(self._seq[request.origin],
                                        request.seq + 1)
        await self.nodes[request.origin].submit(request)

    # ------------------------------------------------------------------ #
    # Failure operations
    # ------------------------------------------------------------------ #
    async def fail(self, server_id: int) -> None:
        """Fail-stop *server_id*: stop its node and feed the suspicion into
        every monitor deterministically.

        With the heartbeat detector enabled the notifications would also
        arrive on their own after ``heartbeat_timeout``; injecting them here
        makes membership changes immediate and timing-independent (the
        ``_suspected`` set absorbs the later heartbeat duplicates).
        """
        if server_id in self._failed:
            return
        self._failed.add(server_id)
        await self.nodes[server_id].stop()
        for node in self._live_nodes():
            # senders to the dead server must stop dialling it immediately
            # (a retry loop against a dead listener would stall their whole
            # send pipeline), and its monitors feed the suspicion into the
            # protocol
            node.mark_down(server_id)
            if server_id in set(self.graph.predecessors(node.id)):
                await node.notify_failure(server_id)

    async def run_rounds(self, rounds: int, *,
                         timeout: float = 30.0) -> list[dict[int, DeliveredRound]]:
        """Run *rounds* full rounds and return, per round, the delivery
        record of every live node (they all agree; tests assert it).

        Rounds are driven per window slot: up to ``pipeline_depth`` rounds
        are A-broadcast before waiting for the oldest one to deliver, so a
        deeper pipeline keeps later rounds in flight while earlier ones
        complete.  A membership-change barrier (epoch end) can temporarily
        cap the window, making ``start_round`` a no-op; the window is
        re-filled after every awaited round so capped slots are re-issued
        as soon as the barrier drains — without that refill a slot capped
        during the initial fill was never re-issued and the final rounds of
        a run could hang until the timeout.
        """
        results: list[dict[int, DeliveredRound]] = []
        depth = self.config.pipeline_depth
        live = self._live_nodes()
        if not live:
            return results
        base = min(node.delivered_rounds for node in live)
        issued_base = min(node.broadcast_rounds for node in live)

        async def refill(target_rounds: int) -> None:
            # Issue window slots until `target_rounds` rounds (beyond
            # issued_base) are A-broadcast everywhere, or the window is
            # capped (epoch barrier) and no slot makes progress.
            while True:
                nodes = self._live_nodes()
                if not nodes:
                    return
                issued = min(node.broadcast_rounds
                             for node in nodes) - issued_base
                if issued >= target_rounds:
                    return
                await asyncio.gather(*(node.start_round()
                                       for node in nodes))
                still = min(node.broadcast_rounds
                            for node in nodes) - issued_base
                if still == issued:
                    return   # window capped; retried after the next wait

        for idx in range(rounds):
            await refill(min(rounds, idx + depth))
            per_node: dict[int, DeliveredRound] = {}
            for pid in self.alive_members:
                per_node[pid] = await self.nodes[pid].wait_for_round(
                    base + idx, timeout=timeout)
                # The awaited delivery may have drained an epoch barrier
                # and reopened the window: re-fill so capped slots
                # (including the round the next iteration waits on) are
                # actually issued.
                await refill(min(rounds, idx + depth))
            results.append(per_node)
        return results

    def agreement_holds(self) -> bool:
        """Every live node delivered identical message sequences for the
        rounds it completed (the runtime counterpart of Lemma 3.5)."""
        nodes = self._live_nodes()
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                common = min(a.delivered_rounds, b.delivered_rounds)
                for r in range(common):
                    da, db = a.delivered[r], b.delivered[r]
                    if da.round != db.round:
                        return False
                    if [(o, batch.count, tuple(req.data for req in batch.requests))
                            for o, batch in da.messages] != \
                       [(o, batch.count, tuple(req.data for req in batch.requests))
                            for o, batch in db.messages]:
                        return False
        return True
