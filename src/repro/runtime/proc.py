"""Multi-process deployment: one OS process per AllConcur server.

:class:`LocalCluster` hosts every :class:`~repro.runtime.node.RuntimeNode`
in one asyncio event loop, so an n-server "deployment" shares one core and
one GIL — the simulator ended up outrunning the real runtime by orders of
magnitude.  :class:`ProcessCluster` keeps the exact same driving surface
(``start``/``stop``, ``submit``/``submit_request``, ``run_rounds``,
``fail``, ``agreement_holds`` …) but runs each node in its own spawned OS
process with its own event loop, so n servers use up to n cores and every
node pays only for its own framing and protocol work.

Architecture
------------

* The parent opens one **control listener** (kernel-assigned port) and
  spawns one child process per overlay vertex.  Control traffic is
  length-prefixed JSON (:mod:`.framing`) regardless of the wire codec —
  it is not a hot path, and JSON keeps it independently debuggable.
* Each child builds its ``RuntimeNode`` (with the configured wire codec),
  binds its node listener on port 0, dials the parent and reports the
  kernel-assigned port in a ``hello`` frame.
* Once every child said hello, the parent broadcasts the complete address
  map (``peers``); only then do children dial their overlay successors —
  the same two-phase bring-up :class:`LocalCluster` uses, so no dial can
  race an unbound listener.
* Parent→child commands are request/reply RPCs (``req`` correlation ids).
  ``run_rounds`` ships the whole round-driving loop to the children: each
  child fills its own broadcast window and awaits its own deliveries, so
  the steady-state hot loop never crosses the control channel.
* Children push every A-delivery to the parent (``deliver`` frames), which
  archives them per node, fires the parent-side deliver callbacks (the
  :class:`~repro.api.tcp_backend.TcpDeployment` facade and the replicated
  state machines hang off these), and answers ``agreement_holds`` without
  extra RPCs.  TCP's per-connection FIFO guarantees a child's deliveries
  are archived before its ``run_rounds`` reply is processed.

With ``report="digest"`` children push batch digests instead of full
payloads — the throughput benchmark uses this so that the parent (an
observer, not a server) does not become the bottleneck; agreement is then
checked digest-for-digest.  The facade always uses ``report="full"``.

The default start method is ``fork`` where available (child start cost is
milliseconds and the test-suite spawns many clusters); ``spawn`` is
selectable via ``mp_context`` and is the automatic fallback elsewhere.
Children never touch the inherited event loop — each calls
:func:`asyncio.run` on a fresh one.
"""

from __future__ import annotations

import asyncio
import hashlib
import marshal
import multiprocessing
import os
import time
import traceback
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Iterable, Optional

from ..core.batching import Batch, Request
from ..core.config import AllConcurConfig
from ..graphs.digraph import Digraph
from .framing import (
    FrameDecoder,
    batch_from_json,
    batch_to_json,
    encode_frame,
    request_from_json,
    request_to_json,
)
from .node import DeliveredRound, NodeAddress, RuntimeNode

__all__ = ["ProcessCluster"]


def _batch_digest(batch: Batch) -> str:
    """Deterministic 64-bit digest of a batch (stable across processes —
    no dependence on PYTHONHASHSEED)."""
    rows = tuple((r.origin, r.seq, r.nbytes, r.submit_time, r.data, r.client)
                 for r in batch.requests)
    blob = marshal.dumps((batch.count, batch.nbytes, rows))
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


# --------------------------------------------------------------------- #
# Child process
# --------------------------------------------------------------------- #

def _child_main(server_id: int, config: AllConcurConfig, host: str,
                control_port: int, codec: str, heartbeat_period: float,
                heartbeat_timeout: float, enable_failure_detector: bool,
                report: str) -> None:
    """Entry point of one server process (must be module-level so the
    ``spawn`` start method can import it)."""
    try:
        asyncio.run(_child(server_id, config, host, control_port, codec,
                           heartbeat_period, heartbeat_timeout,
                           enable_failure_detector, report))
    except Exception:   # pragma: no cover - surfaced via parent timeout
        traceback.print_exc()
        os._exit(1)


async def _run_until(node: RuntimeNode, until: int, timeout: float,
                     progress: asyncio.Event) -> None:
    """Drive this node until it has delivered *until* rounds in total.

    *until* is an **absolute** target the parent computed once and sent to
    every child, not a per-child relative count: ``broadcast_rounds`` and
    the epoch barrier advance at different protocol times on different
    nodes (a membership change caps some windows before others), so
    relative targets drift apart and a node can end up awaiting a round
    whose broadcast its peers never issue in this call.  With one shared
    absolute target every node keeps re-issuing window slots (capped slots
    retry on the next poll, after a delivery drained the barrier) until it
    has A-broadcast in all *until* rounds — exactly what its slowest peer
    needs to finish.  A node already past the target replies immediately:
    having delivered ``>= until`` rounds implies it already broadcast in
    every round the laggards are waiting on."""
    deadline = time.monotonic() + timeout
    while node.delivered_rounds < until:
        while node.broadcast_rounds < until:
            before = node.broadcast_rounds
            await node.start_round()
            if node.broadcast_rounds == before:
                break       # window capped; retried on the next poll
        if node.delivered_rounds >= until:
            break
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"server {node.id} delivered {node.delivered_rounds} of "
                f"{until} rounds within {timeout}s")
        # Delivery-kicked, not fixed-interval polled: with pipeline depth 1
        # the next broadcast is gated on the previous delivery, so a sleep
        # here would put its full duration on EVERY round's critical path.
        progress.clear()
        try:
            await asyncio.wait_for(progress.wait(), 0.05)
        except asyncio.TimeoutError:
            pass        # re-check the window anyway (barrier may have moved)


async def _child(server_id: int, config: AllConcurConfig, host: str,
                 control_port: int, codec: str, heartbeat_period: float,
                 heartbeat_timeout: float, enable_failure_detector: bool,
                 report: str) -> None:
    addresses = {server_id: NodeAddress(server_id, host, 0)}
    node = RuntimeNode(server_id, config, addresses,
                       heartbeat_period=heartbeat_period,
                       heartbeat_timeout=heartbeat_timeout,
                       enable_failure_detector=enable_failure_detector,
                       codec=codec)
    await node.start_listening()

    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    for attempt in range(40):
        try:
            reader, writer = await asyncio.open_connection(host, control_port)
            break
        except OSError:
            await asyncio.sleep(0.05 * (attempt + 1))
    if reader is None or writer is None:
        raise ConnectionError(f"server {server_id} cannot reach the "
                              f"control channel on port {control_port}")
    # non-Optional bindings for the closures below (narrowing does not
    # cross function boundaries)
    ctrl_reader = reader
    ctrl_writer = writer

    outbox: asyncio.Queue[bytes] = asyncio.Queue()

    async def pump() -> None:
        while True:
            frame = await outbox.get()
            ctrl_writer.write(frame)
            await ctrl_writer.drain()

    pump_task = asyncio.create_task(pump())

    def send(obj: dict[str, Any]) -> None:
        outbox.put_nowait(encode_frame(obj))

    #: set on every A-delivery — wakes the round-driving loop immediately
    progress = asyncio.Event()

    def on_deliver(rec: DeliveredRound) -> None:
        progress.set()
        frame = {"type": "deliver", "id": server_id, "round": rec.round,
                 "removed": list(rec.removed), "wall": rec.wall_time}
        if report == "digest":
            frame["digest"] = [[o, b.count, b.nbytes, _batch_digest(b)]
                               for o, b in rec.messages]
        else:
            frame["messages"] = [[o, batch_to_json(b)]
                                 for o, b in rec.messages]
        send(frame)

    node.on_deliver(on_deliver)
    send({"type": "hello", "id": server_id, "port": node.address.port})

    async def run_and_reply(until: int, timeout: float, req: int) -> None:
        try:
            await _run_until(node, until, timeout, progress)
        except Exception as exc:
            send({"type": "reply", "req": req,
                  "error": f"{type(exc).__name__}: {exc}"})
        else:
            send({"type": "reply", "req": req,
                  "broadcast_rounds": node.broadcast_rounds,
                  "delivered_rounds": node.delivered_rounds})

    tasks: set[asyncio.Task[None]] = set()
    decoder = FrameDecoder()
    stopping = False
    try:
        while not stopping:
            data = await ctrl_reader.read(65536)
            if not data:
                break               # parent gone: shut down
            for obj in decoder.feed(data):
                kind = obj["type"]
                req = obj.get("req")
                if kind == "peers":
                    for key, (peer_host, peer_port) in \
                            obj["addresses"].items():
                        pid = int(key)
                        addresses[pid] = NodeAddress(pid, peer_host,
                                                     peer_port)
                    await node.connect_peers()
                    send({"type": "reply", "req": req})
                elif kind == "submit":
                    await node.submit(request_from_json(obj["request"]))
                    send({"type": "reply", "req": req})
                elif kind == "submit_many":
                    for row in obj["requests"]:
                        await node.submit(request_from_json(row))
                    send({"type": "reply", "req": req})
                elif kind == "run":
                    task = asyncio.create_task(
                        run_and_reply(obj["until"], obj["timeout"], req))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif kind == "start_round":
                    await node.start_round()
                    send({"type": "reply", "req": req,
                          "broadcast_rounds": node.broadcast_rounds})
                elif kind == "fill_window":
                    await node.fill_window()
                    send({"type": "reply", "req": req,
                          "broadcast_rounds": node.broadcast_rounds})
                elif kind == "notify_failure":
                    await node.notify_failure(obj["suspect"])
                    send({"type": "reply", "req": req})
                elif kind == "mark_down":
                    node.mark_down(obj["peer"])
                    send({"type": "reply", "req": req})
                elif kind == "status":
                    send({"type": "reply", "req": req,
                          "broadcast_rounds": node.broadcast_rounds,
                          "delivered_rounds": node.delivered_rounds})
                elif kind == "stop":
                    send({"type": "reply", "req": req})
                    stopping = True
                    break
                else:
                    send({"type": "error", "id": server_id,
                          "error": f"unknown command {kind!r}"})
    except (asyncio.CancelledError, ConnectionResetError):
        pass
    finally:
        for task in tasks:
            task.cancel()
        await node.stop()
        pump_task.cancel()
        try:
            await pump_task
        except (asyncio.CancelledError, Exception):
            pass
        while not outbox.empty():       # flush the goodbye frames
            ctrl_writer.write(outbox.get_nowait())
        try:
            await ctrl_writer.drain()
        except (ConnectionError, OSError):
            pass
        ctrl_writer.close()


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #

class _ProcessNode:
    """Parent-side stand-in for a child-process node: the delivery archive
    plus the callback hook the facade layers attach to.  Duck-types the
    slice of :class:`RuntimeNode` that drivers use."""

    def __init__(self, pid: int, cluster: "ProcessCluster") -> None:
        self.id = pid
        self._cluster = cluster
        self.delivered: list[DeliveredRound] = []
        #: per-round ``(round, ((origin, count, nbytes, digest), ...))``
        #: rows (``report="digest"`` mode only)
        self.digests: list[tuple[int, tuple[tuple[int, int, int, str],
                                            ...]]] = []
        self.deliver_callbacks: list[Callable[[DeliveredRound], None]] = []
        self.broadcast_rounds = 0
        #: set whenever a deliver frame for this node is archived — wakes
        #: parent-side waiters without a fixed polling interval
        self.progress = asyncio.Event()

    @property
    def delivered_rounds(self) -> int:
        return len(self.delivered)

    @property
    def address(self) -> NodeAddress:
        return self._cluster.addresses[self.id]

    def on_deliver(self, callback: Callable[[DeliveredRound], None]) -> None:
        self.deliver_callbacks.append(callback)

    async def wait_for_round(self, round_no: int, *,
                             timeout: float = 30.0) -> DeliveredRound:
        deadline = time.monotonic() + timeout
        while len(self.delivered) <= round_no:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"server {self.id} did not deliver round {round_no} "
                    f"within {timeout}s")
            self.progress.clear()
            try:
                await asyncio.wait_for(self.progress.wait(), 0.05)
            except asyncio.TimeoutError:
                pass
        return self.delivered[round_no]


class ProcessCluster:
    """All servers of one AllConcur deployment, each in its own process.

    Drop-in for :class:`~repro.runtime.cluster.LocalCluster`: the public
    async surface is identical, so :class:`~repro.api.TcpDeployment` (and
    therefore every example, client session and sharded service) runs
    unchanged on top — pass ``runtime="process"`` to the facade.
    """

    def __init__(self, graph: Digraph, *, host: str = "127.0.0.1",
                 config: Optional[AllConcurConfig] = None,
                 heartbeat_period: float = 0.05,
                 heartbeat_timeout: float = 0.5,
                 enable_failure_detector: bool = True,
                 namespace: str = "",
                 codec: str = "binary",
                 mp_context: Optional[str] = None,
                 report: str = "full",
                 start_timeout: float = 120.0) -> None:
        if report not in ("full", "digest"):
            raise ValueError(f"unknown report mode {report!r}")
        self.graph = graph
        self.namespace = namespace
        self.codec = codec
        self.report = report
        self.config = config or AllConcurConfig(graph=graph,
                                                auto_advance=False)
        self.host = host
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.enable_failure_detector = enable_failure_detector
        self.mp_context = mp_context
        self.start_timeout = start_timeout

        members = self.config.initial_members
        self.addresses = {pid: NodeAddress(pid, host, 0) for pid in members}
        self.nodes: dict[int, _ProcessNode] = {
            pid: _ProcessNode(pid, self) for pid in members}
        self._seq: dict[int, int] = {pid: 0 for pid in members}
        self._failed: set[int] = set()
        self._started = False

        self._procs: dict[int, BaseProcess] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._hello: dict[int, asyncio.Event] = {}
        #: ``(pid, req) -> reply future`` (pid is None until a connection
        #: has said hello, so the key mirrors ``_resolve_reply``'s view)
        self._pending: dict[tuple[Optional[int], int],
                            asyncio.Future[dict[str, Any]]] = {}
        self._serve_tasks: set[asyncio.Task[None]] = set()
        self._control: Optional[asyncio.AbstractServer] = None
        self._req_counter = 0

    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "ProcessCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    def _start_method(self) -> str:
        if self.mp_context is not None:
            return self.mp_context
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    async def start(self) -> None:
        """Spawn every server process and complete the two-phase bring-up
        (all node listeners bound and reported, then all peer dials)."""
        if self._started:
            return
        self._hello = {pid: asyncio.Event() for pid in self.members}
        self._control = await asyncio.start_server(
            self._accept, self.host, 0)
        control_port = self._control.sockets[0].getsockname()[1]
        ctx = multiprocessing.get_context(self._start_method())
        for pid in self.members:
            proc = ctx.Process(
                target=_child_main,
                args=(pid, self.config, self.host, control_port, self.codec,
                      self.heartbeat_period, self.heartbeat_timeout,
                      self.enable_failure_detector, self.report),
                daemon=True,
                name=f"allconcur-{self.namespace or 'node'}-{pid}")
            proc.start()
            self._procs[pid] = proc
        try:
            await asyncio.wait_for(
                asyncio.gather(*(event.wait()
                                 for event in self._hello.values())),
                self.start_timeout)
        except asyncio.TimeoutError:
            missing = sorted(pid for pid, event in self._hello.items()
                             if not event.is_set())
            await self.stop()
            raise ConnectionError(
                f"server processes {missing} did not report in "
                f"within {self.start_timeout}s")
        address_map = {str(pid): [addr.host, addr.port]
                       for pid, addr in self.addresses.items()}
        await asyncio.gather(*(
            self._rpc(pid, {"type": "peers", "addresses": address_map})
            for pid in self.members))
        self._started = True

    async def stop(self) -> None:
        for pid in list(self._procs):
            if pid not in self._failed:
                await self._shutdown_child(pid)
        for task in list(self._serve_tasks):
            task.cancel()
        for task in list(self._serve_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._serve_tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._control is not None:
            self._control.close()
            await self._control.wait_closed()
            self._control = None
        self._started = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.namespace!r}" if self.namespace else ""
        return (f"<ProcessCluster{label} n={len(self.nodes)} "
                f"{'started' if self._started else 'stopped'}>")

    def endpoints(self) -> dict[int, tuple[str, int]]:
        """Published ``pid -> (host, port)`` node listener addresses
        (kernel-assigned, reported by each child's hello)."""
        return {pid: (addr.host, addr.port)
                for pid, addr in self.addresses.items()}

    # ------------------------------------------------------------------ #
    # Control channel
    # ------------------------------------------------------------------ #
    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
        pid: Optional[int] = None
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for obj in decoder.feed(data):
                    kind = obj["type"]
                    if kind == "hello":
                        pid = int(obj["id"])
                        self._writers[pid] = writer
                        self.addresses[pid] = NodeAddress(
                            pid, self.host, obj["port"])
                        self._hello[pid].set()
                    elif kind == "deliver":
                        self._archive_delivery(obj)
                    elif kind == "reply":
                        self._resolve_reply(pid, obj)
                    elif kind == "error":
                        raise RuntimeError(
                            f"server process {obj.get('id')}: "
                            f"{obj.get('error')}")
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            if task is not None:
                self._serve_tasks.discard(task)
            if pid is not None:
                self._fail_pending(pid)
            writer.close()

    def _archive_delivery(self, obj: dict[str, Any]) -> None:
        node = self.nodes[obj["id"]]
        if "digest" in obj:
            node.digests.append(
                (obj["round"],
                 tuple((d[0], d[1], d[2], d[3]) for d in obj["digest"])))
            messages: tuple[tuple[int, Batch], ...] = ()
        else:
            messages = tuple((origin, batch_from_json(batch))
                             for origin, batch in obj["messages"])
        record = DeliveredRound(round=obj["round"], messages=messages,
                                removed=tuple(obj["removed"]),
                                wall_time=obj["wall"])
        node.delivered.append(record)
        node.progress.set()
        for callback in node.deliver_callbacks:
            callback(record)

    def _resolve_reply(self, pid: Optional[int], obj: dict[str, Any]) -> None:
        future = self._pending.pop((pid, obj["req"]), None)
        if future is None or future.done():
            return
        error = obj.get("error")
        if error is None:
            future.set_result(obj)
        elif error.startswith("TimeoutError"):
            future.set_exception(TimeoutError(error))
        else:
            future.set_exception(RuntimeError(
                f"server process {pid}: {error}"))

    def _fail_pending(self, pid: int) -> None:
        for key in [k for k in self._pending if k[0] == pid]:
            future = self._pending.pop(key)
            if not future.done():
                future.set_exception(ConnectionError(
                    f"server process {pid} disconnected"))

    async def _rpc(self, pid: int, obj: dict[str, Any], *,
                   timeout: Optional[float] = None) -> dict[str, Any]:
        writer = self._writers.get(pid)
        if writer is None or writer.is_closing():
            raise ConnectionError(f"no control channel to server {pid}")
        self._req_counter += 1
        req = self._req_counter
        future: asyncio.Future[dict[str, Any]] = \
            asyncio.get_running_loop().create_future()
        self._pending[(pid, req)] = future
        writer.write(encode_frame(dict(obj, req=req)))
        await writer.drain()
        if timeout is not None:
            return await asyncio.wait_for(future, timeout)
        return await future

    # ------------------------------------------------------------------ #
    # Membership / introspection (mirrors LocalCluster)
    # ------------------------------------------------------------------ #
    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self.nodes))

    @property
    def alive_members(self) -> tuple[int, ...]:
        return tuple(pid for pid in self.members if pid not in self._failed)

    def _live_nodes(self) -> list[_ProcessNode]:
        return [self.nodes[pid] for pid in self.alive_members]

    def next_seq(self, server_id: int) -> int:
        return self._seq[server_id]

    # ------------------------------------------------------------------ #
    # Application API
    # ------------------------------------------------------------------ #
    async def submit(self, server_id: int, data: Any, *,
                     nbytes: int = 64) -> None:
        await self.submit_request(
            Request(origin=server_id, seq=self._seq[server_id],
                    nbytes=nbytes, data=data))

    async def submit_request(self, request: Request) -> None:
        self._seq[request.origin] = max(self._seq[request.origin],
                                        request.seq + 1)
        await self._rpc(request.origin,
                        {"type": "submit",
                         "request": request_to_json(request)})

    async def submit_requests(self, origin: int,
                              requests: Iterable[Request]) -> None:
        """Bulk submit at one origin — one control frame for the whole
        sequence (the benchmark pre-loads thousands of requests; one RPC
        per request would dominate the measurement)."""
        rows: list[dict[str, Any]] = []
        for request in requests:
            self._seq[request.origin] = max(self._seq[request.origin],
                                            request.seq + 1)
            rows.append(request_to_json(request))
        if rows:
            await self._rpc(origin, {"type": "submit_many",
                                     "requests": rows})

    # ------------------------------------------------------------------ #
    # Failure operations
    # ------------------------------------------------------------------ #
    async def _join_proc(self, pid: int, timeout: float = 5.0) -> None:
        proc = self._procs.get(pid)
        if proc is None:
            return
        deadline = time.monotonic() + timeout
        while proc.is_alive() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if proc.is_alive():
            proc.terminate()
            deadline = time.monotonic() + 2.0
            while proc.is_alive() and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        if proc.is_alive():     # pragma: no cover - last resort
            proc.kill()
        proc.join(timeout=1.0)

    async def _shutdown_child(self, pid: int, timeout: float = 5.0) -> None:
        try:
            await self._rpc(pid, {"type": "stop"}, timeout=timeout)
        except (ConnectionError, RuntimeError, asyncio.TimeoutError,
                TimeoutError):
            pass
        await self._join_proc(pid, timeout)

    async def fail(self, server_id: int) -> None:
        """Fail-stop *server_id*: its process is shut down and every
        monitor is notified deterministically (same contract as
        ``LocalCluster.fail``)."""
        if server_id in self._failed:
            return
        self._failed.add(server_id)
        await self._shutdown_child(server_id)
        for pid in self.alive_members:
            await self._rpc(pid, {"type": "mark_down", "peer": server_id})
            if server_id in set(self.graph.predecessors(pid)):
                await self._rpc(pid, {"type": "notify_failure",
                                      "suspect": server_id})

    # ------------------------------------------------------------------ #
    # Round driving
    # ------------------------------------------------------------------ #
    async def run_rounds(self, rounds: int, *, timeout: float = 30.0
                         ) -> list[dict[int, DeliveredRound]]:
        """Run *rounds* full rounds and return, per round, the delivery
        record of every live node.

        The round-driving loop runs inside each child: the parent computes
        ONE absolute delivered-round target, sends it to every child in a
        single ``run`` command, and collects the streamed deliveries — so
        steady-state throughput never waits on control round-trips, and
        every child issues exactly the broadcasts its slowest peer needs
        (see :func:`_run_until`)."""
        results: list[dict[int, DeliveredRound]] = []
        live = self.alive_members
        if not live or rounds <= 0:
            return results
        base = min(self.nodes[pid].delivered_rounds for pid in live)
        child_timeout = timeout * rounds
        guard = child_timeout + 30.0
        replies = await asyncio.gather(*(
            self._rpc(pid, {"type": "run", "until": base + rounds,
                            "timeout": child_timeout}, timeout=guard)
            for pid in live))
        for pid, reply in zip(live, replies):
            self.nodes[pid].broadcast_rounds = reply.get(
                "broadcast_rounds", self.nodes[pid].broadcast_rounds)
        for idx in range(rounds):
            per_node: dict[int, DeliveredRound] = {}
            for pid in self.alive_members:
                per_node[pid] = await self.nodes[pid].wait_for_round(
                    base + idx, timeout=timeout)
            results.append(per_node)
        return results

    # ------------------------------------------------------------------ #
    # Agreement
    # ------------------------------------------------------------------ #
    def agreement_holds(self) -> bool:
        """Every live node delivered identical message sequences for the
        rounds it completed (digest-for-digest in ``report="digest"``
        mode)."""
        nodes = self._live_nodes()
        digest_mode = self.report == "digest"
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                common = min(a.delivered_rounds, b.delivered_rounds)
                for r in range(common):
                    da, db = a.delivered[r], b.delivered[r]
                    if da.round != db.round:
                        return False
                    if digest_mode:
                        if a.digests[r] != b.digests[r]:
                            return False
                        continue
                    if [(o, batch.count,
                         tuple(req.data for req in batch.requests))
                            for o, batch in da.messages] != \
                       [(o, batch.count,
                         tuple(req.data for req in batch.requests))
                            for o, batch in db.messages]:
                        return False
        return True
