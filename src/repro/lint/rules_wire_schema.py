"""W601: wire-schema parity across planes + committed-lockfile drift gate.

The runtime speaks two wire planes that must carry identical per-kind
schemas: the binary marshal envelopes of ``repro.runtime.wire``
(``_K_*`` flat tuples) and the JSON envelopes of ``repro.runtime.
framing`` (the differential oracle).  A field added to one plane but
not the other mis-decodes in mixed-codec clusters; a field added to
*both* without bumping ``WIRE_VERSION`` mis-decodes in mixed-**version**
clusters mid-reshard — exactly the deployment the elastic-sharding
roadmap item creates.  W601 extracts both schemas statically from the
AST and checks, in order:

1. **binary parity** — the ``_frame((_K_X, ...))`` encode tuple of each
   kind against its tuple-unpack in the decoder (positional, with
   ``rnd``→``round`` style spelling normalisation);
2. **JSON parity** — the per-``isinstance`` dict keys of
   ``encode_message`` against the constructor kwargs + preamble reads of
   ``decode_message`` (plus the request-row helpers);
3. **cross-plane parity** — binary kinds joined to JSON kinds via the
   message class each decoder constructs (batch fields ``count/nbytes/
   rows`` collapse to the JSON ``payload`` envelope);
4. **the drift gate** — the extracted schema against the committed
   ``wire_schema.lock.json`` next to the wire module: any difference at
   an unchanged ``WIRE_VERSION`` fails (bump the version), and a bumped
   version with a stale lockfile fails (run
   ``python -m repro.lint --regen-wire-lock``).

The lockfile checks only engage for the real ``wire.py`` (by basename),
so snippet fixtures exercise the parity logic without dragging the
repository lockfile into scope.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Any, Iterable, Optional

from .callgraph import FunctionInfo, ModuleInfo, Program, _body_walk
from .findings import Finding
from .names import dotted_name
from .registry import ProgramContext, program_rule

__all__ = ["extract_schema", "lockfile_path_for", "regenerate_lockfile",
           "LOCKFILE_NAME"]

LOCKFILE_NAME = "wire_schema.lock.json"

#: decode-side local spellings -> canonical field names
_NORMALIZE = {"rnd": "round", "from": "sender", "r": "round"}

#: binary batch fields that the JSON plane nests under one envelope key
_BATCH_FLATTEN = {"count": "payload", "nbytes": "payload",
                  "rows": "payload", "requests": "payload"}


def _norm(name: str) -> str:
    return _NORMALIZE.get(name, name)


def _module_functions(program: Program,
                      module: str) -> list[FunctionInfo]:
    return [fn for fn in program.functions.values()
            if fn.module == module]


# --------------------------------------------------------------------- #
# Binary plane extraction
# --------------------------------------------------------------------- #

def _find_binary_module(
        program: Program) -> Optional[tuple[ModuleInfo, ast.Assign]]:
    """The module assigning ``WIRE_VERSION`` at top level, plus the
    assignment node (finding anchor + version value)."""
    for module in sorted(program.modules):
        info = program.modules[module]
        for node in info.tree.body:
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Name)
                            and t.id == "WIRE_VERSION"
                            for t in node.targets):
                return info, node
    return None


def _binary_encode_fields(program: Program,
                          module: str) -> tuple[dict[str, list[str]],
                                                Optional[list[str]]]:
    """Per-kind field lists from every ``_frame((_K_X, ...))`` call, and
    the request-row sub-schema from the tuple-of-attributes comprehension
    in the same function (``(r.origin, r.seq, ...) for r in ...``)."""
    kinds: dict[str, list[str]] = {}
    row: Optional[list[str]] = None
    for fn in _module_functions(program, module):
        has_frame = False
        for node in _body_walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.rsplit(".", 1)[-1] != "_frame":
                continue
            if not node.args or not isinstance(node.args[0], ast.Tuple):
                continue
            elts = node.args[0].elts
            if not elts or not isinstance(elts[0], ast.Name) \
                    or not elts[0].id.startswith("_K_"):
                continue
            has_frame = True
            fields: list[str] = []
            for idx, elt in enumerate(elts[1:], start=1):
                if isinstance(elt, ast.Name):
                    fields.append(_norm(elt.id))
                elif isinstance(elt, ast.Attribute):
                    fields.append(_norm(elt.attr))
                else:
                    fields.append(f"?{idx}")
            kinds[elts[0].id[3:]] = fields
        if not has_frame:
            continue
        for node in _body_walk(fn.node):
            if not isinstance(node, (ast.GeneratorExp, ast.ListComp)):
                continue
            elt = node.elt
            if isinstance(elt, ast.Tuple) and len(elt.elts) >= 2 \
                    and all(isinstance(e, ast.Attribute)
                            for e in elt.elts):
                row = [_norm(e.attr) for e in elt.elts]  # type: ignore[union-attr]
    return kinds, row


def _binary_decode_fields(program: Program, module: str,
                          ) -> tuple[dict[str, list[str]],
                                     dict[str, str],
                                     Optional[list[str]]]:
    """Per-kind decode fields (tuple unpack of the envelope parameter,
    or ``env[i]`` positional reads), the kind -> constructed message
    class map, and the request-row kwargs of the
    ``__dict__.update(origin=..., seq=...)`` fast path."""
    kinds: dict[str, list[str]] = {}
    classes: dict[str, str] = {}
    row: Optional[list[str]] = None
    for fn in _module_functions(program, module):
        tests = [node for node in _body_walk(fn.node)
                 if isinstance(node, ast.If)
                 and isinstance(node.test, ast.Compare)
                 and len(node.test.comparators) == 1
                 and isinstance(node.test.comparators[0], ast.Name)
                 and node.test.comparators[0].id.startswith("_K_")]
        if not tests:
            continue
        args = fn.node.args
        env_name = (args.posonlyargs + args.args)[0].arg \
            if (args.posonlyargs + args.args) else None
        for branch in tests:
            kind = branch.test.comparators[0].id[3:]  # type: ignore[attr-defined]
            fields: Optional[list[str]] = None
            indices: set[int] = set()
            for node in (n for stmt in branch.body
                         for n in ast.walk(stmt)):
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Tuple) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == env_name \
                        and all(isinstance(e, ast.Name)
                                for e in node.targets[0].elts):
                    names = [e.id for e in node.targets[0].elts]  # type: ignore[union-attr]
                    fields = [_norm(n) for n in names[1:]]
                elif isinstance(node, ast.Subscript) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == env_name \
                        and isinstance(node.slice, ast.Constant) \
                        and isinstance(node.slice.value, int) \
                        and node.slice.value > 0:
                    indices.add(node.slice.value)
                elif isinstance(node, ast.Return) \
                        and isinstance(node.value, ast.Tuple) \
                        and len(node.value.elts) == 2 \
                        and isinstance(node.value.elts[1], ast.Call):
                    cls = dotted_name(node.value.elts[1].func)
                    if cls is not None:
                        classes[kind] = cls.rsplit(".", 1)[-1]
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "update" \
                        and isinstance(node.func.value, ast.Attribute) \
                        and node.func.value.attr == "__dict__":
                    kwargs = [kw.arg for kw in node.keywords
                              if kw.arg is not None]
                    if "seq" in kwargs:
                        row = [_norm(k) for k in kwargs]
            if fields is None and indices:
                fields = [f"?{i}" for i in sorted(indices)]
            if fields is not None:
                kinds[kind] = fields
    return kinds, classes, row


# --------------------------------------------------------------------- #
# JSON plane extraction
# --------------------------------------------------------------------- #

def _dict_keys(node: ast.Dict) -> list[str]:
    """String keys of a dict literal, recursing into ``**{...}`` splats
    (including the conditional ``**({...} if cond else {})`` idiom)."""
    keys: list[str] = []
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        elif key is None:           # ** splat: scan for nested dicts
            for sub in ast.walk(value):
                if isinstance(sub, ast.Dict):
                    keys.extend(_dict_keys(sub))
    return keys


def _find_json_encoder(program: Program, binary_module: str,
                       ) -> Optional[FunctionInfo]:
    for qname in sorted(program.functions):
        fn = program.functions[qname]
        if fn.name != "encode_message" or fn.module == binary_module:
            continue
        for node in _body_walk(fn.node):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Dict) \
                    and "type" in _dict_keys(node.value):
                return fn
    return None


def _json_encode_fields(fn: FunctionInfo) -> dict[str, list[str]]:
    """Per message-class field lists from the ``isinstance`` branches."""
    out: dict[str, list[str]] = {}
    for node in _body_walk(fn.node):
        if not isinstance(node, ast.If) \
                or not isinstance(node.test, ast.Call):
            continue
        test = node.test
        if not (isinstance(test.func, ast.Name)
                and test.func.id == "isinstance"
                and len(test.args) == 2):
            continue
        cls = dotted_name(test.args[1])
        if cls is None:
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) \
                    and isinstance(sub.value, ast.Dict):
                fields = [_norm(k) for k in _dict_keys(sub.value)
                          if k != "type"]
                out[cls.rsplit(".", 1)[-1]] = fields
    return out


def _json_decode_fields(program: Program,
                        module: str) -> dict[str, set[str]]:
    """Per message-class decode fields of ``decode_message``: the
    constructor kwargs of each kind branch plus the preamble's
    ``obj[...]`` reads (sender/round are unpacked before dispatch)."""
    fn = program.functions.get(f"{module}.decode_message")
    if fn is None:
        return {}
    args = fn.node.args
    params = args.posonlyargs + args.args
    obj_name = params[0].arg if params else None

    def obj_reads(root: ast.AST) -> set[str]:
        reads: set[str] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == obj_name \
                    and isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                reads.add(_norm(node.slice.value))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == obj_name \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                reads.add(_norm(node.args[0].value))
        return reads

    preamble: set[str] = set()
    out: dict[str, set[str]] = {}
    for stmt in fn.node.body:
        if isinstance(stmt, ast.If):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Return) \
                        or not isinstance(node.value, ast.Tuple) \
                        or len(node.value.elts) != 2 \
                        or not isinstance(node.value.elts[1], ast.Call):
                    continue
                ctor = node.value.elts[1]
                cls = dotted_name(ctor.func)
                if cls is None:
                    continue
                fields = {_norm(kw.arg) for kw in ctor.keywords
                          if kw.arg is not None}
                fields |= obj_reads(node) | preamble
                fields.discard("type")   # the discriminator, not a field
                out[cls.rsplit(".", 1)[-1]] = fields
        else:
            preamble |= obj_reads(stmt)
    return out


def _json_row_fields(program: Program, module: str,
                     ) -> tuple[Optional[list[str]], Optional[set[str]]]:
    """Request-row fields of the JSON plane: the dict keys of
    ``request_to_json`` and the ``obj[...]``/``obj.get(...)`` reads of
    ``request_from_json``."""
    encode: Optional[list[str]] = None
    decode: Optional[set[str]] = None
    to_json = program.functions.get(f"{module}.request_to_json")
    if to_json is not None:
        for node in _body_walk(to_json.node):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Dict):
                encode = [_norm(k) for k in _dict_keys(node.value)]
    from_json = program.functions.get(f"{module}.request_from_json")
    if from_json is not None:
        params = (from_json.node.args.posonlyargs
                  + from_json.node.args.args)
        obj_name = params[0].arg if params else None
        decode = set()
        for node in _body_walk(from_json.node):
            if isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == obj_name \
                    and isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                decode.add(_norm(node.slice.value))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == obj_name \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                decode.add(_norm(node.args[0].value))
    return encode, decode


# --------------------------------------------------------------------- #
# Schema assembly + lockfile
# --------------------------------------------------------------------- #

def extract_schema(program: Program) -> Optional[dict[str, Any]]:
    """The canonical wire schema of *program*, or None when no binary
    wire module (``WIRE_VERSION`` assignment) is present.

    Shape (what the lockfile commits)::

        {"wire_version": 1,
         "binary": {"BCAST": {"encode": [...], "decode": [...]}, ...,
                    "ROW": {...}},
         "json":   {"Broadcast": {"encode": [...], "decode": [...]}, ...,
                    "ROW": {...}}}
    """
    found = _find_binary_module(program)
    if found is None:
        return None
    info, version_node = found
    version = version_node.value.value \
        if isinstance(version_node.value, ast.Constant) else None
    enc_kinds, enc_row = _binary_encode_fields(program, info.module)
    dec_kinds, _classes, dec_row = _binary_decode_fields(
        program, info.module)

    binary: dict[str, Any] = {}
    for kind in sorted(set(enc_kinds) | set(dec_kinds)):
        entry: dict[str, Any] = {}
        if kind in enc_kinds:
            entry["encode"] = enc_kinds[kind]
        if kind in dec_kinds:
            entry["decode"] = dec_kinds[kind]
        binary[kind] = entry
    if enc_row is not None or dec_row is not None:
        row_entry: dict[str, Any] = {}
        if enc_row is not None:
            row_entry["encode"] = enc_row
        if dec_row is not None:
            row_entry["decode"] = dec_row
        binary["ROW"] = row_entry

    json_plane: dict[str, Any] = {}
    encoder = _find_json_encoder(program, info.module)
    if encoder is not None:
        json_enc = _json_encode_fields(encoder)
        json_dec = _json_decode_fields(program, encoder.module)
        for cls in sorted(set(json_enc) | set(json_dec)):
            entry = {}
            if cls in json_enc:
                entry["encode"] = json_enc[cls]
            if cls in json_dec:
                entry["decode"] = sorted(json_dec[cls])
            json_plane[cls] = entry
        row_enc, row_dec = _json_row_fields(program, encoder.module)
        if row_enc is not None or row_dec is not None:
            entry = {}
            if row_enc is not None:
                entry["encode"] = row_enc
            if row_dec is not None:
                entry["decode"] = sorted(row_dec)
            json_plane["ROW"] = entry

    return {"wire_version": version, "binary": binary,
            "json": json_plane}


def lockfile_path_for(program: Program) -> Optional[str]:
    """Where the lockfile lives: next to the binary wire module."""
    found = _find_binary_module(program)
    if found is None:
        return None
    return os.path.join(os.path.dirname(found[0].path), LOCKFILE_NAME)


def regenerate_lockfile(paths: Iterable[str]) -> Optional[str]:
    """Extract the schema from *paths* and (re)write the lockfile;
    returns its path, or None when no wire module was found."""
    from .analyzer import iter_python_files
    from .astcache import default_cache
    from .policy import module_of_path

    files = []
    for file_path in iter_python_files(list(paths)):
        try:
            parsed = default_cache().parse(file_path)
        except (SyntaxError, OSError, UnicodeDecodeError):
            continue
        files.append((module_of_path(file_path), parsed))
    program = Program.build(files)
    schema = extract_schema(program)
    lock_path = lockfile_path_for(program)
    if schema is None or lock_path is None:
        return None
    with open(lock_path, "w", encoding="utf-8") as handle:
        json.dump(schema, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return lock_path


# --------------------------------------------------------------------- #
# The rule
# --------------------------------------------------------------------- #

def _fields_match(a: list[str], b: list[str]) -> bool:
    """Positional comparison; positions extracted only by arity (``?i``)
    match any name at that position."""
    if len(a) != len(b):
        return False
    return all(x == y or x.startswith("?") or y.startswith("?")
               for x, y in zip(a, b))


def _flatten(fields: Iterable[str]) -> set[str]:
    return {_BATCH_FLATTEN.get(f, f) for f in fields}


@program_rule(
    "W601",
    summary="wire-schema drift: binary/JSON planes disagree on a "
            "kind's fields, or the schema changed without a "
            "WIRE_VERSION bump against wire_schema.lock.json (mixed-"
            "version clusters mid-reshard would mis-decode)",
    example="_frame((_K_FWD, sender, fwd.round))   "
            "# decoder unpacks _k, sender, rnd, origin")
def check_wire_schema(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    found = _find_binary_module(program)
    if found is None:
        return
    info, version_node = found
    schema = extract_schema(program)
    assert schema is not None

    binary = schema["binary"]
    for kind in sorted(binary):
        if kind == "ROW":
            continue
        entry = binary[kind]
        enc, dec = entry.get("encode"), entry.get("decode")
        if enc is None or dec is None:
            side = "encoded" if dec is None else "decoded"
            yield pctx.finding(
                "W601", info.path, version_node,
                f"binary kind _K_{kind} is {side} but not "
                f"{'decoded' if side == 'encoded' else 'encoded'}: "
                f"one direction of the wire cannot carry it")
        elif not _fields_match(enc, dec):
            yield pctx.finding(
                "W601", info.path, version_node,
                f"binary kind _K_{kind} encodes fields ({', '.join(enc)}) "
                f"but decodes ({', '.join(dec)}): envelope tuple and "
                f"unpack disagree")
    row = binary.get("ROW", {})
    if row.get("encode") is not None and row.get("decode") is not None \
            and not _fields_match(row["encode"], row["decode"]):
        yield pctx.finding(
            "W601", info.path, version_node,
            f"binary request row encodes ({', '.join(row['encode'])}) "
            f"but decodes ({', '.join(row['decode'])})")

    json_plane = schema["json"]
    json_info = None
    encoder = _find_json_encoder(program, info.module)
    if encoder is not None:
        json_info = program.modules.get(encoder.module)
    for cls in sorted(json_plane):
        entry = json_plane[cls]
        enc, dec = entry.get("encode"), entry.get("decode")
        if enc is None or dec is None:
            continue                # helper pair absent: nothing to diff
        if set(enc) != set(dec):
            anchor = encoder.node if encoder is not None else version_node
            path = json_info.path if json_info is not None else info.path
            yield pctx.finding(
                "W601", path, anchor,
                f"JSON plane: {cls} encodes fields "
                f"({', '.join(sorted(set(enc)))}) but decodes "
                f"({', '.join(sorted(set(dec)))})")

    # Cross-plane: join binary kinds to JSON classes via the message
    # class each binary decode branch constructs.
    _dec_kinds, kind_classes, _row = _binary_decode_fields(
        program, info.module)
    for kind in sorted(kind_classes):
        cls = kind_classes[kind]
        bin_entry = binary.get(kind, {})
        json_entry = json_plane.get(cls, {})
        bin_fields = bin_entry.get("decode") or bin_entry.get("encode")
        json_fields = json_entry.get("encode") \
            or json_entry.get("decode")
        if bin_fields is None or json_fields is None:
            continue
        if any(f.startswith("?") for f in bin_fields):
            continue                # positional-only: arity checked above
        if _flatten(bin_fields) != _flatten(json_fields):
            yield pctx.finding(
                "W601", info.path, version_node,
                f"cross-plane drift for {cls}: binary _K_{kind} carries "
                f"({', '.join(sorted(_flatten(bin_fields)))}) but the "
                f"JSON plane carries "
                f"({', '.join(sorted(_flatten(json_fields)))}); every "
                f"field must ride both planes or neither")
    bin_row = binary.get("ROW", {})
    json_row = json_plane.get("ROW", {})
    if bin_row.get("encode") and json_row.get("encode") \
            and set(bin_row["encode"]) != set(json_row["encode"]):
        yield pctx.finding(
            "W601", info.path, version_node,
            f"cross-plane drift for request rows: binary carries "
            f"({', '.join(sorted(bin_row['encode']))}) but JSON carries "
            f"({', '.join(sorted(json_row['encode']))})")

    # The lockfile gate — only for the real wire module, so snippet
    # fixtures (module='repro.runtime.fixture', path under a tmp dir or
    # the repo src/) never read or demand the repository lockfile.
    if os.path.basename(info.path) != "wire.py":
        return
    lock_path = os.path.join(os.path.dirname(info.path), LOCKFILE_NAME)
    if not os.path.exists(lock_path):
        yield pctx.finding(
            "W601", info.path, version_node,
            f"no committed {LOCKFILE_NAME} next to the wire module: "
            f"run `python -m repro.lint --regen-wire-lock` and commit "
            f"the result so schema drift is diffable")
        return
    try:
        with open(lock_path, "r", encoding="utf-8") as handle:
            locked = json.load(handle)
    except (OSError, ValueError) as exc:
        yield pctx.finding(
            "W601", info.path, version_node,
            f"unreadable {LOCKFILE_NAME}: {exc}; regenerate it with "
            f"`python -m repro.lint --regen-wire-lock`")
        return
    if locked == schema:
        return
    if locked.get("wire_version") == schema["wire_version"]:
        drifted = sorted(
            set(_drift_keys(locked.get("binary", {}), binary))
            | set(_drift_keys(locked.get("json", {}), json_plane)))
        yield pctx.finding(
            "W601", info.path, version_node,
            f"wire schema drifted from {LOCKFILE_NAME} without a "
            f"WIRE_VERSION bump (changed: {', '.join(drifted) or '?'}): "
            f"mixed-version clusters would mis-decode; bump "
            f"WIRE_VERSION and run "
            f"`python -m repro.lint --regen-wire-lock`")
    else:
        yield pctx.finding(
            "W601", info.path, version_node,
            f"WIRE_VERSION is {schema['wire_version']} but "
            f"{LOCKFILE_NAME} records "
            f"{locked.get('wire_version')}: the lockfile is stale; "
            f"run `python -m repro.lint --regen-wire-lock`")


def _drift_keys(old: dict[str, Any], new: dict[str, Any]) -> list[str]:
    return [k for k in sorted(set(old) | set(new))
            if old.get(k) != new.get(k)]
