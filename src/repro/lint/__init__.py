"""Determinism & concurrency static analysis for the AllConcur repro.

The whole correctness story of this reproduction rests on two properties
the test suite can only probe, never prove:

* **Determinism** — the differential oracles (bitmask vs set data plane,
  dirty-set vs full-scan ingress, binary vs JSON codec) demand
  byte-identical agreed logs across runs and backends, so nothing in the
  protocol core, the simulator, or the overlay-graph constructors may
  consult wall clocks, process-global RNGs, or allocation-dependent
  orderings.
* **Async discipline** — the TCP runtime has shipped two hand-found
  concurrency bugs of *recurring classes*: untracked
  ``asyncio.create_task`` handlers leaking across ``stop()`` (fixed in
  PR 3) and a dial-retry loop awaiting network I/O while holding the
  node lock for ~41 s (fixed in PR 6).

This package encodes those repo-specific invariants as AST rules (stdlib
``ast`` only, no new runtime dependencies) so the *class* of each bug is
caught statically, not the instance by incident.  Run it with::

    python -m repro.lint src/            # text report, exit 1 on findings
    python -m repro.lint src/ --format=json
    python -m repro.lint --list-rules    # self-documenting rule catalog

Findings are suppressed per line with ``# lint: ignore[RULE-ID] reason``;
a suppression without a reason, naming an unknown rule, or matching no
finding is itself a finding (S901/S902/S903), so the suppression
inventory cannot rot.  Which rules apply to which modules — and the two
deliberate allowances (the simulator's seeded ``random.Random(seed)``
and the frozen-dataclass fast path in ``repro.runtime.wire``) — live in
:mod:`repro.lint.policy`, not in scattered suppressions.
"""

from .findings import Finding, Severity
from .policy import DEFAULT_POLICY, Policy
from .registry import Rule, all_rules, get_rule
from .analyzer import lint_paths, lint_source

__all__ = [
    "Finding",
    "Severity",
    "Policy",
    "DEFAULT_POLICY",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
]
