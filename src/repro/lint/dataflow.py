"""Whole-program dataflow rules: D201, A301, L401.

All three rules walk the :class:`~repro.lint.callgraph.Program` built by
the analyzer, which is what separates them from their lexical cousins:

* **D201** is a conservative taint analysis.  *Sources* are the same
  non-determinism primitives D101–D103 match (wall clock, OS entropy,
  the process-global RNG, ``id()``) plus interprocedural set-order
  escapes (``list(f())`` where ``f`` returns a set — the shape D104's
  per-scope inference provably cannot see).  Taint propagates through
  assignments, arbitrary expressions, and calls via per-function
  summaries iterated to a fixpoint: a callee's return carries its
  ``ret_sources`` back to the caller, and a callee that stores a
  parameter into agreed state (``params_to_sink``) turns every call
  passing it a tainted argument into a finding.  *Sinks* are the places
  a value becomes agreed state: the return of a ``StateMachine.apply``
  method, ``RoundContext`` field stores and constructor arguments, and
  wire envelope constructors (``Broadcast``/``Request``/…).  A finding
  means "this run-dependent value ends up in state every server must
  agree on byte-for-byte".

* **A301** finds ``async def`` functions that *reach* a blocking
  primitive (A202's table) through any resolved call chain — A202 keeps
  the direct, in-function case; A301 reports at the call site that
  enters the chain, naming it.

* **L401** finds a lock held at a call site whose *callee chain* awaits
  slow I/O — the PR 6 ``_connect`` shape one (or more) function deeper,
  which lexical L301 provably misses because the slow await is in a
  different function body than the ``async with lock:``.

Taint and reachability both under-approximate where the call graph
does (unresolved calls get no edges), so every finding is actionable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from .callgraph import FunctionInfo, CallSite, Program, _body_walk
from .findings import Finding
from .names import dotted_name
from .registry import ProgramContext, program_rule
from .rules_asyncio import _BLOCKING, _BLOCKING_BUILTINS
from .rules_determinism import _ENTROPY, _SEEDED_RNG, _WALL_CLOCK
from .rules_locks import (_awaits_in_body, _is_lock_context,
                          _slow_await_target)

__all__ = ["FunctionSummary", "TaintEngine", "attrs_into_return"]

#: wire/effect envelope constructors — positional or keyword payloads
#: of these become bytes every server must decode identically
_ENVELOPE_CLASSES = frozenset({
    "Request", "Batch", "Broadcast", "FailureNotice", "Forward",
    "Backward", "Send", "Deliver",
})

#: classes whose fields are agreed per-round state
_ROUND_STATE_CLASSES = frozenset({"RoundContext"})

_SET_CTORS = frozenset({"set", "frozenset"})
#: wrappers that freeze arbitrary set order into a sequence
_ORDER_FREEZERS = frozenset({"list", "tuple"})


# --------------------------------------------------------------------- #
# Return flow (S601: which attributes a snapshot actually captures)
# --------------------------------------------------------------------- #

def attrs_into_return(fn: FunctionInfo) -> set[str]:
    """``self.<attr>`` names whose values can flow into *fn*'s return.

    Lexical + local forward flow: a ``self.X`` read directly inside a
    ``return`` expression counts, and so does one routed through locals
    (``top = max(self.heights.values()); return {..: top}``) — iterated a
    few passes so short chains converge, exactly like the taint
    environments.  Over-approximates (any read of a carried local counts),
    which is the safe direction for a completeness check: an attribute is
    only reported *missing* when no read can reach the return."""
    carried: dict[str, set[str]] = {}

    def attrs_in(expr: ast.expr) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                out.add(node.attr)
            elif isinstance(node, ast.Name) and node.id in carried:
                out |= carried[node.id]
        return out

    bindings: list[tuple[tuple[str, ...], ast.expr]] = []
    returns: list[ast.expr] = []
    for node in _body_walk(fn.node):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if node.value is not None:
                targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets, value = [node.target], node.iter
        elif isinstance(node, ast.Return) and node.value is not None:
            returns.append(node.value)
        if value is None:
            continue
        binds = tuple(n for t in targets for n in _binding_names(t))
        if binds:
            bindings.append((binds, value))

    for _ in range(3):              # converge short assignment chains
        for binds, value in bindings:
            attrs = attrs_in(value)
            if attrs:
                for name in binds:
                    carried.setdefault(name, set()).update(attrs)

    captured: set[str] = set()
    for value in returns:
        captured |= attrs_in(value)
    return captured


# --------------------------------------------------------------------- #
# Sink sites (shared by the taint engine and the D201 reporter)
# --------------------------------------------------------------------- #

@dataclass
class SinkSite:
    """One place inside a function where a value becomes agreed state."""

    node: ast.AST                 #: node the finding anchors to
    exprs: tuple[ast.expr, ...]   #: the value expression(s) flowing in
    describe: str                 #: "stored into RoundContext.known" …


def _class_name_of(qname: Optional[str],
                   program: Program) -> Optional[str]:
    if qname is None:
        return None
    cls = program.classes.get(qname)
    return cls.name if cls is not None else None


def _attr_target_class(target: ast.Attribute, fn: FunctionInfo,
                       program: Program) -> Optional[str]:
    """Simple class name of the object a ``x.field = ...`` store hits."""
    base = target.value
    if isinstance(base, ast.Name):
        if base.id in ("self", "cls") and fn.class_qname is not None:
            return _class_name_of(fn.class_qname, program)
        return _class_name_of(fn.local_classes.get(base.id), program)
    if isinstance(base, ast.Attribute) \
            and isinstance(base.value, ast.Name) \
            and base.value.id == "self" and fn.class_qname is not None:
        cls = program.classes.get(fn.class_qname)
        if cls is not None:
            return _class_name_of(cls.attr_classes.get(base.attr),
                                  program)
    return None


def state_sinks(fn: FunctionInfo, program: Program) -> Iterator[SinkSite]:
    """Agreed-state sinks lexically inside *fn* (not counting calls to
    other sink-reaching functions — the engine handles those)."""
    for node in _body_walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                cls_name = _attr_target_class(target, fn, program)
                if cls_name in _ROUND_STATE_CLASSES:
                    yield SinkSite(
                        node=node, exprs=(node.value,),
                        describe=f"stored into {cls_name}."
                                 f"{target.attr} (round state must be "
                                 f"identical on every server)")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            ctor = name.rsplit(".", 1)[-1]
            if ctor not in _ENVELOPE_CLASSES \
                    and ctor not in _ROUND_STATE_CLASSES:
                continue
            args = tuple(node.args) + tuple(
                kw.value for kw in node.keywords)
            if args:
                yield SinkSite(
                    node=node, exprs=args,
                    describe=f"passed to {ctor}(...) (envelope/round "
                             f"payloads are agreed state)")


def _is_apply_sink(fn: FunctionInfo, program: Program) -> bool:
    """True for ``apply`` methods of StateMachine-shaped classes (the
    class also defines ``snapshot`` — the repo's replicated-SM shape)."""
    if fn.name != "apply" or fn.class_qname is None:
        return False
    cls = program.classes.get(fn.class_qname)
    return cls is not None and "snapshot" in cls.methods


# --------------------------------------------------------------------- #
# Function summaries + taint evaluation
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FunctionSummary:
    """What a caller needs to know about a callee, from its body alone."""

    #: source labels that reach the function's return value
    ret_sources: frozenset[str] = frozenset()
    #: True when the return value is (or may be) a set/frozenset
    returns_set: bool = False
    #: True when a parameter's value can reach an agreed-state sink
    #: inside this function or anything it calls
    params_to_sink: bool = False


def _direct_source(site: CallSite) -> Optional[str]:
    """Source label when *site* is a non-determinism primitive itself."""
    name = site.external
    if name is None:
        return None
    if name in _WALL_CLOCK:
        return name
    if name in _ENTROPY or name.startswith("secrets."):
        return name
    if name.startswith("random.") and name not in _SEEDED_RNG:
        return name
    return None


def _is_id_call(node: ast.Call) -> bool:
    return (isinstance(node.func, ast.Name) and node.func.id == "id"
            and len(node.args) == 1)


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Local names an assignment target actually binds.  Attribute and
    subscript targets bind nothing locally — and a subscript *index*
    (``self._seen[key] = tainted``) must not taint ``key``."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _param_names(fn: FunctionInfo) -> set[str]:
    args = fn.node.args
    names = {a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)}
    names.discard("self")
    names.discard("cls")
    return names


@dataclass
class _ExprFacts:
    """One expression, pre-walked: the names and calls taint can enter
    through.  Built once so the fixpoint never re-walks an AST."""

    expr: ast.expr
    names: tuple[str, ...]
    calls: tuple[ast.Call, ...]


def _expr_facts(expr: ast.expr) -> _ExprFacts:
    names: list[str] = []
    calls: list[ast.Call] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Call):
            calls.append(node)
    return _ExprFacts(expr=expr, names=tuple(names), calls=tuple(calls))


@dataclass
class _StmtFacts:
    """One binding statement (assign / for-target)."""

    binds: tuple[str, ...]
    value: _ExprFacts


@dataclass
class _FnFacts:
    """Everything the engine revisits per fixpoint round, walked once."""

    stmts: tuple[_StmtFacts, ...]
    returns: tuple[_ExprFacts, ...]
    sinks: tuple[tuple[SinkSite, tuple[_ExprFacts, ...]], ...]
    #: resolved call sites with per-argument facts (for params_to_sink
    #: propagation and the D201 call-argument sink)
    call_args: tuple[tuple[CallSite, tuple[_ExprFacts, ...]], ...]


def _build_facts(fn: FunctionInfo, program: Program) -> _FnFacts:
    stmts: list[_StmtFacts] = []
    returns: list[_ExprFacts] = []
    for node in _body_walk(fn.node):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if node.value is not None:
                targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets, value = [node.target], node.iter
        elif isinstance(node, ast.Return) and node.value is not None:
            returns.append(_expr_facts(node.value))
        if value is None:
            continue
        binds = tuple(n for t in targets for n in _binding_names(t))
        if binds:
            stmts.append(_StmtFacts(binds=binds,
                                    value=_expr_facts(value)))
    sinks = tuple(
        (sink, tuple(_expr_facts(e) for e in sink.exprs))
        for sink in state_sinks(fn, program))
    call_args = tuple(
        (site, tuple(_expr_facts(a) for a in (
            list(site.node.args)
            + [kw.value for kw in site.node.keywords])))
        for site in fn.calls if site.callee is not None)
    return _FnFacts(stmts=tuple(stmts), returns=tuple(returns),
                    sinks=sinks, call_args=call_args)


class TaintEngine:
    """Per-function taint environments over whole-program summaries.

    Flow-insensitive on purpose: an environment maps each local name to
    the union of source labels any assignment gives it, iterated a few
    passes so chains (``a = t(); b = a``) converge.  Summaries are then
    driven to a fixpoint across the *program* with a worklist (a changed
    callee re-queues only its callers), so taint crosses call boundaries
    in both directions (return values out, arguments in).  The transfer
    function is monotone — summaries only grow — so the worklist
    terminates.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: dict[str, FunctionSummary] = {
            q: FunctionSummary() for q in program.functions}
        self._facts: dict[str, _FnFacts] = {
            q: _build_facts(fn, program)
            for q, fn in program.functions.items()}
        self._envs: dict[str, dict[str, set[str]]] = {}
        self._set_names: dict[str, set[str]] = {}
        self._fixpoint()

    # -- expression evaluation ---------------------------------------- #
    def _call_taint(self, node: ast.Call,
                    set_names: set[str]) -> set[str]:
        """Taint introduced *by the call itself* (args are walked by the
        generic expression walk, so only the return matters here)."""
        out: set[str] = set()
        site = self.program.site_for(node)
        if site is not None:
            label = _direct_source(site)
            if label is not None:
                out.add(label)
            if site.callee is not None:
                out |= self.summaries[site.callee].ret_sources
        if _is_id_call(node):
            out.add("id()")
        # list(f())/tuple(f()) over a set-returning callee: the wrapper
        # freezes hash order into a sequence — the interprocedural shape
        # D104 cannot see (sorted(f()) stays clean).
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_FREEZERS \
                and len(node.args) == 1 \
                and self._expr_is_set(node.args[0], set_names):
            out.add(f"set-order[{node.func.id}() over a set]")
        return out

    def eval_expr(self, expr: ast.expr, env: dict[str, set[str]],
                  set_names: set[str]) -> set[str]:
        """Union of source labels reachable anywhere inside *expr*."""
        return self._eval_facts(_expr_facts(expr), env, set_names)

    def _eval_facts(self, facts: _ExprFacts, env: dict[str, set[str]],
                    set_names: set[str]) -> set[str]:
        out: set[str] = set()
        for name in facts.names:
            got = env.get(name)
            if got:
                out |= got
        for call in facts.calls:
            out |= self._call_taint(call, set_names)
        return out

    def _expr_is_set(self, expr: ast.expr, set_names: set[str]) -> bool:
        """Set-ness of *expr*, through call summaries (``returns_set``)."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) \
                    and expr.func.id in _SET_CTORS:
                return True
            site = self.program.site_for(expr)
            if site is not None and site.callee is not None:
                return self.summaries[site.callee].returns_set
            return False
        if isinstance(expr, ast.Name):
            return expr.id in set_names
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._expr_is_set(expr.left, set_names) \
                or self._expr_is_set(expr.right, set_names)
        return False

    # -- per-function environment ------------------------------------- #
    def _build_env(
        self, fn: FunctionInfo,
    ) -> tuple[dict[str, set[str]], set[str], set[str]]:
        """Taint env, set-typed names, and param-derived names for *fn*."""
        facts = self._facts[fn.qname]
        env: dict[str, set[str]] = {}
        set_names: set[str] = set()
        derived: set[str] = set(_param_names(fn))
        for _ in range(3):          # converge short assignment chains
            for stmt in facts.stmts:
                taint = self._eval_facts(stmt.value, env, set_names)
                is_set = self._expr_is_set(stmt.value.expr, set_names)
                from_param = any(n in derived for n in stmt.value.names)
                for name in stmt.binds:
                    if taint:
                        env.setdefault(name, set()).update(taint)
                    if is_set:
                        set_names.add(name)
                    if from_param:
                        derived.add(name)
        return env, set_names, derived

    def _summarise(self, fn: FunctionInfo) -> FunctionSummary:
        env, set_names, derived = self._build_env(fn)
        self._envs[fn.qname] = env
        self._set_names[fn.qname] = set_names
        facts = self._facts[fn.qname]

        def from_param(expr_facts: _ExprFacts) -> bool:
            return any(n in derived for n in expr_facts.names)

        ret_sources: set[str] = set()
        returns_set = False
        for ret in facts.returns:
            ret_sources |= self._eval_facts(ret, env, set_names)
            returns_set = returns_set \
                or self._expr_is_set(ret.expr, set_names)

        params_to_sink = any(
            from_param(expr_facts)
            for _sink, sink_facts in facts.sinks
            for expr_facts in sink_facts)
        if not params_to_sink:
            # transitively: a param forwarded to a callee that sinks it
            for site, arg_facts in facts.call_args:
                if site.callee is None \
                        or not self.summaries[site.callee].params_to_sink:
                    continue
                if any(from_param(a) for a in arg_facts):
                    params_to_sink = True
                    break
        return FunctionSummary(ret_sources=frozenset(ret_sources),
                               returns_set=returns_set,
                               params_to_sink=params_to_sink)

    def _fixpoint(self) -> None:
        callers_of: dict[str, set[str]] = {
            q: set() for q in self.program.functions}
        for qname, fn in self.program.functions.items():
            for site in fn.calls:
                if site.callee is not None:
                    callers_of.setdefault(site.callee, set()).add(qname)
        pending = list(sorted(self.program.functions))
        queued = set(pending)
        while pending:
            qname = pending.pop()
            queued.discard(qname)
            new = self._summarise(self.program.functions[qname])
            if new == self.summaries[qname]:
                continue
            self.summaries[qname] = new
            for caller in sorted(callers_of.get(qname, ())):
                if caller not in queued:
                    queued.add(caller)
                    pending.append(caller)
        # No final sweep needed: a caller is re-summarised (env rebuilt)
        # whenever any callee's summary changes, so at convergence every
        # cached environment reflects the converged summaries.

    def facts_of(self, fn: FunctionInfo) -> _FnFacts:
        return self._facts[fn.qname]

    def env_of(self, fn: FunctionInfo) -> dict[str, set[str]]:
        return self._envs.get(fn.qname, {})

    def set_names_of(self, fn: FunctionInfo) -> set[str]:
        return self._set_names.get(fn.qname, set())


# --------------------------------------------------------------------- #
# D201: determinism taint into agreed state
# --------------------------------------------------------------------- #

def _fmt_sources(sources: set[str]) -> str:
    return ", ".join(sorted(sources))


@program_rule(
    "D201",
    summary="run-dependent value (wall clock / entropy / id() / "
            "set-iteration order, through any call chain) flows into "
            "agreed state: StateMachine.apply results, RoundContext "
            "fields, or wire envelope payloads",
    example="Broadcast(o, sn, payload=str(time.time()).encode())")
def check_determinism_taint(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    engine = TaintEngine(program)
    for fn in program.functions.values():
        env = engine.env_of(fn)
        set_names = engine.set_names_of(fn)
        facts = engine.facts_of(fn)

        # sink: StateMachine.apply return value
        if _is_apply_sink(fn, program):
            for node in _body_walk(fn.node):
                if not isinstance(node, ast.Return) \
                        or node.value is None:
                    continue
                sources = engine.eval_expr(node.value, env, set_names)
                if sources:
                    yield pctx.finding(
                        "D201", fn.path, node,
                        f"value derived from {_fmt_sources(sources)} "
                        f"returned from {fn.qname}(): apply() results "
                        f"are agreed state and must be a pure function "
                        f"of the delivered command")

        # sinks: RoundContext stores + envelope/RoundContext ctor args
        for sink, sink_facts in facts.sinks:
            sources = set()
            for expr_facts in sink_facts:
                sources |= engine._eval_facts(expr_facts, env, set_names)
            if sources:
                yield pctx.finding(
                    "D201", fn.path, sink.node,
                    f"value derived from {_fmt_sources(sources)} "
                    f"{sink.describe}")

        # sink via call: tainted argument to a function that stores a
        # parameter into agreed state somewhere down its call chain
        for site, arg_facts in facts.call_args:
            if site.callee is None \
                    or not engine.summaries[site.callee].params_to_sink:
                continue
            sources = set()
            for expr_facts in arg_facts:
                sources |= engine._eval_facts(expr_facts, env, set_names)
            if sources:
                callee = program.functions[site.callee]
                yield pctx.finding(
                    "D201", fn.path, site.node,
                    f"value derived from {_fmt_sources(sources)} "
                    f"passed to {callee.qname}(), which stores a "
                    f"parameter into agreed state (RoundContext field "
                    f"or envelope payload) down its call chain")


# --------------------------------------------------------------------- #
# A301: transitive blocking from async def
# --------------------------------------------------------------------- #

def _direct_blocking(fn: FunctionInfo) -> Optional[str]:
    """Label of a blocking primitive *fn* calls directly, else None."""
    for site in fn.calls:
        if site.callee is not None or site.external is None:
            continue
        if site.external in _BLOCKING \
                or site.external in _BLOCKING_BUILTINS:
            return site.external
    return None


def _reaches(program: Program, predicate: "object") -> set[str]:
    """Qnames from which a *predicate*-satisfying function is reachable
    over call edges (including the satisfying functions themselves).
    One reverse BFS instead of a forward search per call site."""
    callers_of: dict[str, set[str]] = {}
    for qname, fn in program.functions.items():
        for site in fn.calls:
            if site.callee is not None:
                callers_of.setdefault(site.callee, set()).add(qname)
    frontier = [q for q, fn in program.functions.items()
                if predicate(fn)]
    reached = set(frontier)
    while frontier:
        for caller in callers_of.get(frontier.pop(), ()):
            if caller not in reached:
                reached.add(caller)
                frontier.append(caller)
    return reached


def _fmt_chain(chain: list[str], program: Program) -> str:
    def short(qname: str) -> str:
        fn = program.functions.get(qname)
        if fn is None or fn.class_qname is None:
            return qname.rsplit(".", 1)[-1]
        return ".".join(qname.rsplit(".", 2)[-2:])
    return " -> ".join(short(q) for q in chain)


@program_rule(
    "A301",
    summary="async def reaches a blocking primitive through a call "
            "chain (A202 catches the direct call; this catches it any "
            "number of helpers deep)",
    example="async def pump(self): self._helper()   "
            "# _helper() -> time.sleep(1)")
def check_transitive_blocking(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    blocking_reach = _reaches(
        program, lambda f: _direct_blocking(f) is not None)
    for fn in program.functions.values():
        if not fn.is_async:
            continue
        for site in fn.calls:
            if site.callee is None or site.callee not in blocking_reach:
                continue
            chain = program.find_chain(
                site.callee, lambda f: _direct_blocking(f) is not None)
            if chain is None:       # pragma: no cover — reach implies it
                continue
            label = _direct_blocking(program.functions[chain[-1]])
            yield pctx.finding(
                "A301", fn.path, site.node,
                f"async def {fn.name}() reaches blocking {label}() via "
                f"{_fmt_chain(chain, program)}: the event loop stalls "
                f"for the full call; use the asyncio equivalent or "
                f"run_in_executor at the leaf")


# --------------------------------------------------------------------- #
# L401: interprocedural await-under-lock
# --------------------------------------------------------------------- #

def _has_direct_slow_await(fn: FunctionInfo) -> bool:
    return any(_slow_await_target(a) is not None for a in fn.awaits)


def _slow_or_blocking(fn: FunctionInfo) -> bool:
    return _has_direct_slow_await(fn) or _direct_blocking(fn) is not None


@program_rule(
    "L401",
    summary="lock held across a call whose callee chain awaits slow "
            "I/O (the PR 6 _connect shape one function deeper — "
            "lexical L301 cannot see past the call boundary)",
    example="async with self._lock: await self._send(m)   "
            "# _send() -> await writer.drain()")
def check_interprocedural_lock(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    slow_reach = _reaches(program, _slow_or_blocking)
    for fn in program.functions.values():
        for node in _body_walk(fn.node):
            if not isinstance(node, ast.AsyncWith):
                continue
            if not any(_is_lock_context(item) for item in node.items):
                continue
            for awaited in _awaits_in_body(node.body):
                if _slow_await_target(awaited) is not None:
                    continue        # lexical: L301's finding, not ours
                value = awaited.value
                if not isinstance(value, ast.Call):
                    continue
                site = program.site_for(value)
                if site is None or site.callee is None \
                        or site.callee not in slow_reach:
                    continue
                chain = program.find_chain(site.callee,
                                           _slow_or_blocking)
                if chain is None:   # pragma: no cover — reach implies it
                    continue
                yield pctx.finding(
                    "L401", fn.path, awaited,
                    f"lock held across await "
                    f"{_fmt_chain([fn.qname] + chain, program)}, which "
                    f"reaches slow I/O at the end of the chain: every "
                    f"coroutine contending for the lock stalls for the "
                    f"full I/O duration (the PR 6 ~41s dial-retry "
                    f"class); restructure so the slow await happens "
                    f"outside the critical section")
