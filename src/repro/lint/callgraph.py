"""Project-wide call graph over the linted file set.

The lexical rules (D101…L301) see one function at a time, but the bug
classes that actually shipped were *interprocedural*: PR 6's dial-retry
held the node lock across a call chain that awaited two frames deeper,
and hash-order set iteration leaks into agreed state through helper
functions.  :class:`Program` gives the whole-program rules (D201, A301,
L401, X501/X502) the structure those analyses need:

* every module parsed once (through the shared :class:`~repro.lint.
  astcache.ASTCache`) with an import map that also resolves *relative*
  imports against the module's dotted path;
* every module-level function and every method registered under its
  qualified name (``repro.runtime.node.RuntimeNode._connect``);
* call sites resolved module-qualified (``wire.get_codec`` through
  aliases), through ``self.``/``cls.`` method lookup with base-class
  resolution, through ``self.<attr>`` / local-variable instances whose
  class is inferable (constructor assignment or annotation), and through
  the repo's ``register_backend`` registry pattern (a factory that reads
  the registry gets edges to every registered class's ``__init__``).

Resolution is deliberately conservative: a call the graph cannot resolve
is recorded with its canonical dotted name (``external``) but gets no
edge, so whole-program rules under-approximate reachability rather than
hallucinate it.  Known blind spots, accepted for a repo-policy gate:
values smuggled through containers (``self._rounds[r].method()``),
nested ``def``s, and first-class function values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence, Union

from .astcache import ParsedFile
from .names import ImportMap, dotted_name

__all__ = ["CallSite", "FunctionInfo", "ClassInfo", "ModuleInfo", "Program",
           "AttrWrite", "attr_writes"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


class ModuleImports(ImportMap):
    """Import map that also resolves relative imports.

    ``from ..core.server import AllConcurServer`` inside
    ``repro.runtime.node`` binds ``AllConcurServer`` to
    ``repro.core.server.AllConcurServer`` — the plain :class:`ImportMap`
    skips relative imports because the lexical rules only match stdlib
    names, but the call graph needs project-internal edges.
    """

    def __init__(self, tree: ast.Module, module: str,
                 *, is_package: bool = False) -> None:
        super().__init__(tree)
        parts = module.split(".") if module else []
        package = parts if is_package else parts[:-1]
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom) or not node.level:
                continue
            up = node.level - 1
            if up > len(package):
                continue            # escapes the known root: unresolvable
            anchor = package[:len(package) - up] if up else list(package)
            if node.module:
                anchor = anchor + node.module.split(".")
            if not anchor:
                continue
            base = ".".join(anchor)
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{base}.{alias.name}"


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: qualified name of the in-program callee, when resolution succeeded
    callee: Optional[str] = None
    #: canonical dotted target for out-of-program calls (``time.sleep``)
    external: Optional[str] = None


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qname: str
    module: str
    path: str
    node: FunctionNode
    class_qname: Optional[str] = None
    is_async: bool = False
    #: call sites lexically inside this function (nested defs excluded —
    #: their calls run under *their* caller, exactly like L301's await scan)
    calls: list[CallSite] = field(default_factory=list)
    #: ``await`` expressions lexically inside this function
    awaits: list[ast.Await] = field(default_factory=list)
    #: local name -> class qname (ctor assignments + annotations), kept
    #: for rules that need instance types at sink sites (D201)
    local_classes: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition."""

    qname: str
    module: str
    node: ast.ClassDef
    #: base-class qnames resolved inside the program (external bases dropped)
    bases: list[str] = field(default_factory=list)
    #: method name -> function qname
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qname, from ctor assignments / annotations
    attr_classes: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module of the program."""

    module: str
    parsed: ParsedFile
    imports: ModuleImports

    @property
    def path(self) -> str:
        return self.parsed.path

    @property
    def tree(self) -> ast.Module:
        return self.parsed.tree


def _body_walk(root: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack: list[ast.AST] = list(root.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNC_TYPES, ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class Program:
    """The whole-program view: modules, classes, functions and call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: classes registered through the ``register_backend`` pattern
        self.registered_classes: list[str] = []
        #: call node -> resolved site, for rules that start from an AST node
        self._site_by_node: dict[ast.Call, CallSite] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, files: Sequence[tuple[str, ParsedFile]]) -> "Program":
        """Build the program from ``(module, parsed_file)`` pairs."""
        program = cls()
        for module, parsed in files:
            is_package = parsed.path.replace("\\", "/").endswith(
                "/__init__.py")
            program.modules[module] = ModuleInfo(
                module=module, parsed=parsed,
                imports=ModuleImports(parsed.tree, module,
                                      is_package=is_package))
        for info in program.modules.values():
            program._collect_definitions(info)
        for info in program.modules.values():
            program._resolve_bases(info)
        for info in program.modules.values():
            program._collect_class_attrs(info)
        for info in program.modules.values():
            program._resolve_calls(info)
        program._collect_registry()
        return program

    def _collect_definitions(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, _FUNC_TYPES):
                self._add_function(info, node, class_qname=None)
            elif isinstance(node, ast.ClassDef):
                cls_qname = f"{info.module}.{node.name}"
                self.classes[cls_qname] = ClassInfo(
                    qname=cls_qname, module=info.module, node=node)
                for item in node.body:
                    if isinstance(item, _FUNC_TYPES):
                        fn = self._add_function(info, item,
                                                class_qname=cls_qname)
                        self.classes[cls_qname].methods[item.name] = fn.qname

    def _add_function(self, info: ModuleInfo, node: FunctionNode,
                      *, class_qname: Optional[str]) -> FunctionInfo:
        scope = class_qname or info.module
        fn = FunctionInfo(
            qname=f"{scope}.{node.name}", module=info.module,
            path=info.path, node=node, class_qname=class_qname,
            is_async=isinstance(node, ast.AsyncFunctionDef))
        self.functions[fn.qname] = fn
        return fn

    def _resolve_bases(self, info: ModuleInfo) -> None:
        for cls_qname, cls in self.classes.items():
            if cls.module != info.module:
                continue
            for base in cls.node.bases:
                resolved = self._resolve_class_expr(base, info)
                if resolved is not None:
                    cls.bases.append(resolved)

    def _resolve_class_expr(self, node: ast.AST,
                            info: ModuleInfo) -> Optional[str]:
        """Class qname for a Name/Attribute expression, if in-program."""
        name = dotted_name(node)
        if name is None:
            return None
        return self._lookup_class(name, info)

    def _lookup_class(self, name: str, info: ModuleInfo) -> Optional[str]:
        local = f"{info.module}.{name}"
        if local in self.classes:
            return local
        resolved = info.imports.resolve(name)
        if resolved in self.classes:
            return resolved
        return None

    def _collect_class_attrs(self, info: ModuleInfo) -> None:
        """Infer ``self.<attr>`` classes from assignments/annotations in
        every method of every class of *info* (flow-insensitive union;
        a conflicting re-assignment drops the inference)."""
        for cls in self.classes.values():
            if cls.module != info.module:
                continue
            seen: dict[str, Optional[str]] = {}
            for method_qname in cls.methods.values():
                method = self.functions[method_qname]
                for node in _body_walk(method.node):
                    attr: Optional[str] = None
                    inferred: Optional[str] = None
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            if self._is_self_attr(target):
                                attr = target.attr  # type: ignore[union-attr]
                                inferred = self._instance_class(
                                    node.value, info)
                    elif isinstance(node, ast.AnnAssign) \
                            and self._is_self_attr(node.target):
                        attr = node.target.attr  # type: ignore[union-attr]
                        inferred = self._resolve_class_expr(
                            _strip_annotation(node.annotation), info)
                        if inferred is None and node.value is not None:
                            inferred = self._instance_class(node.value, info)
                    if attr is None:
                        continue
                    if attr in seen and seen[attr] != inferred:
                        seen[attr] = None       # conflicting: unknown
                    else:
                        seen[attr] = inferred
            cls.attr_classes = {a: c for a, c in seen.items()
                                if c is not None}

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _instance_class(self, value: ast.AST,
                        info: ModuleInfo) -> Optional[str]:
        """Class qname when *value* constructs an in-program instance:
        ``C(...)`` or the ``C.create(...)`` classmethod-factory idiom."""
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        direct = self._lookup_class(name, info)
        if direct is not None:
            return direct
        if "." in name:
            head, _, method = name.rpartition(".")
            owner = self._lookup_class(head, info)
            if owner is not None and method in ("create", "of", "initial",
                                                "from_json"):
                return owner
        return None

    # ------------------------------------------------------------------ #
    # Call resolution
    # ------------------------------------------------------------------ #
    def _resolve_calls(self, info: ModuleInfo) -> None:
        for fn in self.functions.values():
            if fn.module != info.module:
                continue
            local_classes = self._local_instances(fn, info)
            fn.local_classes = local_classes
            for node in _body_walk(fn.node):
                if isinstance(node, ast.Await):
                    fn.awaits.append(node)
                if not isinstance(node, ast.Call):
                    continue
                site = self._resolve_call(node, fn, info, local_classes)
                fn.calls.append(site)
                self._site_by_node[node] = site

    def _local_instances(self, fn: FunctionInfo,
                         info: ModuleInfo) -> dict[str, str]:
        """Local name -> class qname (ctor assignments + annotations)."""
        out: dict[str, str] = {}
        args = fn.node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            if arg.annotation is not None:
                resolved = self._resolve_class_expr(
                    _strip_annotation(arg.annotation), info)
                if resolved is not None:
                    out[arg.arg] = resolved
        for node in _body_walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                inferred = self._instance_class(node.value, info)
                if inferred is not None:
                    out[node.targets[0].id] = inferred
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                inferred = self._resolve_class_expr(
                    _strip_annotation(node.annotation), info)
                if inferred is not None:
                    out[node.target.id] = inferred
        return out

    def _resolve_call(self, node: ast.Call, fn: FunctionInfo,
                      info: ModuleInfo,
                      local_classes: dict[str, str]) -> CallSite:
        name = dotted_name(node.func)
        if name is None:
            return CallSite(node=node)
        parts = name.split(".")

        # self.method() / self.attr.method() / cls.method()
        if parts[0] in ("self", "cls") and fn.class_qname is not None:
            if len(parts) == 2:
                target = self.resolve_method(fn.class_qname, parts[1])
                if target is not None:
                    return CallSite(node=node, callee=target)
            elif len(parts) == 3:
                owner = self.classes[fn.class_qname].attr_classes.get(
                    parts[1])
                if owner is not None:
                    target = self.resolve_method(owner, parts[2])
                    if target is not None:
                        return CallSite(node=node, callee=target)
            return CallSite(node=node)

        # local-variable instance: x = C(...); x.method()
        if len(parts) == 2 and parts[0] in local_classes:
            target = self.resolve_method(local_classes[parts[0]], parts[1])
            if target is not None:
                return CallSite(node=node, callee=target)

        # bare name: module-level function or class constructor
        if len(parts) == 1:
            local_fn = f"{info.module}.{name}"
            if local_fn in self.functions:
                return CallSite(node=node, callee=local_fn)
            cls_qname = self._lookup_class(name, info)
            if cls_qname is not None:
                init = self.resolve_method(cls_qname, "__init__")
                return CallSite(node=node, callee=init,
                                external=None if init else cls_qname)

        # dotted name through the import map
        resolved = info.imports.resolve(name)
        if resolved in self.functions:
            return CallSite(node=node, callee=resolved)
        if resolved in self.classes:
            init = self.resolve_method(resolved, "__init__")
            if init is not None:
                return CallSite(node=node, callee=init)
            return CallSite(node=node, external=resolved)
        # Class.method(...) (classmethods / explicit base calls)
        head, _, tail = resolved.rpartition(".")
        if head in self.classes:
            target = self.resolve_method(head, tail)
            if target is not None:
                return CallSite(node=node, callee=target)
        cls_qname = self._lookup_class(parts[0], info)
        if cls_qname is not None and len(parts) == 2:
            target = self.resolve_method(cls_qname, parts[1])
            if target is not None:
                return CallSite(node=node, callee=target)
        return CallSite(node=node, external=resolved)

    def resolve_method(self, cls_qname: str,
                       method: str) -> Optional[str]:
        """Method qname via the class then its in-program bases (BFS)."""
        queue = [cls_qname]
        seen = set(queue)
        while queue:
            current = queue.pop(0)
            cls = self.classes.get(current)
            if cls is None:
                continue
            target = cls.methods.get(method)
            if target is not None:
                return target
            for base in cls.bases:
                if base not in seen:
                    seen.add(base)
                    queue.append(base)
        return None

    # ------------------------------------------------------------------ #
    # Registry pattern
    # ------------------------------------------------------------------ #
    def _collect_registry(self) -> None:
        """``register_backend(name, Cls)`` registrations, and edges from
        factory call sites (``create_deployment``/``backend_class``) to
        every registered class's ``__init__`` — calls routed through the
        registry are otherwise invisible to static resolution."""
        registered: list[str] = []
        for fn in self.functions.values():
            info = self.modules[fn.module]
            for site in fn.calls:
                name = dotted_name(site.node.func)
                if name is None \
                        or name.rsplit(".", 1)[-1] != "register_backend":
                    continue
                args = list(site.node.args) + [
                    kw.value for kw in site.node.keywords]
                for arg in args:
                    resolved = self._resolve_class_expr(arg, info)
                    if resolved is not None:
                        registered.append(resolved)
        self.registered_classes = sorted(set(registered))
        if not self.registered_classes:
            return
        inits = [init for cls in self.registered_classes
                 if (init := self.resolve_method(cls, "__init__"))]
        for fn in self.functions.values():
            extra: list[CallSite] = []
            for site in fn.calls:
                name = dotted_name(site.node.func)
                if name is None:
                    continue
                if name.rsplit(".", 1)[-1] in ("create_deployment",
                                               "backend_class"):
                    for init in inits:
                        extra.append(CallSite(node=site.node, callee=init))
            fn.calls.extend(extra)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def site_for(self, node: ast.Call) -> Optional[CallSite]:
        return self._site_by_node.get(node)

    def callees(self, qname: str) -> Iterator[tuple[CallSite, str]]:
        fn = self.functions.get(qname)
        if fn is None:
            return
        for site in fn.calls:
            if site.callee is not None:
                yield site, site.callee

    def find_chain(self, start: str,
                   matches: Callable[[FunctionInfo], bool],
                   *, include_start: bool = True) -> Optional[list[str]]:
        """Shortest call chain ``[start, .., f]`` with ``matches(f)`` true.

        BFS over resolved call edges; deterministic (edges are visited in
        definition order).  Returns None when nothing matches.
        """
        if include_start:
            fn = self.functions.get(start)
            if fn is not None and matches(fn):
                return [start]
        queue: list[list[str]] = [[start]]
        seen = {start}
        while queue:
            path = queue.pop(0)
            for _site, callee in self.callees(path[-1]):
                if callee in seen:
                    continue
                seen.add(callee)
                fn = self.functions.get(callee)
                new_path = path + [callee]
                if fn is not None and matches(fn):
                    return new_path
                queue.append(new_path)
        return None


def _strip_annotation(node: ast.expr) -> ast.expr:
    """``Optional[C]`` / ``"C"`` / ``C`` -> the expression naming C."""
    if isinstance(node, ast.Subscript):
        name = dotted_name(node.value)
        if name in ("Optional", "typing.Optional"):
            return _strip_annotation(node.slice)  # type: ignore[arg-type]
        return node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return node
        return _strip_annotation(parsed)
    return node


def single_file_program(parsed: ParsedFile, module: str) -> Program:
    """A one-module program (fixture tests lint snippets in isolation)."""
    return Program.build([(module, parsed)])


# --------------------------------------------------------------------- #
# Instance-attribute write summaries (S601 snapshot coverage, R701 races)
# --------------------------------------------------------------------- #

#: method names whose call mutates the receiver in place — enough to
#: cover dict/set/list/deque plus the repo's own mutator verbs
#: (``_DedupTable.add``, ``StateMachine.apply``)
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "apply", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "push", "put_nowait", "remove",
    "setdefault", "sort", "update",
})


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.<attr>`` mutation site inside a function body."""

    attr: str
    #: the statement/call node the mutation happens at (finding anchor)
    node: ast.AST


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _mutation_root(expr: ast.AST,
                   aliases: dict[str, str]) -> Optional[str]:
    """The ``self`` attribute ultimately mutated when *expr* — the object
    being subscripted / attributed / method-called — is stored through:
    ``self.X`` directly, a local alias of it (``a = self.X``), or any
    subscript/attribute chain rooted at either."""
    direct = _self_attr(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    if isinstance(expr, (ast.Subscript, ast.Attribute)):
        return _mutation_root(expr.value, aliases)
    return None


def _target_writes(target: ast.AST, aliases: dict[str, str],
                   *, is_delete: bool = False) -> Iterator[str]:
    """Attributes a store (or delete) target mutates.  A bare local name
    rebinds the local, mutating nothing."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_writes(elt, aliases, is_delete=is_delete)
        return
    if isinstance(target, ast.Starred):
        yield from _target_writes(target.value, aliases,
                                  is_delete=is_delete)
        return
    direct = _self_attr(target)
    if direct is not None:
        yield direct                  # self.X = ... / del self.X
        return
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        root = _mutation_root(target.value, aliases)
        if root is not None:
            yield root                # self.X[k] = / a.field = (a = self.X)


def attr_writes(fn: FunctionInfo) -> list[AttrWrite]:
    """Every ``self.<attr>`` mutation lexically inside *fn*.

    Covers direct assignment/deletion, subscript and attribute stores
    rooted at the attribute, in-place mutator method calls
    (``self.X.add(k)``), and the same forms through single-name local
    aliases (``applied = self._applied[pid]; applied.add(key)`` — the
    exact shape of ``ReplicatedStateMachine._on_node_deliver``).  Alias
    collection is flow-insensitive; unresolvable mutations are dropped,
    so callers under-approximate (consistent with the call graph)."""
    aliases: dict[str, str] = {}
    for _ in range(2):                # converge alias-of-alias chains
        for node in _body_walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            root = _mutation_root(node.value, aliases)
            if root is None:
                # `a = self.X = value`: the self-attr target aliases too
                for target in node.targets:
                    sub = _mutation_root(target, aliases)
                    if sub is not None:
                        root = sub
                        break
            if root is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = root
    writes: list[AttrWrite] = []
    for node in _body_walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for attr in _target_writes(target, aliases):
                    writes.append(AttrWrite(attr=attr, node=node))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue              # bare annotation: no store
            for attr in _target_writes(node.target, aliases):
                writes.append(AttrWrite(attr=attr, node=node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                for attr in _target_writes(target, aliases,
                                           is_delete=True):
                    writes.append(AttrWrite(attr=attr, node=node))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_METHODS:
            root = _mutation_root(node.func.value, aliases)
            if root is not None:
                writes.append(AttrWrite(attr=root, node=node))
    return writes
