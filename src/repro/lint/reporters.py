"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from typing import Sequence

from .findings import Finding, Severity
from .registry import all_rules

__all__ = ["render_text", "render_json", "render_sarif",
           "render_rule_catalog"]


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro.lint: clean (0 findings)"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    summary = ", ".join(f"{rid}: {count}"
                        for rid, count in sorted(by_rule.items()))
    lines.append(f"repro.lint: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''} ({summary})")
    return "\n".join(lines)


#: Bump only on breaking changes to the JSON payload shape; CI uploads
#: the report as a build artifact, so downstream tooling keys on this.
SCHEMA_VERSION = 1


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
        "clean": not findings,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 — the format GitHub code scanning ingests, so CI
    findings annotate the exact PR diff lines they fire on."""
    rules = [{
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "helpUri": "https://github.com/",
        "defaultConfiguration": {
            "level": "error" if rule.severity is Severity.ERROR
            else "warning",
        },
    } for rule in all_rules()]
    rule_index = {meta["id"]: idx for idx, meta in enumerate(rules)}
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule_id,
            **({"ruleIndex": rule_index[finding.rule_id]}
               if finding.rule_id in rule_index else {}),
            "level": "error" if finding.severity is Severity.ERROR
            else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "informationUri": "https://github.com/",
                    "version": str(SCHEMA_VERSION),
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """Self-documentation for ``--list-rules``."""
    lines = ["repro.lint rule catalog", ""]
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.severity}]  {rule.summary}")
        lines.append(f"       e.g.  {rule.example}")
    lines.append("")
    lines.append("Suppress a finding with: "
                 "# lint: ignore[RULE-ID] <reason>  (reason required; "
                 "standalone comment lines apply to the next code line)")
    return "\n".join(lines)
