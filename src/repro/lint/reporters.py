"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from typing import Sequence

from .findings import Finding
from .registry import all_rules

__all__ = ["render_text", "render_json", "render_rule_catalog"]


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro.lint: clean (0 findings)"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    summary = ", ".join(f"{rid}: {count}"
                        for rid, count in sorted(by_rule.items()))
    lines.append(f"repro.lint: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''} ({summary})")
    return "\n".join(lines)


#: Bump only on breaking changes to the JSON payload shape; CI uploads
#: the report as a build artifact, so downstream tooling keys on this.
SCHEMA_VERSION = 1


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
        "clean": not findings,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """Self-documentation for ``--list-rules``."""
    lines = ["repro.lint rule catalog", ""]
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.severity}]  {rule.summary}")
        lines.append(f"       e.g.  {rule.example}")
    lines.append("")
    lines.append("Suppress a finding with: "
                 "# lint: ignore[RULE-ID] <reason>  (reason required; "
                 "standalone comment lines apply to the next code line)")
    return "\n".join(lines)
