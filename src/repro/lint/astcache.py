"""Shared parsed-AST cache.

Every lint pass needs the same artefacts per file — source text, parsed
tree, child→parent links — and the analyzer now has *two* consumers of
them: the per-file lexical rules and the whole-program pass (call graph,
taint engine, exhaustiveness checks).  Parsing ``src/`` twice would double
the dominant cost of a lint run, and the meta-test suite lints the tree
several times per session, so the cache is also shared *across*
``lint_paths`` calls (keyed by mtime+size, it survives as a module-level
default and invalidates itself when a file changes on disk).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ParsedFile", "ASTCache", "default_cache"]


def build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child node -> enclosing node, for the whole tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@dataclass
class ParsedFile:
    """One successfully parsed source file (or in-memory snippet)."""

    path: str
    source: str
    tree: ast.Module
    _parents: Optional[dict[ast.AST, ast.AST]] = field(
        default=None, repr=False)

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Parent links, built on first use and then shared by every rule."""
        if self._parents is None:
            self._parents = build_parents(self.tree)
        return self._parents


class ASTCache:
    """Path -> :class:`ParsedFile`, invalidated on mtime/size change.

    ``SyntaxError`` and ``OSError`` propagate to the caller (the analyzer
    turns them into E000/E001 findings); failed parses are not cached, so
    a fixed file re-parses cleanly on the next run.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[tuple[int, int], ParsedFile]] = {}

    def parse(self, path: str) -> ParsedFile:
        """Parse *path*, reusing the cached tree when the file is unchanged."""
        stat = os.stat(path)
        key = (stat.st_mtime_ns, stat.st_size)
        entry = self._entries.get(path)
        if entry is not None and entry[0] == key:
            return entry[1]
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        parsed = ParsedFile(path=path, source=source,
                            tree=ast.parse(source, filename=path))
        self._entries[path] = (key, parsed)
        return parsed

    def parse_source(self, source: str, path: str) -> ParsedFile:
        """Parse an in-memory snippet (never cached — no stat identity)."""
        return ParsedFile(path=path, source=source,
                          tree=ast.parse(source, filename=path))

    def __len__(self) -> int:
        return len(self._entries)


_DEFAULT = ASTCache()


def default_cache() -> ASTCache:
    """The process-wide cache shared by every ``lint_paths`` call."""
    return _DEFAULT
