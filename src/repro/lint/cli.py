"""``python -m repro.lint`` entry point."""

from __future__ import annotations

import argparse
import subprocess
import sys
from typing import Optional, Sequence

from .analyzer import lint_paths
from .reporters import (render_json, render_rule_catalog, render_sarif,
                        render_text)

__all__ = ["main", "changed_paths"]


def changed_paths(ref: str) -> Optional[frozenset[str]]:
    """Repo-relative ``.py`` paths changed since *ref* (``git diff``).

    Returns None when git is unavailable or the ref is unknown — the
    caller falls back to a full report rather than silently passing.
    """
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--", "*.py"],
            capture_output=True, text=True, timeout=30, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return frozenset(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & concurrency static analysis for the "
                    "AllConcur reproduction (CI gate: exits 1 on any "
                    "unsuppressed finding).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (sarif feeds GitHub code "
                             "scanning so findings annotate PR diffs)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--regen-wire-lock", action="store_true",
                        help="re-extract the wire schema from the given "
                             "paths and rewrite wire_schema.lock.json "
                             "next to the wire module (commit the "
                             "result; W601 gates drift against it)")
    parser.add_argument("--changed-only", metavar="GIT-REF",
                        default=None,
                        help="report findings only in files changed "
                             "since GIT-REF (the whole-program pass "
                             "still analyzes everything, so cross-file "
                             "effects of the change are seen)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE (used by "
                             "CI to upload the JSON report artifact)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0

    if args.regen_wire_lock:
        from .rules_wire_schema import regenerate_lockfile
        lock_path = regenerate_lockfile(args.paths)
        if lock_path is None:
            print("repro.lint: no wire module (WIRE_VERSION) found "
                  "under the given paths", file=sys.stderr)
            return 1
        print(f"repro.lint: wrote {lock_path}")
        return 0

    changed = None
    if args.changed_only is not None:
        changed = changed_paths(args.changed_only)
        if changed is None:
            print(f"repro.lint: cannot diff against "
                  f"{args.changed_only!r}; reporting all findings",
                  file=sys.stderr)

    findings = lint_paths(args.paths, changed_only=changed)
    renderer = {"json": render_json, "sarif": render_sarif,
                "text": render_text}[args.format]
    report = renderer(findings)
    print(report)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
