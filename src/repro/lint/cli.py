"""``python -m repro.lint`` entry point."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analyzer import lint_paths
from .reporters import render_json, render_rule_catalog, render_text

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & concurrency static analysis for the "
                    "AllConcur reproduction (CI gate: exits 1 on any "
                    "unsuppressed finding).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0

    findings = lint_paths(args.paths)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
