"""Rule registry: every rule self-describes for ``--list-rules``.

A rule is a pure function plus the catalog metadata (id, severity,
summary, example).  Two kinds exist:

* **file rules** (``kind == "file"``) — ``check(tree, ctx)`` sees one
  module at a time; registered via :func:`rule`.
* **program rules** (``kind == "program"``) — ``check(pctx)`` sees the
  whole-program :class:`~repro.lint.callgraph.Program` (call graph,
  every parsed module) and may emit findings in any file; registered via
  :func:`program_rule`.  The analyzer runs them once per lint pass, not
  once per file.

Rules register themselves at import time; the registry is the single
source of truth for the CLI catalog, the policy table, and the
suppression validator (S902 rejects ids that are not registered).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from .callgraph import Program
from .findings import Finding, Severity
from .policy import DEFAULT_POLICY, Policy

__all__ = ["Rule", "RuleContext", "ProgramContext", "rule",
           "program_rule", "all_rules", "file_rules", "program_rules",
           "get_rule"]


@dataclass
class RuleContext:
    """Everything a rule may consult besides the AST itself."""

    path: str                     #: path as reported in findings
    module: str                   #: dotted module, e.g. ``repro.sim.engine``
    source: str                   #: full source text
    #: parent links for the whole tree (child node -> enclosing node),
    #: built once per file by the analyzer
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def finding(self, rule_id: str, node: ast.AST, message: str,
                severity: Severity = Severity.ERROR) -> Finding:
        return Finding(path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule_id=rule_id, message=message, severity=severity)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur: Optional[ast.AST] = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)


@dataclass
class ProgramContext:
    """What a whole-program rule sees: the call graph plus helpers."""

    program: Program
    #: the active policy — rules that consult reviewed exemption tables
    #: (S601 volatile state) read it here instead of importing the default
    policy: Policy = field(default_factory=lambda: DEFAULT_POLICY)

    def finding(self, rule_id: str, path: str, node: ast.AST,
                message: str,
                severity: Severity = Severity.ERROR) -> Finding:
        return Finding(path=path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule_id=rule_id, message=message, severity=severity)


Checker = Callable[[ast.Module, RuleContext], Iterable[Finding]]
ProgramChecker = Callable[[ProgramContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule (file- or program-scoped)."""

    id: str
    severity: Severity
    summary: str
    example: str
    check: Callable[..., Iterable[Finding]]
    kind: str = "file"            #: "file" | "program"


_REGISTRY: dict[str, Rule] = {}


def _register(rule_id: str, severity: Severity, summary: str,
              example: str, checker: Callable[..., Iterable[Finding]],
              kind: str) -> None:
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = Rule(id=rule_id, severity=severity,
                              summary=summary, example=example,
                              check=checker, kind=kind)


def rule(rule_id: str, *, summary: str, example: str,
         severity: Severity = Severity.ERROR) -> Callable[[Checker], Checker]:
    """Register a per-file *checker* under *rule_id* (decorator)."""

    def decorate(checker: Checker) -> Checker:
        _register(rule_id, severity, summary, example, checker, "file")
        return checker

    return decorate


def program_rule(rule_id: str, *, summary: str, example: str,
                 severity: Severity = Severity.ERROR,
                 ) -> Callable[[ProgramChecker], ProgramChecker]:
    """Register a whole-program *checker* under *rule_id* (decorator)."""

    def decorate(checker: ProgramChecker) -> ProgramChecker:
        _register(rule_id, severity, summary, example, checker, "program")
        return checker

    return decorate


def _load_rules() -> None:
    # Importing the rule modules populates the registry via decorators.
    from . import rules_asyncio      # noqa: F401
    from . import rules_determinism  # noqa: F401
    from . import rules_frozen      # noqa: F401
    from . import rules_locks       # noqa: F401
    from . import dataflow          # noqa: F401  (D201/A301/L401)
    from . import exhaustive        # noqa: F401  (X501/X502)
    from . import rules_state       # noqa: F401  (S601)
    from . import rules_wire_schema  # noqa: F401  (W601)
    from . import rules_lock_order  # noqa: F401  (L501)
    from . import rules_races       # noqa: F401  (R701)
    from . import suppress          # noqa: F401  (registers S901-S903)


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule (both kinds), sorted by id."""
    _load_rules()
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def file_rules() -> tuple[Rule, ...]:
    """Per-file rules only (``check(tree, ctx)``)."""
    return tuple(r for r in all_rules() if r.kind == "file")


def program_rules() -> tuple[Rule, ...]:
    """Whole-program rules only (``check(pctx)``)."""
    return tuple(r for r in all_rules() if r.kind == "program")


def get_rule(rule_id: str) -> Optional[Rule]:
    _load_rules()
    return _REGISTRY.get(rule_id)


def known_rule_ids() -> frozenset[str]:
    """Every registered rule id (the S-series registers itself from the
    suppression module so the catalog stays the single source of truth)."""
    _load_rules()
    return frozenset(_REGISTRY)
