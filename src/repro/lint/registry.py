"""Rule registry: every rule self-describes for ``--list-rules``.

A rule is a pure function ``check(tree, ctx) -> Iterable[Finding]`` plus
the catalog metadata (id, severity, summary, example).  Rules register
themselves at import time via :func:`rule`; the registry is the single
source of truth for the CLI catalog, the policy table, and the
suppression validator (S902 rejects ids that are not registered).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from .findings import Finding, Severity

__all__ = ["Rule", "RuleContext", "rule", "all_rules", "get_rule"]


@dataclass
class RuleContext:
    """Everything a rule may consult besides the AST itself."""

    path: str                     #: path as reported in findings
    module: str                   #: dotted module, e.g. ``repro.sim.engine``
    source: str                   #: full source text
    #: parent links for the whole tree (child node -> enclosing node),
    #: built once per file by the analyzer
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def finding(self, rule_id: str, node: ast.AST, message: str,
                severity: Severity = Severity.ERROR) -> Finding:
        return Finding(path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule_id=rule_id, message=message, severity=severity)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur: Optional[ast.AST] = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)


Checker = Callable[[ast.Module, RuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: Severity
    summary: str
    example: str
    check: Checker


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, *, summary: str, example: str,
         severity: Severity = Severity.ERROR) -> Callable[[Checker], Checker]:
    """Register *checker* under *rule_id* (decorator)."""

    def decorate(checker: Checker) -> Checker:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(id=rule_id, severity=severity,
                                  summary=summary, example=example,
                                  check=checker)
        return checker

    return decorate


def _load_rules() -> None:
    # Importing the rule modules populates the registry via decorators.
    from . import rules_asyncio      # noqa: F401
    from . import rules_determinism  # noqa: F401
    from . import rules_frozen      # noqa: F401
    from . import rules_locks       # noqa: F401
    from . import suppress          # noqa: F401  (registers S901-S903)


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    _load_rules()
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Optional[Rule]:
    _load_rules()
    return _REGISTRY.get(rule_id)


def known_rule_ids() -> frozenset[str]:
    """Every registered rule id (the S-series registers itself from the
    suppression module so the catalog stays the single source of truth)."""
    _load_rules()
    return frozenset(_REGISTRY)
