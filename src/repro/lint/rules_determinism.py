"""D-rules: determinism of the protocol core / simulator / graphs.

The differential oracles (bitmask vs set data plane, dirty-set vs
full-scan ingress, binary vs JSON codec) compare *byte-identical* agreed
logs across runs and backends, and the benchmark JSONs are committed
with the expectation that a re-run on the same seed reproduces them.
Anything inside ``repro.core`` / ``repro.sim`` / ``repro.graphs`` must
therefore be a pure function of its explicit inputs and seeds: no wall
clocks, no process-global RNG, no allocation-dependent ordering, and no
iteration order leaking out of hash-based containers.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Union

from .findings import Finding
from .names import ImportMap, dotted_name, resolve_call
from .registry import RuleContext, rule

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_ENTROPY = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: the one blessed constructor: a seeded, instance-scoped RNG
_SEEDED_RNG = frozenset({"random.Random"})


@rule("D101",
      summary="wall-clock read in a deterministic module "
              "(repro.core/sim/graphs run on virtual time only)",
      example="now = time.monotonic()   # use the simulator clock instead")
def check_wall_clock(tree: ast.Module,
                     ctx: RuleContext) -> Iterable[Finding]:
    imports = ImportMap(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node, imports)
        if name in _WALL_CLOCK:
            yield ctx.finding(
                "D101", node,
                f"call to {name}() reads the wall clock; deterministic "
                f"modules must take time from the simulator's virtual "
                f"clock or an explicit parameter")


@rule("D102",
      summary="process-global or OS randomness in a deterministic module "
              "(only a seeded random.Random(seed) instance is allowed)",
      example="x = random.random()   # use self._rng = random.Random(seed)")
def check_global_rng(tree: ast.Module,
                     ctx: RuleContext) -> Iterable[Finding]:
    imports = ImportMap(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node, imports)
        if name is None:
            continue
        if name in _SEEDED_RNG:
            continue        # policy allowance: seeded instance RNG
        if name in _ENTROPY or name.startswith("secrets."):
            yield ctx.finding(
                "D102", node,
                f"call to {name}() draws OS entropy; deterministic "
                f"modules must derive randomness from an explicit seed")
        elif name.startswith("random."):
            yield ctx.finding(
                "D102", node,
                f"call to {name}() uses the process-global RNG; use a "
                f"seeded random.Random(seed) instance (the simulator "
                f"engine owns one) so runs replay bit-identically")


_ORDERING_CALLS = frozenset({"sorted", "min", "max"})


@rule("D103",
      summary="id()-based ordering or keying (CPython allocation "
              "addresses differ across runs and hosts)",
      example="sorted(nodes, key=id)   # sort on a stable field instead")
def check_id_ordering(tree: ast.Module,
                      ctx: RuleContext) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = dotted_name(node.func)
        if func in _ORDERING_CALLS:
            for kw in node.keywords:
                if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                        and kw.value.id == "id":
                    yield ctx.finding(
                        "D103", node,
                        f"{func}(..., key=id) orders by allocation "
                        f"address, which differs run to run; key on a "
                        f"stable attribute instead")
        if isinstance(node.func, ast.Name) and node.func.id == "id" \
                and len(node.args) == 1:
            if any(isinstance(anc, ast.Call)
                   and dotted_name(anc.func) in _ORDERING_CALLS
                   for anc in ctx.ancestors(node)):
                yield ctx.finding(
                    "D103", node,
                    "id(...) inside an ordering expression depends on "
                    "allocation addresses; order on a stable field")


# --------------------------------------------------------------------- #
# D104: set iteration order
# --------------------------------------------------------------------- #

_SET_CTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet",
                              "AbstractSet", "MutableSet",
                              "typing.Set", "typing.FrozenSet",
                              "typing.AbstractSet", "typing.MutableSet"})
#: sinks whose result is independent of iteration order
_ORDER_INSENSITIVE = frozenset({"sorted", "min", "max", "sum", "any",
                                "all", "len", "set", "frozenset"})
#: conversion calls that freeze the (arbitrary) set order into a sequence
_SEQUENCE_CTORS = frozenset({"list", "tuple", "enumerate", "iter"})

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef,
               ast.Lambda]
_SCOPE_TYPES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef,
                ast.Lambda)


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation, e.g. "set[int]"
        base = node.value.split("[", 1)[0].strip()
        return base in _SET_ANNOTATIONS
    name = dotted_name(node)
    return name in _SET_ANNOTATIONS if name else False


class _SetTypes:
    """Lexical, per-scope inference of which names hold sets."""

    def __init__(self, tree: ast.Module, ctx: RuleContext) -> None:
        self.ctx = ctx
        self.scope_names: dict[ast.AST, set[str]] = {}
        self.class_attrs: dict[ast.AST, set[str]] = {}
        self._collect(tree)

    def _nearest(self, node: ast.AST,
                 kinds: tuple[type, ...]) -> Optional[ast.AST]:
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, kinds):
                return anc
        return None

    def _scope_of(self, node: ast.AST) -> ast.AST:
        return self._nearest(node, _SCOPE_TYPES) or node

    def _add_name(self, node: ast.AST, name: str) -> None:
        self.scope_names.setdefault(self._scope_of(node), set()).add(name)

    def _add_attr(self, node: ast.AST, name: str) -> None:
        cls = self._nearest(node, (ast.ClassDef,))
        if cls is not None:
            self.class_attrs.setdefault(cls, set()).add(name)

    def _collect(self, tree: ast.Module) -> None:
        # Two passes: assignments can reference set-typed names defined
        # by *other* assignments in the same scope; one extra pass keeps
        # chains like ``a = set(); b = a | other`` inferable.
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    if not self.is_set_expr(node.value):
                        continue
                    for target in node.targets:
                        self._record_target(target)
                elif isinstance(node, ast.AnnAssign):
                    if _annotation_is_set(node.annotation) or (
                            node.value is not None
                            and self.is_set_expr(node.value)):
                        self._record_target(node.target)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    args = node.args
                    for arg in (args.posonlyargs + args.args
                                + args.kwonlyargs):
                        if _annotation_is_set(arg.annotation):
                            self.scope_names.setdefault(
                                node, set()).add(arg.arg)

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._add_name(target, target.id)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self._add_attr(target, target.attr)

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CTORS:
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SET_METHODS:
                return self.is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_set_expr(node.left) \
                or self.is_set_expr(node.right)
        if isinstance(node, ast.BoolOp):
            return any(self.is_set_expr(v) for v in node.values)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) \
                or self.is_set_expr(node.orelse)
        if isinstance(node, ast.Name):
            scope = self._scope_of(node)
            return node.id in self.scope_names.get(scope, ())
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            cls = self._nearest(node, (ast.ClassDef,))
            return node.attr in self.class_attrs.get(cls, ()) \
                if cls is not None else False
        return False


def _consumed_order_insensitively(node: ast.AST,
                                  ctx: RuleContext) -> bool:
    """True when *node* (a comprehension/genexp) is the direct argument
    of an order-insensitive sink such as ``sorted(...)``."""
    parent = ctx.parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        name = dotted_name(parent.func)
        if name in _ORDER_INSENSITIVE:
            return True
    return False


def _iteration_sites(tree: ast.Module, types: _SetTypes,
                     ctx: RuleContext) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if types.is_set_expr(node.iter):
                yield node.iter, "for-loop over a set"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.DictComp)):
            if _consumed_order_insensitively(node, ctx):
                continue
            for gen in node.generators:
                if types.is_set_expr(gen.iter):
                    kind = {"ListComp": "list comprehension",
                            "GeneratorExp": "generator expression",
                            "DictComp": "dict comprehension"}[
                                type(node).__name__]
                    yield gen.iter, f"{kind} over a set"
        elif isinstance(node, ast.Call):
            func = node.func
            is_seq_ctor = (isinstance(func, ast.Name)
                           and func.id in _SEQUENCE_CTORS)
            is_join = (isinstance(func, ast.Attribute)
                       and func.attr == "join")
            if (is_seq_ctor or is_join) and len(node.args) == 1 \
                    and types.is_set_expr(node.args[0]):
                label = func.id if isinstance(func, ast.Name) else "join"
                yield node.args[0], f"{label}(...) over a set"


@rule("D104",
      summary="iteration over a set/frozenset without an enclosing "
              "sorted() in a deterministic module (hash-order leaks "
              "into scheduling, encoding, or hashing)",
      example="for p in peers_set: emit(p)   # for p in sorted(peers_set)")
def check_set_iteration(tree: ast.Module,
                        ctx: RuleContext) -> Iterable[Finding]:
    types = _SetTypes(tree, ctx)
    seen: set[tuple[int, int]] = set()
    for node, what in _iteration_sites(tree, types, ctx):
        key = (node.lineno, node.col_offset)
        if key in seen:
            continue
        seen.add(key)
        yield ctx.finding(
            "D104", node,
            f"{what}: set iteration order is hash/insertion dependent "
            f"and may leak into a deterministic path; wrap the set in "
            f"sorted(...) or consume it order-insensitively")
