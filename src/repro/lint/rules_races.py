"""R701: cross-thread races between the event loop and the facade.

The blocking deployment facade (``TcpDeployment`` driving a loop with
``run_until_complete``, ``ProcessCluster``'s control channel) and the
asyncio runtime share objects: public **sync** methods are entry points
a non-loop thread may call while coroutines are live.  An instance
attribute written on both sides without a common lock is a data race —
the static generalisation of the PR 6 ``_connect`` hazard (the facade's
``mark_down`` popping a writer the loop-side sender was using).

Side classification, per function:

* **loop side** — every ``async def``, plus every sync function
  forward-reachable from one over resolved call edges (a sync helper
  called by a coroutine runs on the loop);
* **facade side** — every public (non-underscore) sync method of a
  class, plus sync functions reachable from those *without* traversing
  into coroutines (a sync method that merely schedules a coroutine does
  not run it on this thread).

A finding requires a loop-side write and a facade-side write of the same
``self.<attr>`` in **distinct** functions (a single public sync method
that is also invoked from coroutines — ``mark_down`` — races only if
some *other* loop-side function writes the attribute too) with no lock
held at both sites.  Constructors are exempt: ``__init__`` writes happen
before the object is published to either side.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .callgraph import Program, attr_writes
from .findings import Finding
from .registry import ProgramContext, program_rule
from .rules_lock_order import function_lock_facts

__all__ = []

#: construction/teardown methods whose writes happen-before publication
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__",
                             "__init_subclass__"})


def _loop_side(program: Program) -> set[str]:
    frontier = [q for q, fn in program.functions.items() if fn.is_async]
    reached = set(frontier)
    while frontier:
        qname = frontier.pop()
        for _site, callee in program.callees(qname):
            if callee not in reached:
                reached.add(callee)
                frontier.append(callee)
    return reached


def _facade_side(program: Program) -> set[str]:
    frontier: list[str] = []
    for cls in program.classes.values():
        for name, qname in cls.methods.items():
            fn = program.functions.get(qname)
            if fn is None or fn.is_async:
                continue
            if name.startswith("_"):
                continue
            frontier.append(qname)
    reached = set(frontier)
    while frontier:
        qname = frontier.pop()
        for _site, callee in program.callees(qname):
            target = program.functions.get(callee)
            if target is None or target.is_async:
                continue            # scheduling a coroutine != running it
            if callee not in reached:
                reached.add(callee)
                frontier.append(callee)
    return reached


@program_rule(
    "R701",
    summary="instance attribute written from both the event loop and "
            "the blocking facade thread (public sync entry point) with "
            "no common lock — a cross-thread data race (the PR 6 "
            "mark_down/_connect shape)",
    example="def mark_down(self, p): self._writers.pop(p)   "
            "# async _sender_loop also mutates self._writers")
def check_cross_thread_races(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    loop_side = _loop_side(program)
    facade_side = _facade_side(program)

    # (class, attr) -> per-side write sites (fn, node, held locks)
    Writes = dict[tuple[str, str], list]
    loop_writes: Writes = {}
    facade_writes: Writes = {}
    for qname in sorted(program.functions):
        fn = program.functions[qname]
        if fn.class_qname is None or fn.name in _EXEMPT_METHODS:
            continue
        on_loop = qname in loop_side or fn.is_async
        on_facade = qname in facade_side and not fn.is_async
        if not on_loop and not on_facade:
            continue
        writes = attr_writes(fn)
        if not writes:
            continue
        interest = {id(w.node) for w in writes}
        held_at = function_lock_facts(fn, interest).held_at
        for w in writes:
            key = (fn.class_qname, w.attr)
            site = (fn, w.node, frozenset(held_at.get(id(w.node), ())))
            if on_loop:
                loop_writes.setdefault(key, []).append(site)
            if on_facade:
                facade_writes.setdefault(key, []).append(site)

    for key in sorted(set(loop_writes) & set(facade_writes),
                      key=lambda k: (k[0], k[1])):
        cls_qname, attr = key
        hit = None
        for f_fn, f_node, f_locks in facade_writes[key]:
            for l_fn, l_node, l_locks in loop_writes[key]:
                if l_fn.qname == f_fn.qname:
                    continue        # same entry point: one thread at a time
                if f_locks & l_locks:
                    continue        # a common lock serialises the writes
                hit = (f_fn, f_node, l_fn)
                break
            if hit:
                break
        if hit is None:
            continue
        f_fn, f_node, l_fn = hit
        cls_name = cls_qname.rsplit(".", 1)[-1]
        yield pctx.finding(
            "R701", f_fn.path, f_node,
            f"{cls_name}.{attr} is written from the blocking facade "
            f"side in {f_fn.name}() and from the event-loop side in "
            f"{l_fn.name}() with no common lock: a facade thread and "
            f"the loop can interleave the writes (the PR 6 "
            f"mark_down/_connect hazard class); route the mutation "
            f"through the loop (call_soon_threadsafe) or guard both "
            f"sites with one lock")
