"""S601: snapshot completeness for replicated state machines.

The elastic-sharding direction in ROADMAP.md installs a replica's
``snapshot()`` into a rejoining (or newly split) server and continues
applying the agreed log from there.  That is only sound when the
snapshot captures **every** attribute ``apply()`` can mutate — a missed
attribute (the dedup watermark, a results log, a read-your-writes
marker) makes the installed replica silently diverge from replicas that
replayed the full history, which no convergence *sample* reliably
catches.  S601 proves the inclusion statically:

* a class is in scope when it defines (or inherits) both a **mutator
  entry** (``apply`` / ``_on_node_deliver``) and a **capture entry**
  (``snapshot`` / ``snapshots`` / ``transfer_state``);
* the *written* set is every ``self.<attr>`` mutated on any same-class
  call path from a mutator entry (:func:`~repro.lint.callgraph.
  attr_writes` — direct stores, subscript/attribute stores, in-place
  mutator calls, and local aliases);
* the *captured* set is every attribute that can flow into a capture
  entry's return (:func:`~repro.lint.dataflow.attrs_into_return`),
  unioned over the capture entries' same-class call closure;
* written − captured − volatile = findings, one per attribute, anchored
  at the first write site.

Volatile state (caches, metrics — legitimately not part of the
transferable image) is exempted either through the reviewed policy
table (``Policy.volatile``) or a ``# lint: volatile <reason>`` marker on
a line that mentions the attribute inside the class body.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .callgraph import ClassInfo, Program, attr_writes
from .dataflow import attrs_into_return
from .findings import Finding
from .registry import ProgramContext, program_rule

__all__ = ["MUTATOR_ENTRIES", "CAPTURE_ENTRIES"]

#: methods that mutate replica state when a round is applied
MUTATOR_ENTRIES = ("apply", "_on_node_deliver")
#: methods whose return value is the transferable/comparable state image
CAPTURE_ENTRIES = ("snapshot", "snapshots", "transfer_state")


def _class_family(program: Program, cls: ClassInfo) -> frozenset[str]:
    """The class plus its transitive in-program bases (helper methods a
    subclass reaches through ``self.`` live on any of them)."""
    out = {cls.qname}
    queue = list(cls.bases)
    while queue:
        base = queue.pop()
        if base in out:
            continue
        out.add(base)
        info = program.classes.get(base)
        if info is not None:
            queue.extend(info.bases)
    return frozenset(out)


def _closure(program: Program, entries: Iterable[str],
             family: frozenset[str]) -> list[str]:
    """Same-class call closure: methods of *family* reachable from the
    entry methods over resolved call edges (deterministic order)."""
    seen: list[str] = []
    queue = [q for q in entries if q is not None]
    marked = set(queue)
    while queue:
        qname = queue.pop(0)
        seen.append(qname)
        for _site, callee in program.callees(qname):
            if callee in marked:
                continue
            fn = program.functions.get(callee)
            if fn is None or fn.class_qname not in family:
                continue
            marked.add(callee)
            queue.append(callee)
    return seen


def _inline_volatile(program: Program, cls: ClassInfo, attr: str) -> bool:
    """``# lint: volatile <reason>`` on any class-body line mentioning
    ``self.<attr>`` exempts the attribute (fixture escape hatch; the repo
    policy table is the reviewed place for real exemptions)."""
    info = program.modules.get(cls.module)
    if info is None:
        return False
    lines = info.parsed.source.splitlines()
    end = getattr(cls.node, "end_lineno", None) or cls.node.lineno
    needle = f"self.{attr}"
    for lineno in range(cls.node.lineno, min(end, len(lines)) + 1):
        line = lines[lineno - 1]
        if "lint: volatile" in line and needle in line:
            return True
    return False


@program_rule(
    "S601",
    summary="state-machine attribute mutated on the apply() path but "
            "absent from the snapshot()/transfer_state() return: a "
            "snapshot-installed replica silently diverges from replicas "
            "that replayed the full agreed log",
    example="def apply(self, ...): self._seen.add(key)   "
            "# snapshot() returns only self.data")
def check_snapshot_completeness(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    for cls_qname in sorted(program.classes):
        cls = program.classes[cls_qname]
        mutators = [m for name in MUTATOR_ENTRIES
                    if (m := program.resolve_method(cls_qname, name))]
        captures = [m for name in CAPTURE_ENTRIES
                    if (m := program.resolve_method(cls_qname, name))]
        if not mutators or not captures:
            continue
        # (The StateMachine Protocol itself lands here too: its `...`
        # bodies write nothing, so it yields no findings.)
        family = _class_family(program, cls)

        first_write: dict[str, tuple[str, ast.AST]] = {}
        for qname in _closure(program, mutators, family):
            fn = program.functions[qname]
            for write in attr_writes(fn):
                key = write.attr
                lineno = getattr(write.node, "lineno", 0)
                prev = first_write.get(key)
                if prev is None or (prev[0] == fn.path
                                    and lineno < getattr(prev[1], "lineno",
                                                         0)):
                    first_write[key] = (fn.path, write.node)

        captured: set[str] = set()
        for qname in _closure(program, captures, family):
            captured |= attrs_into_return(program.functions[qname])

        capture_names = "/".join(
            name for name in CAPTURE_ENTRIES
            if program.resolve_method(cls_qname, name) is not None)
        for attr in sorted(set(first_write) - captured):
            if pctx.policy.volatile_reason(cls_qname, attr) is not None:
                continue
            if _inline_volatile(program, cls, attr):
                continue
            path, node = first_write[attr]
            yield pctx.finding(
                "S601", path, node,
                f"{cls.name}.{attr} is written on the apply() path but "
                f"never flows into {capture_names}(): a "
                f"snapshot-installed replica would silently lose it and "
                f"diverge from replicas that replayed the full agreed "
                f"log; include it in the state image or record it as "
                f"volatile in the lint policy")
