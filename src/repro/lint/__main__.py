"""``python -m repro.lint`` dispatch."""

import sys

from .cli import main

sys.exit(main())
