"""Finding record shared by every rule and reporter."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the exit status.

    Every current rule is an ``ERROR`` — the analyzer is a CI gate, and a
    warning tier that never fails the build is a finding graveyard.  The
    tier exists so a future probationary rule can ship observing-only.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity}] {self.message}")

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
