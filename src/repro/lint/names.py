"""Name-resolution helpers shared by the rule checkers.

The rules match *qualified* call targets (``time.monotonic``,
``asyncio.create_task``, ``os.urandom`` …).  Source code reaches those
through import aliases (``import time as t``, ``from asyncio import
create_task``), so every file gets an :class:`ImportMap` translating the
local name a call site uses back to the canonical dotted path.
Resolution is lexical and best-effort — a name smuggled through a
variable (``f = time.time; f()``) escapes it, which is acceptable for a
repo-policy gate (and the differential tests still back it up).
"""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["ImportMap", "dotted_name", "resolve_call"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias -> canonical dotted prefix, collected per module."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` -> ``a``; ``import a.b as
                    # c`` binds ``c`` -> ``a.b``.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue        # relative imports stay repo-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str:
        """Canonicalise the leading segment of a dotted name."""
        head, _, rest = name.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target


def resolve_call(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """Canonical dotted name of a call target, or None if not static."""
    name = dotted_name(node.func)
    if name is None:
        return None
    return imports.resolve(name)
