"""X-rules: protocol exhaustiveness across every dispatch site.

The repo's protocol surface is a pair of closed unions — ``Effect =
Union[Send, Deliver, RoundAdvance]`` and ``Message = Union[Broadcast,
FailureNotice, Forward, Backward]`` — plus the binary codec's envelope
kind constants (``_K_BCAST`` … ``_K_CONTROL``).  Each is dispatched in
several places (the sim and TCP embeddings' effect executors, the
server's message handler, both codecs' encoders/decoders).  Adding a
member to the union or a kind constant without updating *every*
dispatcher is a silent protocol hole: the new member falls through an
``else: raise`` at the first live round, or worse, is quietly dropped.

* **X501** — a dispatch site (``isinstance`` / ``type() is`` chain or
  ``match``) that tests two or more members of a program-defined union
  but not all of them.  A trailing ``else: raise`` does **not** excuse
  the gap: the rule exists precisely so the hole is found at lint time,
  not at the first raise in production.
* **X502** — the same for integer kind-constant families: module
  constants sharing a ``PREFIX_`` (two or more members, int values,
  e.g. ``_K_BCAST``/``_K_FAIL``/…), dispatched by ``==`` comparisons or
  ``match`` cases against the same subject.

Both rules group tests per (function, subject expression): the codec's
sequential ``if kind == _K_x: return`` style counts as one dispatch
site, the same as a strict ``elif`` chain or a ``match``.  Membership
is matched by simple (unqualified) class/constant name, which resolves
cross-module dispatchers (``from .messages import Broadcast``) without
needing the test expressions to be import-resolvable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .callgraph import FunctionInfo, Program, _body_walk
from .findings import Finding
from .names import dotted_name
from .registry import ProgramContext, program_rule

__all__ = ["collect_unions", "collect_constant_families"]


# --------------------------------------------------------------------- #
# Declarations: unions and constant families
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class UnionDecl:
    """``Name = Union[A, B, C]`` (or PEP 604) at module level."""

    name: str                     #: e.g. "Effect"
    module: str
    members: frozenset[str]       #: simple class names


@dataclass(frozen=True)
class ConstFamily:
    """Module-level int constants sharing a ``PREFIX_``."""

    prefix: str                   #: e.g. "_K_"
    module: str
    members: frozenset[str]       #: e.g. {"_K_BCAST", "_K_FAIL", ...}


def _union_member_names(value: ast.expr) -> Optional[list[str]]:
    """Member simple names of a ``Union[...]`` / ``A | B`` expression."""
    if isinstance(value, ast.Subscript):
        base = dotted_name(value.value)
        if base not in ("Union", "typing.Union"):
            return None
        elts = value.slice.elts if isinstance(value.slice, ast.Tuple) \
            else [value.slice]
        names = [dotted_name(e) for e in elts]
    elif isinstance(value, ast.BinOp) and isinstance(value.op, ast.BitOr):
        names = []
        stack: list[ast.expr] = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, ast.BitOr):
                stack.extend((node.left, node.right))
            else:
                names.append(dotted_name(node))
    else:
        return None
    if any(n is None for n in names):
        return None
    return [n.rsplit(".", 1)[-1] for n in names if n is not None]


def collect_unions(program: Program) -> list[UnionDecl]:
    """Module-level unions whose members are all in-program classes."""
    class_names = {cls.name for cls in program.classes.values()}
    out: list[UnionDecl] = []
    for info in program.modules.values():
        for node in info.tree.body:
            if not isinstance(node, ast.Assign) \
                    or len(node.targets) != 1 \
                    or not isinstance(node.targets[0], ast.Name):
                continue
            members = _union_member_names(node.value)
            if members is None or len(members) < 2:
                continue
            if not all(m in class_names for m in members):
                continue            # e.g. int | None — not a protocol union
            out.append(UnionDecl(name=node.targets[0].id,
                                 module=info.module,
                                 members=frozenset(members)))
    return sorted(out, key=lambda u: (u.module, u.name))


def collect_constant_families(program: Program) -> list[ConstFamily]:
    """Int-constant families: ``_K_BCAST = 0; _K_FAIL = 1; ...``."""
    by_key: dict[tuple[str, str], set[str]] = {}
    for info in program.modules.values():
        for node in info.tree.body:
            if not isinstance(node, ast.Assign) \
                    or len(node.targets) != 1 \
                    or not isinstance(node.targets[0], ast.Name):
                continue
            if not (isinstance(node.value, ast.Constant)
                    and type(node.value.value) is int):
                continue
            name = node.targets[0].id
            if "_" not in name.strip("_") or name != name.upper():
                continue
            prefix = name.rsplit("_", 1)[0] + "_"
            by_key.setdefault((info.module, prefix), set()).add(name)
    return sorted(
        (ConstFamily(prefix=prefix, module=module,
                     members=frozenset(members))
         for (module, prefix), members in by_key.items()
         if len(members) >= 2),
        key=lambda f: (f.module, f.prefix))


# --------------------------------------------------------------------- #
# Dispatch-site collection
# --------------------------------------------------------------------- #

@dataclass
class DispatchSite:
    """All membership tests one function makes against one subject."""

    node: ast.AST                 #: first test (finding anchor)
    tested: set[str] = field(default_factory=set)


def _subject_key(expr: ast.expr) -> Optional[str]:
    """Stable grouping key for a dispatch subject expression."""
    name = dotted_name(expr)
    if name is not None:
        return name
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id == "type" and len(expr.args) == 1:
        inner = dotted_name(expr.args[0])
        if inner is not None:
            return f"type({inner})"
    return None


def _tested_class_names(expr: ast.expr) -> list[str]:
    """Class simple names out of an isinstance second argument."""
    elts = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    out = []
    for elt in elts:
        name = dotted_name(elt)
        if name is not None:
            out.append(name.rsplit(".", 1)[-1])
    return out


def _record(sites: dict[str, DispatchSite], subject: str,
            node: ast.AST, names: Iterable[str]) -> None:
    site = sites.setdefault(subject, DispatchSite(node=node))
    site.tested.update(names)


def class_dispatch_sites(fn: FunctionInfo) -> dict[str, DispatchSite]:
    """Subject key -> class-membership tests inside *fn* (X501)."""
    sites: dict[str, DispatchSite] = {}
    for node in _body_walk(fn.node):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" \
                and len(node.args) == 2:
            subject = _subject_key(node.args[0])
            if subject is not None:
                _record(sites, subject, node,
                        _tested_class_names(node.args[1]))
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], ast.Is):
            subject = _subject_key(node.left)
            name = dotted_name(node.comparators[0])
            if subject is not None and name is not None:
                _record(sites, subject, node,
                        [name.rsplit(".", 1)[-1]])
        elif isinstance(node, ast.Match):
            subject = _subject_key(node.subject)
            if subject is None:
                continue
            names: list[str] = []
            for case in node.cases:
                for pat in ast.walk(case.pattern):
                    if isinstance(pat, ast.MatchClass):
                        name = dotted_name(pat.cls)
                        if name is not None:
                            names.append(name.rsplit(".", 1)[-1])
            if names:
                _record(sites, subject, node, names)
    return sites


def constant_dispatch_sites(fn: FunctionInfo) -> dict[str, DispatchSite]:
    """Subject key -> kind-constant equality tests inside *fn* (X502)."""
    sites: dict[str, DispatchSite] = {}
    for node in _body_walk(fn.node):
        if isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], ast.Eq):
            for subj_expr, const_expr in ((node.left,
                                           node.comparators[0]),
                                          (node.comparators[0],
                                           node.left)):
                subject = _subject_key(subj_expr)
                const = dotted_name(const_expr)
                if subject is None or const is None:
                    continue
                name = const.rsplit(".", 1)[-1]
                if name == name.upper() and "_" in name.strip("_"):
                    _record(sites, subject, node, [name])
        elif isinstance(node, ast.Match):
            subject = _subject_key(node.subject)
            if subject is None:
                continue
            names = []
            for case in node.cases:
                for pat in ast.walk(case.pattern):
                    if isinstance(pat, ast.MatchValue):
                        name = dotted_name(pat.value)
                        if name is not None:
                            names.append(name.rsplit(".", 1)[-1])
            if names:
                _record(sites, subject, node, names)
    return sites


# --------------------------------------------------------------------- #
# The rules
# --------------------------------------------------------------------- #

def _fmt_missing(missing: frozenset[str]) -> str:
    return ", ".join(sorted(missing))


@program_rule(
    "X501",
    summary="dispatch over a protocol union (Effect/Message) tests "
            "some members but not all — adding a member must update "
            "every dispatcher, and else:raise only finds the hole at "
            "runtime",
    example="if isinstance(e, Send): ...\n"
            "       elif isinstance(e, Deliver): ...   "
            "# RoundAdvance unhandled")
def check_union_exhaustive(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    unions = collect_unions(program)
    if not unions:
        return
    for fn in program.functions.values():
        for subject, site in sorted(class_dispatch_sites(fn).items()):
            if len(site.tested) < 2:
                continue
            candidates = [u for u in unions
                          if site.tested <= u.members]
            if not candidates:
                continue
            union = min(candidates,
                        key=lambda u: (len(u.members), u.name))
            missing = union.members - site.tested
            if missing:
                yield pctx.finding(
                    "X501", fn.path, site.node,
                    f"dispatch on {subject!r} in {fn.qname}() handles "
                    f"{len(site.tested)} of {len(union.members)} "
                    f"{union.name} members; unhandled: "
                    f"{_fmt_missing(missing)} — add the arm (or an "
                    f"explicit isinstance test before a raise)")


@program_rule(
    "X502",
    summary="dispatch over a wire kind-constant family (e.g. _K_*) "
            "tests some constants but not all — a new envelope kind "
            "without a dispatcher arm is a silent protocol hole",
    example="if kind == _K_BCAST: ...\n"
            "       elif kind == _K_FAIL: ...   # _K_FWD.._K_CONTROL "
            "unhandled")
def check_kind_exhaustive(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    families = collect_constant_families(program)
    if not families:
        return
    for fn in program.functions.values():
        for subject, site in sorted(
                constant_dispatch_sites(fn).items()):
            for family in families:
                tested = site.tested & family.members
                if len(tested) < 2:
                    continue
                missing = family.members - tested
                if missing:
                    yield pctx.finding(
                        "X502", fn.path, site.node,
                        f"dispatch on {subject!r} in {fn.qname}() "
                        f"handles {len(tested)} of "
                        f"{len(family.members)} {family.prefix}* "
                        f"constants; unhandled: "
                        f"{_fmt_missing(missing)} — add the arm so "
                        f"new kinds cannot fall through silently")
