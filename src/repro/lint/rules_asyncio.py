"""A-rules: asyncio discipline in the TCP runtime.

A201 encodes the PR 3 incident: ``asyncio.create_task`` handlers whose
result was discarded kept running across ``stop()`` and died with
"event loop is closed" warnings — every spawned task must be held
somewhere so a lifecycle owner can cancel and await it.

A202 guards the runtime's event loop latency: a synchronous sleep,
subprocess, or blocking file/socket call inside ``async def`` stalls
every connection sharing the loop (and with the protocol lock held, the
node's own round driving).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .findings import Finding
from .names import ImportMap, resolve_call
from .registry import RuleContext, rule

_SPAWNERS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})


def _is_task_spawn(node: ast.Call, imports: ImportMap) -> bool:
    name = resolve_call(node, imports)
    if name in _SPAWNERS:
        return True
    # loop.create_task(...) through any local name for a loop object
    return name is not None and name.endswith(".create_task")


@rule("A201",
      summary="asyncio task spawned and discarded (untracked tasks leak "
              "across stop() — the PR 3 incident class)",
      example="asyncio.create_task(pump())   "
              "# self._tasks.append(asyncio.create_task(pump()))")
def check_untracked_task(tree: ast.Module,
                         ctx: RuleContext) -> Iterable[Finding]:
    imports = ImportMap(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call) \
                and _is_task_spawn(node.value, imports):
            yield ctx.finding(
                "A201", node.value,
                "task handle discarded: store it (assign/append) so a "
                "lifecycle owner can cancel and await it on stop — "
                "untracked handlers outlive the loop (PR 3 leak)")


_BLOCKING = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
})

#: blocking builtins; ``open`` only flags the direct builtin call —
#: ``asyncio.open_connection`` etc. resolve to dotted names and miss this
_BLOCKING_BUILTINS = frozenset({"open", "input"})


def _enclosing_function(node: ast.AST,
                        ctx: RuleContext) -> Optional[ast.AST]:
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            return anc
    return None


@rule("A202",
      summary="blocking call inside async def on the runtime hot path "
              "(stalls every connection sharing the event loop)",
      example="async def pump(self): time.sleep(1)   "
              "# await asyncio.sleep(1)")
def check_blocking_in_async(tree: ast.Module,
                            ctx: RuleContext) -> Iterable[Finding]:
    imports = ImportMap(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node, imports)
        blocking = name in _BLOCKING or (
            isinstance(node.func, ast.Name)
            and node.func.id in _BLOCKING_BUILTINS)
        if not blocking:
            continue
        fn = _enclosing_function(node, ctx)
        if isinstance(fn, ast.AsyncFunctionDef):
            label = name or node.func.id  # type: ignore[union-attr]
            yield ctx.finding(
                "A202", node,
                f"blocking call {label}() inside async def "
                f"{fn.name}(): use the asyncio equivalent or push it "
                f"through run_in_executor")
