"""Per-line suppression comments: ``# lint: ignore[RULE-ID] reason``.

A suppression applies to the findings of the named rule(s) on its own
line, or — when written as a standalone comment line — on the next
non-comment line (for statements that are too long to share a line with
a justification).  Multiple ids separate with commas:
``# lint: ignore[D104, A201] reason``.

The suppression inventory is itself linted so it cannot rot:

* **S901** — suppression without a reason string.  Every exception must
  explain itself to the next reader; the acceptance bar for the repo is
  zero unexplained suppressions.
* **S902** — suppression naming an unknown rule id (typo'd suppressions
  silently suppress nothing, then rot).
* **S903** — suppression that matched no finding (the code was fixed or
  the rule changed; delete the comment).

S-rules are registered like any other rule so ``--list-rules`` shows
them, but they are emitted by the analyzer's suppression pass, not by a
tree checker — and they cannot themselves be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .findings import Finding
from .registry import RuleContext, rule

__all__ = ["Suppression", "collect_suppressions", "apply_suppressions"]

_PATTERN = re.compile(
    r"#\s*lint:\s*ignore\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*)$")


@dataclass
class Suppression:
    """One parsed ignore comment."""

    line: int                     #: line the comment sits on
    applies_to: int               #: line whose findings it suppresses
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = field(default=False)


def _meta_rule(tree: ast.Module, ctx: RuleContext) -> Iterable[Finding]:
    """S-rules are produced by :func:`apply_suppressions`, not here."""
    return ()


rule("S901", summary="suppression comment without a reason "
                     "(every exception must explain itself)",
     example="x = random.random()  # lint: ignore[D102]")(_meta_rule)
rule("S902", summary="suppression naming an unknown rule id "
                     "(typo suppresses nothing, then rots)",
     example="# lint: ignore[D999] no such rule")(_meta_rule)
rule("S903", summary="suppression that matched no finding "
                     "(stale — delete the comment)",
     example="x = 1  # lint: ignore[D102] fixed long ago")(_meta_rule)

_S_RULES = frozenset({"S901", "S902", "S903"})


def collect_suppressions(source: str) -> list[Suppression]:
    """Parse every ignore comment, resolving standalone comments to the
    next code line."""
    out: list[Suppression] = []
    standalone: list[tuple[int, Suppression]] = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover
        return out

    code_lines: set[int] = set()
    comment_lines: dict[int, str] = {}
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comment_lines[tok.start[0]] = tok.string
        elif tok.type not in (tokenize.NL, tokenize.NEWLINE,
                              tokenize.INDENT, tokenize.DEDENT,
                              tokenize.ENCODING, tokenize.ENDMARKER):
            code_lines.add(tok.start[0])

    for line_no, comment in sorted(comment_lines.items()):
        match = _PATTERN.search(comment)
        if match is None:
            continue
        ids = tuple(part.strip() for part in
                    match.group("ids").split(",") if part.strip())
        supp = Suppression(line=line_no, applies_to=line_no,
                           rule_ids=ids,
                           reason=match.group("reason").strip())
        if line_no in code_lines:
            out.append(supp)
        else:
            standalone.append((line_no, supp))

    ordered_code = sorted(code_lines)
    for line_no, supp in standalone:
        nxt = next((ln for ln in ordered_code if ln > line_no), None)
        if nxt is not None:
            supp.applies_to = nxt
        out.append(supp)
    return out


def apply_suppressions(findings: Iterable[Finding],
                       suppressions: list[Suppression],
                       known_ids: frozenset[str],
                       path: str) -> Iterator[Finding]:
    """Drop suppressed findings; emit S901/S902/S903 meta findings."""
    by_line: dict[int, list[Suppression]] = {}
    for supp in suppressions:
        by_line.setdefault(supp.applies_to, []).append(supp)

    for finding in findings:
        matched = None
        for supp in by_line.get(finding.line, ()):
            if finding.rule_id in supp.rule_ids and supp.reason:
                matched = supp
                break
        if matched is not None:
            matched.used = True
            continue
        yield finding

    for supp in suppressions:
        if not supp.reason:
            yield Finding(
                path=path, line=supp.line, col=0, rule_id="S901",
                message=f"suppression of {', '.join(supp.rule_ids) or '?'}"
                        f" has no reason: write WHY the finding is safe "
                        f"here (# lint: ignore[ID] reason)")
            continue
        unknown = [rid for rid in supp.rule_ids
                   if rid not in known_ids or rid in _S_RULES]
        if unknown or not supp.rule_ids:
            yield Finding(
                path=path, line=supp.line, col=0, rule_id="S902",
                message=f"suppression names unknown/unsuppressable rule "
                        f"id(s) {unknown or ['<empty>']}: see "
                        f"--list-rules for the catalog")
            continue
        if not supp.used:
            yield Finding(
                path=path, line=supp.line, col=0, rule_id="S903",
                message=f"stale suppression of "
                        f"{', '.join(supp.rule_ids)}: no finding on "
                        f"line {supp.applies_to} — delete the comment")
