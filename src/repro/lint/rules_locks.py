"""L-rules: lock discipline in the TCP runtime.

Encodes the PR 6 incident: ``RuntimeNode._connect``'s 40-attempt dial
retry loop awaited ``asyncio.open_connection`` and ``asyncio.sleep``
while the caller held ``self._lock`` — the node's own round driving
stalled for the full ~41 s backoff whenever a successor died, long
enough to look like a lost round.  The rule flags awaiting network or
sleep primitives *lexically* inside an ``async with <...lock...>:``
body: slow I/O belongs outside the protocol lock's critical section.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .findings import Finding
from .names import dotted_name
from .registry import RuleContext, rule

#: fully-dotted awaitables that never belong under a lock
_SLOW_QUALIFIED = frozenset({
    "asyncio.sleep",
    "asyncio.open_connection",
    "asyncio.start_server",
    "asyncio.wait_for",
    "asyncio.wait",
    "asyncio.gather",
})

#: method names (last attribute segment) that mean network/timer I/O
_SLOW_METHODS = frozenset({
    "sleep", "open_connection", "wait_for", "wait", "gather",
    "drain", "read", "readline", "readexactly", "readuntil",
    "wait_closed", "connect", "_connect", "accept", "getaddrinfo",
    "sock_recv", "sock_sendall", "sock_connect", "sock_accept",
})


def _is_lock_context(item: ast.withitem) -> bool:
    name = dotted_name(item.context_expr)
    if name is None and isinstance(item.context_expr, ast.Call):
        name = dotted_name(item.context_expr.func)
    return name is not None and "lock" in name.lower()


def _slow_await_target(node: ast.Await) -> str | None:
    value = node.value
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    if name in _SLOW_QUALIFIED:
        return name
    last = name.rsplit(".", 1)[-1]
    if last in _SLOW_METHODS:
        return name
    return None


def _awaits_in_body(body: list[ast.stmt]) -> Iterator[ast.Await]:
    """Awaits lexically inside *body*, not descending into nested
    function definitions (their awaits run under their own caller)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Await):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@rule("L301",
      summary="await of a network/sleep primitive while holding a lock "
              "(async with ...lock: — the PR 6 stall class)",
      example="async with self._lock: await asyncio.open_connection(h, p)")
def check_await_under_lock(tree: ast.Module,
                           ctx: RuleContext) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncWith):
            continue
        if not any(_is_lock_context(item) for item in node.items):
            continue
        for awaited in _awaits_in_body(node.body):
            target = _slow_await_target(awaited)
            if target is not None:
                yield ctx.finding(
                    "L301", awaited,
                    f"await {target}(...) while holding the lock: the "
                    f"critical section blocks every other coroutine for "
                    f"the full I/O/backoff duration (PR 6 stalled round "
                    f"driving ~41s this way); move the await outside "
                    f"the lock or copy state and release first")
