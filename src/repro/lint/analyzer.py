"""File walking, rule dispatch, and suppression filtering.

A lint pass now has two stages over one shared parse:

1. every file is parsed once through the :class:`ASTCache` and the
   per-file (lexical) rules run on it;
2. the parsed set is assembled into a :class:`Program` (call graph) and
   the whole-program rules run once, emitting findings into whatever
   file each defect lives in.

Suppressions are applied *after* both stages, per file, so a
``# lint: ignore[L401] reason`` works on whole-program findings exactly
like lexical ones and S903 staleness accounts for both.  Policy scoping
for program rules keys on the module of the file the *finding* lands
in, mirroring the per-file behaviour.
"""

from __future__ import annotations

import os
from typing import Container, Iterable, Optional, Sequence

from .astcache import ASTCache, ParsedFile, default_cache
from .callgraph import Program
from .findings import Finding
from .policy import DEFAULT_POLICY, Policy, module_of_path
from .registry import (ProgramContext, RuleContext, file_rules,
                       known_rule_ids, program_rules)
from .suppress import apply_suppressions, collect_suppressions

__all__ = ["lint_source", "lint_paths", "iter_python_files"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", "build", "dist"})


def _file_rule_findings(parsed: ParsedFile, module: str,
                        policy: Policy) -> list[Finding]:
    ctx = RuleContext(path=parsed.path, module=module,
                      source=parsed.source, parents=parsed.parents)
    raw: list[Finding] = []
    for rule in file_rules():
        if policy.applies(rule.id, module):
            raw.extend(rule.check(parsed.tree, ctx))
    return raw


def _program_rule_findings(files: Sequence[tuple[str, ParsedFile]],
                           policy: Policy) -> list[Finding]:
    program = Program.build(files)
    module_of = {parsed.path: module for module, parsed in files}
    pctx = ProgramContext(program=program, policy=policy)
    raw: list[Finding] = []
    for rule in program_rules():
        for finding in rule.check(pctx):
            module = module_of.get(finding.path, "")
            if policy.applies(rule.id, module):
                raw.append(finding)
    return raw


def _apply_file_suppressions(raw: Iterable[Finding], source: str,
                             path: str) -> list[Finding]:
    suppressions = collect_suppressions(source)
    return list(apply_suppressions(raw, suppressions,
                                   known_rule_ids(), path))


def lint_source(source: str, path: str, *,
                module: Optional[str] = None,
                policy: Policy = DEFAULT_POLICY) -> list[Finding]:
    """Lint one source text (whole-program rules see a one-module
    program); *path* is used for reporting and (unless *module*
    overrides it) for policy scoping."""
    if module is None:
        module = module_of_path(path)
    try:
        parsed = default_cache().parse_source(source, path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=exc.offset or 0, rule_id="E000",
                        message=f"syntax error: {exc.msg}")]
    raw = _file_rule_findings(parsed, module, policy)
    raw.extend(_program_rule_findings([(module, parsed)], policy))
    findings = _apply_file_suppressions(raw, source, path)
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a deterministic .py file list."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(paths: Sequence[str], *,
               policy: Policy = DEFAULT_POLICY,
               cache: Optional[ASTCache] = None,
               changed_only: Optional[Container[str]] = None,
               ) -> list[Finding]:
    """Lint every .py file under *paths* in one whole-program pass.

    ``changed_only`` restricts the *reported* findings to the given
    paths — the program (call graph, taint summaries) is still built
    over the full file set, so a change in a callee correctly surfaces
    findings at unchanged callers only when those callers are listed.
    """
    cache = cache if cache is not None else default_cache()
    findings: list[Finding] = []
    parsed_files: list[tuple[str, ParsedFile]] = []
    for file_path in iter_python_files(paths):
        try:
            parsed = cache.parse(file_path)
        except SyntaxError as exc:
            findings.append(Finding(path=file_path, line=exc.lineno or 1,
                                    col=exc.offset or 0, rule_id="E000",
                                    message=f"syntax error: {exc.msg}"))
            continue
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(path=file_path, line=1, col=0,
                                    rule_id="E001",
                                    message=f"unreadable: {exc}"))
            continue
        parsed_files.append((module_of_path(file_path), parsed))

    raw_by_path: dict[str, list[Finding]] = {
        parsed.path: [] for _module, parsed in parsed_files}
    for module, parsed in parsed_files:
        raw_by_path[parsed.path].extend(
            _file_rule_findings(parsed, module, policy))
    for finding in _program_rule_findings(parsed_files, policy):
        raw_by_path.setdefault(finding.path, []).append(finding)

    for _module, parsed in parsed_files:
        findings.extend(_apply_file_suppressions(
            raw_by_path[parsed.path], parsed.source, parsed.path))

    if changed_only is not None:
        findings = [f for f in findings if f.path in changed_only]
    return sorted(findings, key=Finding.sort_key)
