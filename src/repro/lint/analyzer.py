"""File walking, rule dispatch, and suppression filtering."""

from __future__ import annotations

import ast
import os
from typing import Iterable, Optional, Sequence

from .findings import Finding
from .policy import DEFAULT_POLICY, Policy, module_of_path
from .registry import RuleContext, all_rules, known_rule_ids
from .suppress import apply_suppressions, collect_suppressions

__all__ = ["lint_source", "lint_paths", "iter_python_files"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", "build", "dist"})


def _build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def lint_source(source: str, path: str, *,
                module: Optional[str] = None,
                policy: Policy = DEFAULT_POLICY) -> list[Finding]:
    """Lint one source text; *path* is used for reporting and (unless
    *module* overrides it) for policy scoping."""
    if module is None:
        module = module_of_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=exc.offset or 0, rule_id="E000",
                        message=f"syntax error: {exc.msg}")]
    ctx = RuleContext(path=path, module=module, source=source,
                      parents=_build_parents(tree))
    raw: list[Finding] = []
    for rule in all_rules():
        if not policy.applies(rule.id, module):
            continue
        raw.extend(rule.check(tree, ctx))
    suppressions = collect_suppressions(source)
    findings = list(apply_suppressions(raw, suppressions,
                                       known_rule_ids(), path))
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a deterministic .py file list."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(paths: Sequence[str], *,
               policy: Policy = DEFAULT_POLICY) -> list[Finding]:
    """Lint every .py file under *paths*."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(path=file_path, line=1, col=0,
                                    rule_id="E001",
                                    message=f"unreadable: {exc}"))
            continue
        findings.extend(lint_source(source, file_path, policy=policy))
    return sorted(findings, key=Finding.sort_key)
