"""L501: lock-order cycle detection over the interprocedural lock graph.

Two coroutines that acquire the same two locks in opposite orders
deadlock under contention — and the two acquisition paths are almost
never in one function body (that is why the PR 6 class of bug shipped:
the inner acquisition hid behind a call).  L501 builds the program's
lock-acquisition graph:

* a **node** per lock, identified ``Class.attr`` for ``self.<attr>``
  locks and module-qualified otherwise (the same identity in every
  function, so ``node_a._lock`` in two methods is one node);
* an **edge** ``A -> B`` when some function acquires ``B`` (directly via
  a nested ``with``/``async with``, or transitively via a call chain)
  while lexically holding ``A``.

A cycle in that graph is a potential deadlock; each is reported once,
naming both acquisition paths (the held-at edge and a witness chain for
the return path via :meth:`~repro.lint.callgraph.Program.find_chain`).
Re-acquiring the same lock is not an edge (that is a re-entrancy bug,
not an ordering one).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Optional

from .callgraph import FunctionInfo, Program, _FUNC_TYPES
from .findings import Finding
from .names import dotted_name
from .registry import ProgramContext, program_rule
from .rules_locks import _is_lock_context

__all__ = ["lock_name", "function_lock_facts", "LockFacts"]


def lock_name(item: ast.withitem, fn: FunctionInfo) -> Optional[str]:
    """Canonical lock identity for a ``with`` item, or None when the
    context manager is not lock-shaped.  ``self.<attr>`` locks key on
    the owning class so every method of the class shares the node."""
    if not _is_lock_context(item):
        return None
    expr = item.context_expr
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    if name is None:
        return None
    if name.startswith("self.") and fn.class_qname is not None:
        return f"{fn.class_qname.rsplit('.', 1)[-1]}.{name[5:]}"
    if name.startswith("self."):
        return name[5:]
    return f"{fn.module}.{name}"


@dataclass
class LockFacts:
    """Lock-relevant events of one function body."""

    #: ``(lock, node, locks already held lexically)`` per acquisition
    acquisitions: list[tuple[str, ast.AST, tuple[str, ...]]]
    #: ``(held locks, call node)`` for every call expression
    calls: list[tuple[tuple[str, ...], ast.Call]]
    #: held locks per interesting node id (populated on demand by R701)
    held_at: dict[int, tuple[str, ...]]


def function_lock_facts(fn: FunctionInfo,
                        interest: Optional[set[int]] = None) -> LockFacts:
    """Walk *fn* tracking the lexically-held lock stack.  ``interest``
    (node ids) asks for the held set at specific nodes — R701 uses it to
    learn which locks guard each attribute write."""
    facts = LockFacts(acquisitions=[], calls=[], held_at={})

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (*_FUNC_TYPES, ast.Lambda, ast.ClassDef)):
            return
        if interest is not None and id(node) in interest:
            facts.held_at[id(node)] = held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                visit(item.context_expr, inner)
                lock = lock_name(item, fn)
                if lock is not None:
                    facts.acquisitions.append((lock, node, inner))
                    if lock not in inner:
                        inner = inner + (lock,)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, ast.Call):
            facts.calls.append((held, node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.node.body:
        visit(stmt, ())
    return facts


def _acquires_below(program: Program,
                    direct: dict[str, set[str]]) -> dict[str, set[str]]:
    """Locks each function may acquire, transitively (fixpoint over the
    call graph; monotone, so it terminates)."""
    below = {q: set(locks) for q, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for qname in sorted(program.functions):
            mine = below.setdefault(qname, set())
            for _site, callee in program.callees(qname):
                extra = below.get(callee)
                if extra and not extra <= mine:
                    mine |= extra
                    changed = True
    return below


@dataclass
class _Edge:
    fn: FunctionInfo
    node: ast.AST
    describe: str


@program_rule(
    "L501",
    summary="lock-order cycle: two call paths acquire the same locks in "
            "opposite orders (deadlock under contention); both "
            "acquisition paths are named",
    example="async with self._a: async with self._b: ...   "
            "# elsewhere: async with self._b: await self.f()  "
            "# f() takes self._a")
def check_lock_order(pctx: ProgramContext) -> Iterable[Finding]:
    program = pctx.program
    all_facts = {qname: function_lock_facts(fn)
                 for qname, fn in program.functions.items()}
    direct = {qname: {lock for lock, _n, _h in facts.acquisitions}
              for qname, facts in all_facts.items()}
    if sum(1 for locks in direct.values() if locks) < 2 \
            and not any(len(locks) > 1 for locks in direct.values()):
        return                      # fewer than two locks: no cycles
    below = _acquires_below(program, direct)

    edges: dict[tuple[str, str], _Edge] = {}

    def add_edge(held: str, acquired: str, fn: FunctionInfo,
                 node: ast.AST, describe: str) -> None:
        if held == acquired:
            return
        edges.setdefault((held, acquired),
                         _Edge(fn=fn, node=node, describe=describe))

    for qname in sorted(program.functions):
        fn = program.functions[qname]
        facts = all_facts[qname]
        for lock, node, held in facts.acquisitions:
            for h in held:
                add_edge(h, lock, fn, node,
                         f"{fn.qname} acquires {lock} while holding {h}")
        for held, call in facts.calls:
            if not held:
                continue
            site = program.site_for(call)
            if site is None or site.callee is None:
                continue
            for target in sorted(below.get(site.callee, ())):
                for h in held:
                    if h == target:
                        continue
                    chain = program.find_chain(
                        site.callee,
                        lambda f, t=target: t in direct.get(f.qname, set()))
                    via = " -> ".join(
                        c.rsplit(".", 1)[-1] for c in chain) \
                        if chain else site.callee.rsplit(".", 1)[-1]
                    add_edge(h, target, fn, call,
                             f"{fn.qname} calls into {via} (which "
                             f"acquires {target}) while holding {h}")

    succ: dict[str, list[str]] = {}
    for a, b in edges:
        succ.setdefault(a, []).append(b)
    for a in succ:
        succ[a].sort()

    reported: set[frozenset[str]] = set()
    for (a, b) in sorted(edges):
        # shortest path b -> ... -> a closes the cycle
        parent: dict[str, Optional[str]] = {b: None}
        queue = [b]
        while queue and a not in parent:
            cur = queue.pop(0)
            for nxt in succ.get(cur, ()):
                if nxt not in parent:
                    parent[nxt] = cur
                    queue.append(nxt)
        if a not in parent:
            continue
        path = [a]
        cur: Optional[str] = a
        while parent[cur] is not None:          # type: ignore[index]
            cur = parent[cur]                   # type: ignore[index]
            path.append(cur)
        path.reverse()                          # b ... a
        cycle = frozenset(path) | {b}
        if cycle in reported:
            continue
        reported.add(cycle)
        forward = edges[(a, b)]
        back = edges[(path[0], path[1])]
        yield pctx.finding(
            "L501", forward.fn.path, forward.node,
            f"lock-order cycle between {a} and {b}: "
            f"{forward.describe}; but {back.describe} "
            f"(full return path {' -> '.join(path)}), so two "
            f"contenders can deadlock; pick one global acquisition "
            f"order")
