"""Module-path -> rule-set policy.

The *policy* is where repo-wide decisions live, so they are reviewable
in one place instead of scattered across ``# lint: ignore`` comments:

* which packages each rule family gates (determinism rules bind the
  protocol core / simulator / graph constructors; asyncio and lock
  rules bind the TCP runtime),
* which modules carry a deliberate, reviewed exemption — today only the
  frozen-dataclass fast path in :mod:`repro.runtime.wire` (F401), whose
  whole point is bypassing ``__init__`` validation on the decode hot
  path.

The seeded-RNG allowance (``random.Random(seed)`` is fine, module-level
``random.*`` functions are not) is encoded in the D102 checker itself:
it is a semantic distinction, not a path one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["Policy", "DEFAULT_POLICY", "module_of_path"]


def _in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass(frozen=True)
class Policy:
    """Which rules apply where.

    ``scopes`` maps rule id -> module prefixes the rule gates; a rule
    absent from ``scopes`` applies everywhere.  ``exemptions`` maps rule
    id -> module prefixes that are whitelisted *out* with a recorded
    reason (shown when listing the policy).
    """

    scopes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    exemptions: Mapping[str, tuple[tuple[str, str], ...]] = \
        field(default_factory=dict)
    #: S601 volatile state: class name (simple or qualified) ->
    #: ``((attr, reason), ...)`` — attributes ``apply()`` may mutate that
    #: are *deliberately* excluded from ``snapshot()`` (caches, metrics),
    #: recorded here so every exemption is reviewable in one place.
    volatile: Mapping[str, tuple[tuple[str, str], ...]] = \
        field(default_factory=dict)

    def applies(self, rule_id: str, module: str) -> bool:
        scope = self.scopes.get(rule_id)
        if scope is not None and not _in_scope(module, scope):
            return False
        for prefix, _reason in self.exemptions.get(rule_id, ()):
            if _in_scope(module, (prefix,)):
                return False
        return True

    def volatile_reason(self, class_qname: str, attr: str) -> Optional[str]:
        """The recorded reason when *attr* of *class_qname* is volatile
        (keys match on the full qname or the bare class name)."""
        simple = class_qname.rsplit(".", 1)[-1]
        for key in (class_qname, simple):
            for name, reason in self.volatile.get(key, ()):
                if name == attr:
                    return reason
        return None


#: Modules whose behaviour must be a pure function of explicit seeds and
#: inputs: the protocol core (differential data-plane oracles), the
#: discrete-event simulator (trace-equality tests), and the overlay
#: constructors (the same GS(n,d) digraph must come out on every host).
_DETERMINISTIC = ("repro.core", "repro.sim", "repro.graphs")

DEFAULT_POLICY = Policy(
    scopes={
        "D101": _DETERMINISTIC,
        "D102": _DETERMINISTIC,
        "D103": _DETERMINISTIC,
        "D104": _DETERMINISTIC,
        "A201": ("repro",),
        "A202": ("repro.runtime",),
        "L301": ("repro.runtime",),
        "F401": ("repro",),
        # Whole-program rules.  D201 additionally gates the runtime:
        # its sinks (envelope payloads, RoundContext stores) are agreed
        # state no matter which package constructs them — but not the
        # benches, which legitimately embed wall-clock timestamps in
        # payloads to measure latency.
        "D201": _DETERMINISTIC + ("repro.runtime",),
        "A301": ("repro.runtime",),
        "L401": ("repro.runtime",),
        "X501": ("repro",),
        "X502": ("repro",),
        # Protocol-state verifiers (PR 10).  S601/L501 gate every repro
        # package (state machines live in repro.api, locks anywhere);
        # W601 is anchored to the wire planes; R701 to the two layers a
        # blocking facade thread and the event loop actually share.
        "S601": ("repro",),
        "W601": ("repro.runtime",),
        "L501": ("repro",),
        "R701": ("repro.runtime", "repro.api"),
    },
    exemptions={
        "F401": ((
            "repro.runtime.wire",
            "binary-codec decode fast path: frozen Request/Batch are "
            "constructed via object.__new__ + __dict__.update by design "
            "(5x the validated constructor; covered by cross-codec "
            "differential tests)",
        ),),
    },
)


def module_of_path(path: str) -> str:
    """Dotted module for a file path, anchored at the ``repro`` package.

    Files outside any ``repro`` package component (scratch files, test
    fixtures) resolve to their bare stem, so scoped rules do not apply
    unless the caller passes an explicit ``module=`` override.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
        return ".".join(parts) if parts else "repro"
    return parts[-1] if parts else ""
