"""F-rules: frozen-dataclass construction hygiene.

The wire types (``Request``, ``Batch``) are frozen dataclasses whose
``__init__`` enforces invariants.  The binary codec's decode fast path
deliberately bypasses that with ``object.__new__`` + ``__dict__.update``
(~5x faster, covered by cross-codec differential tests) — but that
construction style is safe *only* there, where every field is filled
from a just-validated frame.  Anywhere else it silently produces
half-initialised frozen objects, so the pattern is whitelisted to
``repro.runtime.wire`` by policy (see :mod:`repro.lint.policy`) and
flagged everywhere else.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .findings import Finding
from .names import dotted_name
from .registry import RuleContext, rule


@rule("F401",
      summary="frozen-dataclass bypass (object.__new__ / __dict__ "
              "mutation) outside the whitelisted codec fast path",
      example="req = object.__new__(Request); req.__dict__.update(...)")
def check_frozen_bypass(tree: ast.Module,
                        ctx: RuleContext) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "object.__new__":
                yield ctx.finding(
                    "F401", node,
                    "object.__new__ skips __init__ validation of frozen "
                    "wire types; only the repro.runtime.wire decode "
                    "fast path is whitelisted for this (by policy)")
            elif name is not None and name.endswith(".__dict__.update"):
                yield ctx.finding(
                    "F401", node,
                    "__dict__.update on a (frozen) instance bypasses "
                    "dataclass immutability; whitelisted only in the "
                    "repro.runtime.wire decode fast path")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    base = dotted_name(target.value)
                    if base is not None and base.endswith(".__dict__"):
                        yield ctx.finding(
                            "F401", target,
                            "__dict__[...] assignment bypasses frozen-"
                            "dataclass immutability; whitelisted only "
                            "in the repro.runtime.wire decode fast path")
