"""Replicated state machines on top of the deployment facade.

AllConcur's application model (§1.1) is state-machine replication: every
server holds a full replica, queries are answered locally, and updates are
atomically broadcast so all replicas apply them in the same order.  This
module is the reusable version of that pattern:

* :class:`StateMachine` — the pluggable application protocol: one
  deterministic ``apply(round, origin, request)`` transition plus a
  comparable ``snapshot()``;
* :class:`ReplicatedStateMachine` — the driver: one replica per member,
  fed by the deployment's per-node delivery stream (in A-delivery order,
  which agreement makes identical everywhere), with convergence checks;
* :class:`ReplicatedKVStore` — a worked example (the shape of the paper's
  distributed-ledger scenario).

Because the driver only speaks :class:`~repro.api.deployment.Deployment`,
the same application state machine runs on the simulator and over TCP.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from ..core.batching import Request, iter_client_requests
from .deployment import DeliveryEvent, Deployment

__all__ = ["StateMachine", "ReplicatedStateMachine", "ReplicatedKVStore"]


class _DedupTable:
    """Exactly-once dedup over ``(client, seq)`` in bounded memory.

    A plain set grows by one entry per request **ever** applied — a
    long-running session leaks its entire history.  But per-session seqs
    are allocated monotonically and batches preserve submission order, so
    nearly every applied seq extends a contiguous prefix: track, per
    client, a *watermark* (every seq ``<= wm`` applied) plus a sparse set
    of out-of-order seqs above it (possible across failover resubmission,
    where a retried older seq can trail a newer one).  Advancing the
    prefix drains the sparse set, so steady state holds O(reorder window)
    integers per session, not O(total requests).
    """

    __slots__ = ("_clients",)

    def __init__(self) -> None:
        #: client -> [watermark, sparse out-of-order seqs above it]
        self._clients: dict[str, list[Any]] = {}

    def __contains__(self, key: tuple[str, int]) -> bool:
        entry = self._clients.get(key[0])
        if entry is None:
            return False
        return bool(key[1] <= entry[0] or key[1] in entry[1])

    def add(self, key: tuple[str, int]) -> None:
        client, seq = key
        entry = self._clients.get(client)
        if entry is None:
            entry = self._clients[client] = [-1, set()]
        wm, sparse = entry
        if seq == wm + 1:
            wm += 1
            while wm + 1 in sparse:
                wm += 1
                sparse.discard(wm)
            entry[0] = wm
        elif seq > wm:
            sparse.add(seq)

    def watermark(self, client: str) -> int:
        entry = self._clients.get(client)
        return -1 if entry is None else int(entry[0])

    def state_size(self) -> int:
        """Retained dedup entries: one watermark per client plus the
        sparse out-of-order seqs — the quantity the O(window) memory
        test bounds."""
        return sum(1 + len(entry[1]) for entry in self._clients.values())

    def snapshot(self) -> tuple[Any, ...]:
        """Comparable, order-independent image of the dedup state —
        part of the transferable replica image: a snapshot-installed
        replica must keep skipping exactly the duplicates a
        full-replay replica would skip."""
        return tuple(sorted(
            (client, entry[0], tuple(sorted(entry[1])))
            for client, entry in self._clients.items()))

    def restore(self, snap: tuple[Any, ...]) -> None:
        """Inverse of :meth:`snapshot`."""
        self._clients = {client: [watermark, set(sparse)]
                         for client, watermark, sparse in snap}


@runtime_checkable
class StateMachine(Protocol):
    """The application-facing state-machine protocol.

    Implementations must be **deterministic**: ``apply`` may depend only on
    the current state and its arguments, never on wall clock, randomness or
    replica identity — that is what makes replicas converge.
    """

    def apply(self, round_no: int, origin: int, request: Request) -> Any:
        """Apply one agreed request (round *round_no*, submitted at server
        *origin*) and return its result."""
        ...

    def snapshot(self) -> Any:
        """A comparable, order-independent digest of the current state
        (used for replica-convergence checks)."""
        ...


class ReplicatedStateMachine:
    """Replays the agreed request sequence into one replica per member.

    Subscribes to the deployment's per-node delivery stream and applies
    every round's requests — in the deterministic agreed order
    (origin-major, submission order within a batch) — to that node's
    replica.  After any ``run_rounds`` boundary all alive replicas have
    applied the same prefix, so their snapshots must be identical;
    :meth:`assert_convergence` checks exactly that.
    """

    def __init__(self, deployment: Deployment,
                 factory: Callable[[], StateMachine]) -> None:
        self.deployment = deployment
        self.replicas: dict[int, StateMachine] = {
            pid: factory() for pid in deployment.members}
        #: rounds applied per replica (the replica's log height)
        self.heights: dict[int, int] = {pid: 0 for pid in self.replicas}
        self._results: dict[int, list[Any]] = {
            pid: [] for pid in self.replicas}
        #: per-replica exactly-once dedup table over ``(client, seq)``:
        #: a client whose origin server failed resubmits unacknowledged
        #: requests through a surviving server, and the original copy may
        #: still have been agreed — the duplicate must not re-apply.
        #: Every replica sees the same agreed order, so the tables (and
        #: therefore the skip decisions) are identical everywhere.
        #: Compacted per client to a contiguous-prefix watermark plus a
        #: sparse out-of-order set (see :class:`_DedupTable`) so dedup
        #: memory is O(sessions + reorder window), not O(requests ever).
        self._applied: dict[int, _DedupTable] = {
            pid: _DedupTable() for pid in self.replicas}
        #: per-replica ``(client, seq) -> apply output`` (the read-back
        #: path of client request handles)
        self._client_results: dict[int, dict[tuple[str, int], Any]] = {
            pid: {} for pid in self.replicas}
        #: duplicates suppressed per replica (observability for tests and
        #: the no-duplicate-applies acceptance check)
        self.duplicates_skipped: dict[int, int] = {
            pid: 0 for pid in self.replicas}
        #: per-replica (epoch, round) of the latest applied delivery —
        #: the marker read-your-writes local reads compare against
        self._markers: dict[int, tuple[int, int]] = {
            pid: (-1, -1) for pid in self.replicas}
        deployment.on_deliver(self._on_node_deliver, per_node=True)

    # ------------------------------------------------------------------ #
    def _on_node_deliver(self, pid: int, event: DeliveryEvent) -> None:
        machine = self.replicas[pid]
        outputs = self._results[pid]
        applied = self._applied[pid]
        client_results = self._client_results[pid]
        # iter_client_requests unpacks client batch envelopes into
        # individual requests carrying their stable (client, seq) identity
        # (no-op read barriers are dropped); plain requests pass through.
        for origin, request in iter_client_requests(event.messages):
            if request.client is not None:
                key = (request.client, request.seq)
                if key in applied:
                    self.duplicates_skipped[pid] += 1
                    continue
                applied.add(key)
                output = machine.apply(event.round, origin, request)
                outputs.append(output)
                client_results[key] = output
            else:
                outputs.append(machine.apply(event.round, origin, request))
        self.heights[pid] += 1
        self._markers[pid] = (event.epoch, event.round)

    # ------------------------------------------------------------------ #
    def replica(self, pid: int) -> StateMachine:
        return self.replicas[pid]

    def client_result(self, client: str, seq: int,
                      pid: Optional[int] = None) -> Any:
        """The ``apply`` output of client request ``(client, seq)`` at
        replica *pid* (default: the lowest-id alive member).  Raises
        :class:`KeyError` while the request has not been applied there."""
        if pid is None:
            pid = self.deployment.alive_members[0]
        return self._client_results[pid][(client, seq)]

    def has_applied(self, client: str, seq: int,
                    pid: Optional[int] = None) -> bool:
        """Whether replica *pid* already applied ``(client, seq)`` (the
        dedup table lookup)."""
        if pid is None:
            pid = self.deployment.alive_members[0]
        return (client, seq) in self._applied[pid]

    def applied_marker(self, pid: Optional[int] = None) -> tuple[int, int]:
        """The ``(epoch, round)`` of the latest delivery replica *pid* has
        applied (default: the replica :meth:`read_local` consults — the
        lowest-id alive member); ``(-1, -1)`` before any delivery.

        The read-your-writes gate: a session's own writes are visible at
        the replica once this marker has reached the session's high-water
        delivered round."""
        if pid is None:
            pid = self.deployment.alive_members[0]
        return self._markers[pid]

    def dedup_state_size(self, pid: Optional[int] = None) -> int:
        """Entries retained by replica *pid*'s exactly-once dedup table
        (watermarks + sparse out-of-order seqs) — O(sessions + reorder
        window), not O(requests ever applied)."""
        if pid is None:
            pid = self.deployment.alive_members[0]
        return self._applied[pid].state_size()

    def read_local(self, key: Any, pid: Optional[int] = None) -> Any:
        """A **local** (non-linearisable) read of *key* at replica *pid*
        (default: the lowest-id alive member): the replica's current
        snapshot, no agreement round.

        Works with any state machine whose state is a mapping: a ``data``
        dict attribute is consulted directly
        (:class:`ReplicatedKVStore`'s shape); otherwise the snapshot is
        interpreted as a ``(key, value)`` item sequence.
        """
        if pid is None:
            pid = self.deployment.alive_members[0]
        machine = self.replicas[pid]
        data = getattr(machine, "data", None)
        if isinstance(data, dict):
            return data.get(key)
        try:
            return dict(machine.snapshot()).get(key)
        except (TypeError, ValueError):
            raise TypeError(
                f"{type(machine).__name__} state is not key-addressable: "
                f"reads need a 'data' mapping or an items() snapshot")

    def results(self, pid: Optional[int] = None) -> tuple[Any, ...]:
        """The ``apply`` outputs at replica *pid* (default: the lowest-id
        alive member), in agreed order."""
        if pid is None:
            pid = self.deployment.alive_members[0]
        return tuple(self._results[pid])

    def transfer_state(self, pid: int) -> dict[str, Any]:
        """The **complete** transferable image of replica *pid* — the
        state-transfer payload for rejoining servers and shard
        split/merge (the elastic-sharding roadmap item).

        Completeness is statically gated: lint rule S601 proves every
        attribute the apply path mutates flows into this return (or
        :meth:`snapshots`), so a snapshot-installed replica cannot
        silently lose the dedup table, the client read-back results,
        the read-your-writes marker, the results log, or the duplicate
        counter and diverge from full-replay replicas.
        """
        return {
            "snapshot": self.replicas[pid].snapshot(),
            "height": self.heights[pid],
            "marker": tuple(self._markers[pid]),
            "applied": self._applied[pid].snapshot(),
            "client_results": dict(self._client_results[pid]),
            "results": list(self._results[pid]),
            "duplicates_skipped": self.duplicates_skipped[pid],
        }

    def install_state(self, pid: int, state: dict[str, Any]) -> None:
        """Install a :meth:`transfer_state` image into replica *pid*
        (inverse of :meth:`transfer_state`; the replica's machine must
        expose ``restore(snapshot)``)."""
        machine = self.replicas[pid]
        restore = getattr(machine, "restore", None)
        if restore is None:
            raise TypeError(
                f"{type(machine).__name__} cannot receive a state "
                f"transfer: it defines no restore(snapshot) method")
        restore(state["snapshot"])
        self.heights[pid] = state["height"]
        self._markers[pid] = (state["marker"][0], state["marker"][1])
        table = _DedupTable()
        table.restore(state["applied"])
        self._applied[pid] = table
        self._client_results[pid] = dict(state["client_results"])
        self._results[pid] = list(state["results"])
        self.duplicates_skipped[pid] = state["duplicates_skipped"]

    def snapshots(self) -> dict[int, Any]:
        """Snapshot of every alive replica at the maximum applied height
        (replicas that lag — e.g. a freshly re-joined server without state
        transfer — are excluded from the comparison)."""
        alive = self.deployment.alive_members
        if not alive:
            return {}
        top = max(self.heights[pid] for pid in alive)
        return {pid: self.replicas[pid].snapshot()
                for pid in alive if self.heights[pid] == top}

    def converged(self) -> bool:
        """True when every alive replica at the maximum applied height has
        an identical snapshot (call at a round boundary)."""
        snaps = list(self.snapshots().values())
        return bool(snaps) and all(s == snaps[0] for s in snaps[1:])

    def assert_convergence(self) -> Any:
        """Raise :class:`AssertionError` with the differing snapshots if
        the replicas diverged; returns the agreed snapshot otherwise."""
        snaps = self.snapshots()
        if not snaps:
            raise AssertionError("no alive replica to compare")
        values = list(snaps.values())
        if any(s != values[0] for s in values[1:]):
            raise AssertionError(f"replicas diverged: {snaps}")
        return values[0]


class ReplicatedKVStore:
    """Worked :class:`StateMachine`: a key-value store with deterministic
    conflict resolution.

    Commands are plain tuples in ``request.data``:

    ``("set", key, value)``
        Unconditional write; returns the previous value (or None).
    ``("del", key)``
        Delete; returns True if the key existed.
    ``("cas", key, expected, value)``
        Compare-and-swap; writes only when the current value equals
        *expected* and returns whether it did — the primitive behind
        "no two clients buy the last seat" style invariants.
    ``("get", key)``
        Read of the agreed state at the request's round (reads normally
        stay local and never enter the broadcast; an agreed read is a
        linearisation point).
    """

    def __init__(self) -> None:
        self.data: dict[Any, Any] = {}

    def apply(self, round_no: int, origin: int, request: Request) -> Any:
        command = request.data
        op = command[0]
        if op == "set":
            _, key, value = command
            previous = self.data.get(key)
            self.data[key] = value
            return previous
        if op == "del":
            _, key = command
            return self.data.pop(key, None) is not None
        if op == "cas":
            _, key, expected, value = command
            if self.data.get(key) == expected:
                self.data[key] = value
                return True
            return False
        if op == "get":
            return self.data.get(command[1])
        raise ValueError(f"unknown KV command {op!r}")

    def snapshot(self) -> tuple[Any, ...]:
        return tuple(sorted(self.data.items()))

    def restore(self, snapshot: tuple[Any, ...]) -> None:
        """Install a :meth:`snapshot` image (state transfer)."""
        self.data = dict(snapshot)
