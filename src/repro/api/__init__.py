"""Unified deployment API: one transport-agnostic application surface.

This package is the seam between AllConcur-as-a-protocol and
AllConcur-as-a-service.  Applications speak one vocabulary —
``submit(data, at=pid) -> RequestHandle``, ``run_rounds(k)``,
``deliveries()`` / ``on_deliver``, ``fail`` / ``join``,
``check_agreement()`` — and pick a transport by choosing (or being handed)
a backend:

* :class:`SimDeployment` — the packet-level discrete-event simulator
  (virtual time, deterministic, supports ``join``);
* :class:`TcpDeployment` — the asyncio/TCP runtime on localhost sockets
  (owns its event loop; handles also expose awaitable futures).

On top sits the replicated-state-machine layer (:class:`StateMachine`,
:class:`ReplicatedStateMachine`, :class:`ReplicatedKVStore`): per-node
replicas fed by the agreed delivery order, with convergence assertions.

>>> from repro.api import create_deployment, ReplicatedStateMachine
>>> from repro.graphs import gs_digraph
>>> graph = gs_digraph(6, 3)
>>> for backend in ("sim", "tcp"):
...     with create_deployment(backend, graph) as dep:
...         handle = dep.submit(("set", "k", 1), at=0)
...         dep.run_rounds(1)
...         assert handle.done and dep.check_agreement()
"""

from __future__ import annotations

from typing import Any

from ..graphs.digraph import Digraph
from .deployment import (
    DeliveryEvent,
    Deployment,
    RequestCancelled,
    RequestHandle,
    UnsupportedOperation,
)
from .sim_backend import SimDeployment
from .state_machine import (
    ReplicatedKVStore,
    ReplicatedStateMachine,
    StateMachine,
)
from .tcp_backend import TcpDeployment

__all__ = [
    "Deployment",
    "DeliveryEvent",
    "RequestHandle",
    "RequestCancelled",
    "UnsupportedOperation",
    "SimDeployment",
    "TcpDeployment",
    "StateMachine",
    "ReplicatedStateMachine",
    "ReplicatedKVStore",
    "create_deployment",
    "register_backend",
    "backend_class",
    "list_backends",
    "BACKENDS",
    "Client",
    "ClientSession",
    "ClientRequestHandle",
    "Overloaded",
    "RateLimited",
    "ShardedService",
    "ServiceHandle",
    "ShardDelivery",
    "Partitioner",
    "ConsistentHashPartitioner",
    "ExplicitPartitioner",
]

#: registry of backend constructors, keyed by their ``name``
BACKENDS: dict[str, type[Deployment]] = {
    SimDeployment.name: SimDeployment,
    TcpDeployment.name: TcpDeployment,
}


def register_backend(name: str, cls: type[Deployment], *,
                     replace: bool = False) -> None:
    """Register a third-party :class:`Deployment` backend under *name*.

    Everything built on :func:`create_deployment` — including
    :class:`~repro.api.service.ShardedService` group construction — can
    then instantiate it by name, so service-level code never special-cases
    transports.  Registering an already-taken name raises
    :class:`ValueError` unless ``replace=True`` (silently shadowing the
    built-in ``"sim"``/``"tcp"`` backends is almost always a bug); *cls*
    must subclass :class:`Deployment` so the facade vocabulary holds.
    """
    # Runtime defense for untyped callers: re-check what the annotations
    # promise, through object-typed views so strict mypy does not flag
    # the guards as statically unreachable.
    name_given: object = name
    cls_given: object = cls
    if not name_given or not isinstance(name_given, str):
        raise ValueError(f"backend name must be a non-empty string, "
                         f"got {name!r}")
    if not (isinstance(cls_given, type)
            and issubclass(cls_given, Deployment)):
        raise TypeError(f"backend class must subclass Deployment, "
                        f"got {cls!r}")
    if name in BACKENDS and BACKENDS[name] is not cls and not replace:
        raise ValueError(
            f"backend {name!r} is already registered "
            f"({BACKENDS[name].__name__}); pass replace=True to override")
    BACKENDS[name] = cls


def list_backends() -> dict[str, tuple[str, ...]]:
    """The registered backends and their capabilities:
    ``{name: sorted capability strings}``.

    The discovery surface for tooling and error messages — e.g.
    ``{"sim": ("join", "shared-engine", "time"), "tcp": ()}``; anything
    added via :func:`register_backend` shows up here too.
    """
    return {name: tuple(sorted(cls.capabilities()))
            for name, cls in sorted(BACKENDS.items())}


def _describe_backends() -> str:
    """One-line rendering of :func:`list_backends` for error messages."""
    return ", ".join(
        f"{name} ({', '.join(caps) if caps else 'core vocabulary only'})"
        for name, caps in list_backends().items())


def backend_class(backend: str) -> type[Deployment]:
    """The registered :class:`Deployment` subclass for *backend* (used for
    capability introspection before construction — e.g. whether the
    backend supports shared-engine hosting)."""
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"available: {_describe_backends()}") from None


def create_deployment(backend: str, graph: Digraph,
                      **kwargs: Any) -> Deployment:
    """Instantiate a deployment by backend name (``"sim"`` or ``"tcp"``,
    plus anything added via :func:`register_backend`).

    Keyword arguments are forwarded to the backend constructor; scenario
    scripts use this to stay backend-agnostic end to end.
    """
    return backend_class(backend)(graph, **kwargs)


from .service import (  # noqa: E402  (needs create_deployment above)
    ConsistentHashPartitioner,
    ExplicitPartitioner,
    Partitioner,
    ServiceHandle,
    ShardDelivery,
    ShardedService,
)
from .client import (  # noqa: E402  (imports the service layer)
    Client,
    ClientRequestHandle,
    ClientSession,
    Overloaded,
    RateLimited,
)
