"""Unified deployment API: one transport-agnostic application surface.

This package is the seam between AllConcur-as-a-protocol and
AllConcur-as-a-service.  Applications speak one vocabulary —
``submit(data, at=pid) -> RequestHandle``, ``run_rounds(k)``,
``deliveries()`` / ``on_deliver``, ``fail`` / ``join``,
``check_agreement()`` — and pick a transport by choosing (or being handed)
a backend:

* :class:`SimDeployment` — the packet-level discrete-event simulator
  (virtual time, deterministic, supports ``join``);
* :class:`TcpDeployment` — the asyncio/TCP runtime on localhost sockets
  (owns its event loop; handles also expose awaitable futures).

On top sits the replicated-state-machine layer (:class:`StateMachine`,
:class:`ReplicatedStateMachine`, :class:`ReplicatedKVStore`): per-node
replicas fed by the agreed delivery order, with convergence assertions.

>>> from repro.api import create_deployment, ReplicatedStateMachine
>>> from repro.graphs import gs_digraph
>>> graph = gs_digraph(6, 3)
>>> for backend in ("sim", "tcp"):
...     with create_deployment(backend, graph) as dep:
...         handle = dep.submit(("set", "k", 1), at=0)
...         dep.run_rounds(1)
...         assert handle.done and dep.check_agreement()
"""

from __future__ import annotations

from ..graphs.digraph import Digraph
from .deployment import (
    DeliveryEvent,
    Deployment,
    RequestCancelled,
    RequestHandle,
    UnsupportedOperation,
)
from .sim_backend import SimDeployment
from .state_machine import (
    ReplicatedKVStore,
    ReplicatedStateMachine,
    StateMachine,
)
from .tcp_backend import TcpDeployment

__all__ = [
    "Deployment",
    "DeliveryEvent",
    "RequestHandle",
    "RequestCancelled",
    "UnsupportedOperation",
    "SimDeployment",
    "TcpDeployment",
    "StateMachine",
    "ReplicatedStateMachine",
    "ReplicatedKVStore",
    "create_deployment",
    "BACKENDS",
]

#: registry of backend constructors, keyed by their ``name``
BACKENDS = {
    SimDeployment.name: SimDeployment,
    TcpDeployment.name: TcpDeployment,
}


def create_deployment(backend: str, graph: Digraph,
                      **kwargs) -> Deployment:
    """Instantiate a deployment by backend name (``"sim"`` or ``"tcp"``).

    Keyword arguments are forwarded to the backend constructor; scenario
    scripts use this to stay backend-agnostic end to end.
    """
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"available: {sorted(BACKENDS)}") from None
    return cls(graph, **kwargs)
