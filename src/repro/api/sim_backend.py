"""Deployment adapter over the discrete-event simulator.

:class:`SimDeployment` wraps :class:`~repro.core.cluster.SimCluster` behind
the transport-agnostic :class:`~repro.api.deployment.Deployment` vocabulary.
Time is virtual: ``run_rounds`` executes instantly in wall-clock terms, and
request handles resolve synchronously during the call that delivers their
round (poll or callback style — no event loop involved).

The underlying cluster stays reachable as :attr:`SimDeployment.cluster` for
benchmark-grade instrumentation (the LogP trace, event counts, failure
injection with virtual-time stamps); scenario code should not need it.
"""

from __future__ import annotations

from typing import Optional

from ..core.batching import Request
from ..core.cluster import ClusterOptions, SimCluster
from ..core.config import AllConcurConfig
from ..core.interfaces import Deliver
from ..graphs.digraph import Digraph
from ..sim.engine import Simulator
from ..sim.trace import RoundTrace
from .deployment import Deployment, DeliveryEvent, RequestHandle

__all__ = ["SimDeployment"]


class SimDeployment(Deployment):
    """An AllConcur deployment running on the packet-level simulator.

    Passing *engine* hosts the deployment on an external — typically
    shared — :class:`~repro.sim.engine.Simulator`, so several groups
    advance on **one** virtual clock (the ``shared-engine`` capability;
    :class:`repro.api.service.ShardedService` uses this for coherent
    cross-shard timing).  A coordinator drives co-hosted groups through
    the two-phase :meth:`fill_round` / :meth:`complete_round` split so
    every group's round is in flight before the engine runs.
    """

    name = "sim"

    def __init__(self, graph: Digraph, *,
                 config: Optional[AllConcurConfig] = None,
                 options: Optional[ClusterOptions] = None,
                 engine: Optional[Simulator] = None,
                 namespace: str = "") -> None:
        super().__init__()
        self.cluster = SimCluster(
            graph,
            config=config or AllConcurConfig(graph=graph,
                                             auto_advance=False),
            options=options, sim=engine, namespace=namespace)
        #: next undelivered round index within the current epoch (the
        #: simulator restarts round numbering at every reconfiguration)
        self._epoch_round = 0
        self._wire()

    # ------------------------------------------------------------------ #
    @classmethod
    def capabilities(cls) -> frozenset[str]:
        return frozenset({"join", "time", "shared-engine"})

    @property
    def members(self) -> tuple[int, ...]:
        return self.cluster.members

    @property
    def alive_members(self) -> tuple[int, ...]:
        return self.cluster.alive_members

    @property
    def trace(self) -> RoundTrace:
        """The current epoch's :class:`~repro.sim.trace.RoundTrace`."""
        return self.cluster.trace

    @property
    def sim(self) -> Simulator:
        """The underlying :class:`~repro.sim.engine.Simulator`."""
        return self.cluster.sim

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _wire(self) -> None:
        """Subscribe to every node's delivery stream (re-run after a
        reconfiguration replaces the node set)."""
        for node in self.cluster.nodes.values():
            node.subscribe_deliveries(self._on_node_deliver)

    def _on_node_deliver(self, pid: int, effect: Deliver) -> None:
        self._observe(pid, effect.round, effect.messages, effect.removed)

    def _do_start(self) -> None:
        pass    # the simulated cluster is live from construction

    def _do_stop(self) -> None:
        pass

    def _do_submit(self, request: Request) -> None:
        self.cluster.node(request.origin).submit(request)

    def _drive_until_done(self, handle: RequestHandle,
                          timeout: Optional[float]) -> None:
        # Virtual time: run rounds until the handle resolves or the
        # deployment stops making progress (drained event queue).
        while not handle.done and not handle.cancelled:
            before = len(self._log)
            self.run_rounds(1)
            if len(self._log) == before:
                return

    # ------------------------------------------------------------------ #
    # The unified vocabulary
    # ------------------------------------------------------------------ #
    def run_rounds(self, k: int, *,
                   timeout: float = 30.0) -> list[DeliveryEvent]:
        """Drive *k* rounds: fill every alive server's broadcast window,
        then run the simulator until the round is delivered everywhere.
        *timeout* is accepted for vocabulary parity; virtual time needs no
        deadline."""
        self.start()
        mark = len(self._log)
        for _ in range(k):
            if not self.alive_members:
                break
            self.fill_round()
            self.complete_round()
        return self._log[mark:]

    # ------------------------------------------------------------------ #
    # Two-phase round driving (shared-engine coordination)
    # ------------------------------------------------------------------ #
    def fill_round(self) -> None:
        """Phase 1 of one coordinated round: every alive server
        A-broadcasts into its open window slots — no engine events run.

        A coordinator hosting several groups on one engine calls
        :meth:`fill_round` on *every* group before any
        :meth:`complete_round`, so all groups' rounds are in flight at the
        same virtual instant (parallel progress on the shared clock rather
        than one group's round serialising after another's).
        """
        self.start()
        self._fire_round_start()
        for pid in self.alive_members:
            self.cluster.node(pid).fill_window()

    def complete_round(self) -> None:
        """Phase 2: run the engine until this group's next undelivered
        round is A-delivered at every alive member, then advance the
        round cursor.  On a shared engine, co-hosted groups' events
        execute along the way (their deliveries are observed through
        their own persistent subscriptions); a group whose round already
        completed during another group's run returns without running."""
        self.cluster.run_until_round(self._epoch_round)
        self._epoch_round += 1

    def fail(self, pid: int) -> None:
        """Crash server *pid* (fail-stop) now; pending handles submitted
        at it are cancelled."""
        self.cluster.fail_server(pid)
        self._cancel_handles_at(pid)

    def join(self, pid: int) -> None:
        """Re-admit *pid* at the current round boundary (§3: agreed via
        atomic broadcast; call between ``run_rounds`` invocations).

        Models the paper's join latency by advancing virtual time by the
        cluster's ``join_unavailability`` before the reconfiguration, then
        restarts round numbering in a fresh membership epoch.
        """
        cluster = self.cluster
        cluster.run(until=cluster.sim.now +
                    cluster.options.join_unavailability)
        cluster.reconfigure(add=(pid,))
        self._epoch += 1
        self._epoch_round = 0
        self._wire()

    def check_agreement(self) -> bool:
        return self.cluster.verify_agreement()
