"""Transport-agnostic deployment facade — one vocabulary for every backend.

Historically this repository exposed two divergent driver APIs: the
simulator's :class:`~repro.core.cluster.SimCluster` (synchronous:
``server(pid).submit`` / ``start_all`` / ``run_until_round`` /
``verify_agreement``) and the TCP runtime's
:class:`~repro.runtime.cluster.LocalCluster` (asyncio: ``cluster.submit`` /
``run_rounds`` / ``agreement_holds``).  Every example and test was welded to
one backend, and neither could answer the question an application actually
asks: *when was my request A-delivered?*

:class:`Deployment` is the single application-facing surface:

``submit(data, at=pid) -> RequestHandle``
    Enter a request at a server; the handle resolves when the round
    carrying the request is A-delivered at its origin server.
``run_rounds(k)``
    Drive *k* agreement rounds to completion (blocking on every backend —
    the TCP adapter owns its event loop).
``deliveries()`` / ``on_deliver(cb)``
    The totally ordered stream of :class:`DeliveryEvent` records.
``fail(pid)`` / ``join(pid)``
    Membership operations (``join`` only where the transport supports it —
    see :meth:`Deployment.capabilities`).
``check_agreement()``
    The Lemma 3.5 cross-replica check.

Backends are adapters over the existing clusters:
:class:`~repro.api.sim_backend.SimDeployment` (discrete-event simulator) and
:class:`~repro.api.tcp_backend.TcpDeployment` (asyncio/TCP runtime).  One
scenario script written against :class:`Deployment` runs unmodified on
either — see ``examples/travel_reservation.py``.
"""

from __future__ import annotations

import abc
import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..core.batching import Batch, Request, iter_client_requests
from ..runtime.framing import canonical_payload

__all__ = [
    "DeliveryEvent",
    "RequestHandle",
    "RequestCancelled",
    "UnsupportedOperation",
    "Deployment",
]


class UnsupportedOperation(RuntimeError):
    """The backend's transport cannot perform the requested operation
    (e.g. ``join`` on the TCP runtime, which has no reconfiguration
    protocol yet).  :meth:`Deployment.capabilities` lists what works."""


class RequestCancelled(RuntimeError):
    """The request's origin server failed before its round was
    A-delivered at the origin; the request may or may not have been agreed
    elsewhere (check :meth:`Deployment.deliveries`)."""


@dataclass(frozen=True)
class DeliveryEvent:
    """One A-delivered round, normalised across backends.

    ``epoch`` counts membership reconfigurations on backends whose round
    numbering restarts per epoch (the simulator's ``reconfigure``); the TCP
    runtime numbers rounds continuously, so its epoch is always 0.  The
    total delivery order is ``(epoch, round)``.
    """

    epoch: int
    round: int
    #: deterministically ordered ``(origin, batch)`` pairs (by origin id)
    messages: tuple[tuple[int, Batch], ...]
    #: servers whose messages were not delivered (excluded from the next
    #: round's membership, §3)
    removed: tuple[int, ...] = ()

    @property
    def origins(self) -> tuple[int, ...]:
        return tuple(o for o, _b in self.messages)

    @property
    def request_count(self) -> int:
        return sum(batch.count for _o, batch in self.messages)

    def requests(self) -> Iterator[Request]:
        """All explicit requests of the round, in the agreed deterministic
        order (origin-major, submission order within a batch)."""
        for _origin, batch in self.messages:
            yield from batch.requests

    def client_requests(self) -> Iterator[Request]:
        """All *application-level* requests of the round: client batch
        envelopes (:mod:`repro.api.client`) are unpacked into one request
        per entry — carrying the stable ``(client, seq)`` identity and
        skipping no-op read barriers — while plain requests pass through.
        Same agreed order as :meth:`requests`."""
        for _origin, request in iter_client_requests(self.messages):
            yield request


class RequestHandle:
    """The future of one submitted request, keyed on ``(origin, seq)``.

    The handle resolves when the round that carried the request is
    A-delivered at the request's **origin** server — the first moment the
    submitting application can know its request is agreed.  Resolution is
    observable three ways:

    * **poll** — :attr:`done` / :attr:`round` / :attr:`delivery`;
    * **callback** — :meth:`add_done_callback` (fires immediately when
      already resolved);
    * **block** — :meth:`result`, which *drives the deployment* until the
      handle resolves (runs the simulator / the TCP event loop).

    On the TCP backend the handle additionally wraps an
    :class:`asyncio.Future` (see ``TcpDeployment.future_of``) so async
    callers can ``await`` it.
    """

    def __init__(self, deployment: "Deployment", request: Request) -> None:
        self._deployment = deployment
        self.request = request
        self._event: Optional[DeliveryEvent] = None
        self._cancelled = False
        self._callbacks: list[Callable[["RequestHandle"], None]] = []
        self._cancel_callbacks: list[Callable[["RequestHandle"], None]] = []

    # -- identity ------------------------------------------------------ #
    @property
    def origin(self) -> int:
        return self.request.origin

    @property
    def seq(self) -> int:
        return self.request.seq

    @property
    def key(self) -> tuple[int, int]:
        """The globally unique ``(origin, seq)`` request id."""
        return (self.request.origin, self.request.seq)

    # -- state --------------------------------------------------------- #
    @property
    def done(self) -> bool:
        return self._event is not None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def round(self) -> Optional[int]:
        """The round the request was agreed in (None while pending)."""
        return self._event.round if self._event is not None else None

    @property
    def delivery(self) -> Optional[DeliveryEvent]:
        """The delivery event that resolved the handle (None while
        pending)."""
        return self._event

    def add_done_callback(
            self, callback: Callable[["RequestHandle"], None]) -> None:
        """Call ``callback(handle)`` once the request is agreed (now, if it
        already is)."""
        if self._event is not None:
            callback(self)
        else:
            self._callbacks.append(callback)

    def add_cancel_callback(
            self, callback: Callable[["RequestHandle"], None]) -> None:
        """Call ``callback(handle)`` if the request is ever cancelled —
        its origin failed before the round was agreed — (now, if it
        already is).  The cancellation half of the future bridge: a
        bridged :class:`asyncio.Future` needs to fail, not hang, when the
        origin dies."""
        if self._cancelled:
            callback(self)
        else:
            self._cancel_callbacks.append(callback)

    def result(self, timeout: Optional[float] = None) -> DeliveryEvent:
        """Block until the request is agreed and return its delivery event.

        Drives the deployment forward: on the simulator this runs rounds
        until the handle resolves or no progress is possible; on TCP it
        runs the event loop (*timeout* in wall-clock seconds).  Raises
        :class:`RequestCancelled` if the origin server failed first and
        :class:`TimeoutError` if the deadline expires or the deployment
        cannot make progress.
        """
        if self._cancelled:
            raise RequestCancelled(
                f"request {self.key} cancelled: origin {self.origin} failed")
        if self._event is None:
            self._deployment._drive_until_done(self, timeout)
        if self._cancelled:
            raise RequestCancelled(
                f"request {self.key} cancelled: origin {self.origin} failed")
        if self._event is None:
            raise TimeoutError(f"request {self.key} not agreed "
                               f"(deployment made no further progress)")
        return self._event

    # -- backend plumbing ---------------------------------------------- #
    def _resolve(self, event: DeliveryEvent) -> None:
        if self._event is not None or self._cancelled:
            return
        self._event = event
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _cancel(self) -> None:
        if self._event is None and not self._cancelled:
            self._cancelled = True
            callbacks, self._cancel_callbacks = self._cancel_callbacks, []
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (f"round={self.round}" if self.done
                 else "cancelled" if self.cancelled else "pending")
        return f"<RequestHandle {self.key} {state}>"


class Deployment(abc.ABC):
    """Abstract deployment: the one vocabulary every backend speaks.

    Subclasses adapt a concrete cluster (simulated or TCP) by implementing
    the ``_do_*`` hooks and feeding every per-node A-delivery into
    :meth:`_observe`; all request bookkeeping (sequence numbers, handle
    resolution, the delivery log, subscriber dispatch) lives here and is
    therefore identical across transports.
    """

    #: short backend name ("sim", "tcp"), shown by examples and reports
    name: str = "?"

    def __init__(self) -> None:
        self._seq: dict[int, int] = {}
        self._handles: dict[tuple[int, int], RequestHandle] = {}
        self._log: list[DeliveryEvent] = []
        self._events: dict[tuple[int, int], DeliveryEvent] = {}
        self._subscribers: list[Callable[[DeliveryEvent], None]] = []
        self._node_subscribers: list[
            Callable[[int, DeliveryEvent], None]] = []
        self._round_start_subscribers: list[Callable[[], None]] = []
        self._epoch = 0
        self._started = False
        #: lazily created fallback loop for :meth:`future_of` on backends
        #: without a real event loop (the simulator)
        self._future_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Bring the deployment up (idempotent)."""
        if not self._started:
            self._do_start()
            self._started = True

    def stop(self) -> None:
        """Tear the deployment down (idempotent)."""
        if self._started:
            self._do_stop()
            self._started = False
        if self._future_loop is not None:
            self._future_loop.close()
            self._future_loop = None

    def __enter__(self) -> "Deployment":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def members(self) -> tuple[int, ...]:
        """All member server ids (including failed ones)."""

    @property
    @abc.abstractmethod
    def alive_members(self) -> tuple[int, ...]:
        """Member ids not known to have failed."""

    @property
    def n(self) -> int:
        return len(self.members)

    @property
    def epoch(self) -> int:
        """Current membership epoch (see :class:`DeliveryEvent`)."""
        return self._epoch

    @classmethod
    def capabilities(cls) -> frozenset[str]:
        """Operations this backend supports beyond the core vocabulary.

        ``"join"`` — membership additions via :meth:`join`;
        ``"time"`` — virtual time (deterministic, free to advance);
        ``"shared-engine"`` — the constructor accepts an external
        ``engine=`` simulator plus a ``namespace=`` label, and the
        deployment exposes ``fill_round()`` / ``complete_round()`` so a
        multi-group coordinator (:class:`repro.api.service.ShardedService`)
        can advance co-hosted groups in parallel on one virtual clock.
        """
        return frozenset()

    # ------------------------------------------------------------------ #
    # The unified vocabulary
    # ------------------------------------------------------------------ #
    def submit(self, data: Any, *, at: int = 0,
               nbytes: int = 64) -> RequestHandle:
        """Enter an application request at server *at*; returns the handle
        that resolves when the request's round is A-delivered.

        *data* must be a JSON value and is normalised to its JSON image
        (tuples become lists, dict keys become strings) **on every
        backend**, so the same scenario delivers byte-identical payloads
        on the simulator and over TCP — cross-backend end-state
        comparisons would otherwise report false divergence.  (Arbitrary
        Python payloads remain possible at the protocol layer via
        ``SimCluster`` directly.)
        """
        if at not in self.alive_members:
            raise ValueError(f"server {at} is not an alive member")
        seq = self._next_seq(at)
        request = Request(origin=at, seq=seq, nbytes=nbytes,
                          data=canonical_payload(data))
        handle = RequestHandle(self, request)
        self._handles[handle.key] = handle
        self._do_submit(request)
        return handle

    def _next_seq(self, at: int) -> int:
        """Allocate the next per-origin sequence number (backends with
        their own sequencer override this to keep one source of truth)."""
        seq = self._seq.get(at, 0)
        self._seq[at] = seq + 1
        return seq

    @abc.abstractmethod
    def run_rounds(self, k: int, *,
                   timeout: float = 30.0) -> list[DeliveryEvent]:
        """Drive *k* agreement rounds to completion at every alive server;
        returns the delivery events that became visible during the call."""

    def deliveries(self) -> tuple[DeliveryEvent, ...]:
        """Every round delivered so far, in ``(epoch, round)`` order."""
        return tuple(self._log)

    def on_deliver(self, callback: Callable[..., None], *,
                   per_node: bool = False) -> None:
        """Subscribe to the delivery stream.

        With ``per_node=False`` (default) ``callback(event)`` fires once
        per round, at its first A-delivery anywhere (agreement makes every
        later observation identical).  With ``per_node=True``
        ``callback(pid, event)`` fires for every server's own delivery —
        the feed a replicated state machine consumes.
        """
        if per_node:
            self._node_subscribers.append(callback)
        else:
            self._subscribers.append(callback)

    def on_round_start(self, callback: Callable[[], None]) -> None:
        """Subscribe ``callback()`` to fire at every round boundary,
        *before* the servers A-broadcast — the last moment a submission
        can still ride the starting round.

        This is the §5 batching seam: the client ingress layer
        (:mod:`repro.api.client`) registers its session flush here, so
        requests "buffered until the current round completes" are packed
        and submitted exactly once per round, no matter who drives the
        deployment (``run_rounds``, a blocking ``handle.result()``, or a
        service-level coordinator on a shared engine)."""
        self._round_start_subscribers.append(callback)

    def _fire_round_start(self) -> None:
        """Backends call this once per round, before filling broadcast
        windows."""
        for callback in self._round_start_subscribers:
            callback()

    def future_of(self, handle: Any) -> "asyncio.Future[DeliveryEvent]":
        """An :class:`asyncio.Future` resolving with the handle's
        :class:`DeliveryEvent` — the awaitable face of the request
        lifecycle.  Accepts protocol-level :class:`RequestHandle`\\ s and
        client ingress handles alike (duck-typed on ``add_done_callback``
        / ``add_cancel_callback``); cancellation surfaces as
        :class:`RequestCancelled`.

        Base implementation: the future lives on a deployment-owned
        fallback loop that never needs to run — drive the deployment
        (``run_rounds`` / ``result()``) and the future is already
        completed when awaited.  Backends with a real event loop (TCP)
        override this so the future resolves on that loop."""
        loop = self._future_loop
        if loop is None:
            loop = self._future_loop = asyncio.new_event_loop()
        future: "asyncio.Future[DeliveryEvent]" = loop.create_future()

        def fulfil(resolved: Any) -> None:
            if not future.done():
                future.set_result(resolved.delivery)

        def abort(cancelled: Any) -> None:
            if not future.done():
                future.set_exception(RequestCancelled(
                    f"request {cancelled.key} cancelled"))

        handle.add_done_callback(fulfil)
        handle.add_cancel_callback(abort)
        return future

    @abc.abstractmethod
    def fail(self, pid: int) -> None:
        """Fail-stop server *pid*; its pending request handles are
        cancelled."""

    def join(self, pid: int) -> None:
        """Re-admit server *pid* (a vertex of the overlay) at a round
        boundary.  Only on backends advertising the ``"join"``
        capability."""
        raise UnsupportedOperation(
            f"{type(self).__name__} does not support join "
            f"(capabilities: {sorted(self.capabilities())})")

    def fill_round(self) -> None:
        """Phase 1 of a coordinated round (``"shared-engine"`` backends
        only): every alive server broadcasts into its open window without
        running engine events, so a multi-group coordinator can put all
        groups' rounds in flight before any completes."""
        raise UnsupportedOperation(
            f"{type(self).__name__} does not support coordinated round "
            f"driving (capabilities: {sorted(self.capabilities())})")

    def complete_round(self) -> None:
        """Phase 2 of a coordinated round (``"shared-engine"`` backends
        only): run the engine until this group's round is delivered
        everywhere."""
        raise UnsupportedOperation(
            f"{type(self).__name__} does not support coordinated round "
            f"driving (capabilities: {sorted(self.capabilities())})")

    @abc.abstractmethod
    def check_agreement(self) -> bool:
        """Lemma 3.5: every pair of alive servers delivered identical
        ordered message sets for every round both completed."""

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _do_start(self) -> None: ...

    @abc.abstractmethod
    def _do_stop(self) -> None: ...

    @abc.abstractmethod
    def _do_submit(self, request: Request) -> None: ...

    @abc.abstractmethod
    def _drive_until_done(self, handle: RequestHandle,
                          timeout: Optional[float]) -> None:
        """Advance the deployment until *handle* resolves (or progress is
        exhausted / the timeout expires) — backs
        :meth:`RequestHandle.result`."""

    def _observe(self, pid: int, round_no: int,
                 messages: tuple[tuple[int, Batch], ...],
                 removed: tuple[int, ...]) -> None:
        """Feed one server's A-delivery into the shared bookkeeping.

        First observation of an ``(epoch, round)`` appends to the delivery
        log and notifies round subscribers; every observation notifies
        per-node subscribers; the origin server's own observation resolves
        its request handles.
        """
        key = (self._epoch, round_no)
        event = self._events.get(key)
        if event is None:
            event = DeliveryEvent(epoch=self._epoch, round=round_no,
                                  messages=messages, removed=removed)
            self._events[key] = event
            self._log.append(event)
            for callback in self._subscribers:
                callback(event)
        for callback in self._node_subscribers:
            callback(pid, event)
        if self._handles:
            for origin, batch in messages:
                if origin != pid:
                    continue     # handles ack at their origin's delivery
                for request in batch.requests:
                    handle = self._handles.pop(
                        (request.origin, request.seq), None)
                    if handle is not None:
                        handle._resolve(event)

    def _cancel_handles_at(self, pid: int) -> None:
        """Cancel the pending handles whose origin server failed."""
        for key in [k for k in self._handles if k[0] == pid]:
            self._handles.pop(key)._cancel()
