"""Sharded service: keyspace-partitioned multi-group deployments behind
one client surface.

A single AllConcur group is bounded by its round rate: every member
delivers every request, so adding servers adds fault tolerance and read
capacity but not agreement throughput.  The service layer scales *writes*
the way the ROADMAP's "millions of users" requires — by running **G
independent groups** (each its own overlay digraph, failure domain, and
replicated state machine) and routing keyed traffic across them:

.. code-block:: text

    client ── submit(key, data) ──▶ Partitioner ──▶ shard g
                                                     │
         ┌────────────┬───────────────┬──────────────┘
         ▼            ▼               ▼
      group 0      group 1   ...   group G-1        (Deployment each:
      GS(n,d)      GS(n,d)         GS(n,d)           own overlay digraph)
         │            │               │
       RSM 0        RSM 1          RSM G-1          (per-shard replicas)

Clients speak **keys**, never group internals: :meth:`ShardedService.submit`
routes through a pluggable :class:`Partitioner` (consistent hashing by
default, an explicit keyspace map as the option), service-level operations
address servers as ``(shard, pid)``, and :meth:`ShardedService.deliveries`
merges every group's delivery log under shard tags.  Cross-shard requests
are out of scope by construction — a key lives in exactly one group, and
only that group orders it (the standard partitioned-SMR contract).

Backends
--------

Group construction goes through :func:`repro.api.create_deployment`, so a
service runs on any registered backend:

* on **sim**, all groups share ONE :class:`~repro.sim.engine.Simulator`
  (the backend's ``shared-engine`` capability): cross-shard timing is
  coherent on a single virtual clock, rounds of all shards are in flight
  simultaneously (``fill_round`` everywhere before any ``complete_round``),
  and a shard-count sweep is deterministic — see
  :mod:`repro.bench.shards`;
* on **tcp**, groups run as disjoint kernel-assigned port spaces, each
  deployment driving its own event loop behind the same blocking facade;
* third-party backends registered via :func:`repro.api.register_backend`
  plug in uniformly (advertise ``shared-engine`` to opt into co-hosted
  virtual time).

``examples/sharded_kv.py`` runs one scenario, unmodified, on both built-in
backends and asserts identical per-shard end states.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Hashable,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:
    from ..sim.engine import Simulator

from ..graphs.digraph import Digraph
from .deployment import (
    DeliveryEvent,
    Deployment,
    RequestCancelled,
    RequestHandle,
)
from .state_machine import ReplicatedStateMachine, StateMachine

__all__ = [
    "Partitioner",
    "ConsistentHashPartitioner",
    "ExplicitPartitioner",
    "ShardDelivery",
    "ServiceHandle",
    "ShardedService",
    "stable_key_hash",
]


def stable_key_hash(key: Hashable) -> int:
    """A process- and run-independent 64-bit hash of *key*.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so it
    cannot be the routing function of a service whose placement must agree
    across backends, processes, and runs.  Keys hash through their ``str``
    image — the service's keyspace is strings (clients of a keyed API
    serialise their keys anyway); distinct non-string keys with equal
    ``str`` images are therefore the *same* key on purpose.
    """
    digest = hashlib.blake2b(str(key).encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


@runtime_checkable
class Partitioner(Protocol):
    """Routing policy: which shard owns a key.

    Implementations must be **deterministic and stateless** per key — the
    same key must map to the same shard on every backend, every process,
    and every run (placement is part of the service's agreed state).
    """

    @property
    def num_shards(self) -> int:  # pragma: no cover - protocol
        ...

    def shard_of(self, key: Hashable) -> int:  # pragma: no cover - protocol
        """The shard index in ``range(num_shards)`` owning *key*."""
        ...


class ConsistentHashPartitioner:
    """Consistent-hash routing over a ring of virtual nodes (the default).

    Each shard owns *vnodes* points on a 64-bit ring; a key belongs to the
    shard of the first ring point at or after its hash (wrapping).  With
    enough virtual nodes the keyspace splits near-evenly, and — the reason
    to prefer a ring over ``hash % G`` — changing the shard count moves
    only the keys between affected ring points instead of rehashing
    almost everything (the classic resharding property).
    """

    def __init__(self, num_shards: int, *, vnodes: int = 64) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self._num_shards = num_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for v in range(vnodes):
                points.append((stable_key_hash(f"shard{shard}#vnode{v}"),
                               shard))
        points.sort()
        self._ring = [p for p, _s in points]
        self._owner = [s for _p, s in points]

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def shard_of(self, key: Hashable) -> int:
        idx = bisect.bisect_left(self._ring, stable_key_hash(key))
        if idx == len(self._ring):
            idx = 0  # wrap around the ring
        return self._owner[idx]


class ExplicitPartitioner:
    """Explicit keyspace map: ``key -> shard``, with an optional default.

    The operational escape hatch — pin hot keys to dedicated shards, keep
    a tenant's keys co-located, or mirror an externally computed placement.
    Unmapped keys go to *default* when given, otherwise routing them is a
    :class:`KeyError` (a fully explicit map treats an unknown key as a
    configuration bug, not something to hash away silently).
    """

    def __init__(self, mapping: Mapping[Hashable, int], num_shards: int, *,
                 default: Optional[int] = None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        for key, shard in mapping.items():
            if not 0 <= shard < num_shards:
                raise ValueError(f"key {key!r} mapped to shard {shard}, "
                                 f"outside range(0, {num_shards})")
        if default is not None and not 0 <= default < num_shards:
            raise ValueError(f"default shard {default} outside "
                             f"range(0, {num_shards})")
        self._map = dict(mapping)
        self._num_shards = num_shards
        self._default = default

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def shard_of(self, key: Hashable) -> int:
        shard = self._map.get(key, self._default)
        if shard is None:
            raise KeyError(f"key {key!r} is not mapped to any shard and "
                           f"no default shard is configured")
        return shard


@dataclass(frozen=True)
class ShardDelivery:
    """One shard's A-delivered round in the service-level merged stream."""

    shard: int
    event: DeliveryEvent

    @property
    def epoch(self) -> int:
        return self.event.epoch

    @property
    def round(self) -> int:
        return self.event.round

    @property
    def request_count(self) -> int:
        return self.event.request_count


class ServiceHandle:
    """The future of one keyed request: ``(key, shard)`` plus the owning
    group's :class:`~repro.api.deployment.RequestHandle`.

    Delegates the whole handle vocabulary (poll / callback / blocking
    ``result``, which drives the owning group) and adds the routing facts
    a service client cares about: which shard owns the key and which
    server of that group the request entered at.
    """

    def __init__(self, key: Hashable, shard: int,
                 handle: RequestHandle) -> None:
        self.key = key
        self.shard = shard
        self.handle = handle

    # -- routing facts -------------------------------------------------- #
    @property
    def origin(self) -> int:
        """The server (pid within the shard's group) the request entered."""
        return self.handle.origin

    @property
    def seq(self) -> int:
        return self.handle.seq

    @property
    def request_id(self) -> tuple[int, int, int]:
        """The service-wide unique ``(shard, origin, seq)`` id."""
        return (self.shard, self.handle.origin, self.handle.seq)

    # -- delegated handle vocabulary ------------------------------------ #
    @property
    def done(self) -> bool:
        return self.handle.done

    @property
    def cancelled(self) -> bool:
        return self.handle.cancelled

    @property
    def round(self) -> Optional[int]:
        return self.handle.round

    @property
    def delivery(self) -> Optional[DeliveryEvent]:
        return self.handle.delivery

    def add_done_callback(
            self, callback: Callable[["ServiceHandle"], None]) -> None:
        self.handle.add_done_callback(lambda _h: callback(self))

    def result(self, timeout: Optional[float] = None) -> DeliveryEvent:
        return self.handle.result(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (f"round={self.round}" if self.done
                 else "cancelled" if self.cancelled else "pending")
        return (f"<ServiceHandle key={self.key!r} shard={self.shard} "
                f"origin={self.origin} {state}>")


class ShardedService:
    """G independent AllConcur groups behind one keyed client surface.

    Parameters
    ----------
    backend:
        Registered backend name (``"sim"``, ``"tcp"``, or anything added
        via :func:`repro.api.register_backend`); groups are constructed
        through :func:`repro.api.create_deployment`.
    shard_graphs:
        One overlay :class:`~repro.graphs.digraph.Digraph` per shard
        (typically the same GS(n, d) family at a fixed per-group n).
    partitioner:
        Routing policy; defaults to
        :class:`ConsistentHashPartitioner` over ``len(shard_graphs)``
        shards.  Its ``num_shards`` must match.
    state_machine:
        Optional replica factory; when given, every shard gets a
        :class:`~repro.api.state_machine.ReplicatedStateMachine` fed by
        that group's delivery stream, and :meth:`snapshot` composes the
        per-shard agreed snapshots.
    seed:
        Seed of the shared simulator engine on ``shared-engine`` backends
        (ignored by backends that keep wall-clock time).
    deployment_kwargs:
        Extra keyword arguments forwarded to every group's constructor.
    """

    def __init__(self, backend: str, shard_graphs: Sequence[Digraph], *,
                 partitioner: Optional[Partitioner] = None,
                 state_machine: Optional[Callable[[], StateMachine]] = None,
                 seed: int = 1,
                 deployment_kwargs: Optional[dict[str, Any]] = None) -> None:
        from . import backend_class, create_deployment

        shard_graphs = list(shard_graphs)
        if not shard_graphs:
            raise ValueError("a sharded service needs at least one shard")
        self.backend = backend
        self.partitioner: Partitioner = (
            partitioner if partitioner is not None
            else ConsistentHashPartitioner(len(shard_graphs)))
        if self.partitioner.num_shards != len(shard_graphs):
            raise ValueError(
                f"partitioner covers {self.partitioner.num_shards} shards "
                f"but {len(shard_graphs)} shard graphs were given")
        cls = backend_class(backend)
        kwargs = dict(deployment_kwargs or {})
        #: the shared engine on shared-engine backends, else None
        self.engine: Optional["Simulator"] = None
        if "shared-engine" in cls.capabilities():
            from ..sim.engine import Simulator as _Simulator

            self.engine = (kwargs.pop("engine", None)
                           or _Simulator(seed=seed))
        accepts_namespace = self._accepts_kwarg(cls, "namespace")
        self.groups: list[Deployment] = []
        for shard, graph in enumerate(shard_graphs):
            extra = dict(kwargs)
            if self.engine is not None:
                extra["engine"] = self.engine
            if accepts_namespace:
                extra["namespace"] = f"shard{shard}"
            self.groups.append(create_deployment(backend, graph, **extra))
        self.machines: dict[int, ReplicatedStateMachine] = {}
        if state_machine is not None:
            for shard, group in enumerate(self.groups):
                self.machines[shard] = ReplicatedStateMachine(
                    group, state_machine)
        self._log: list[ShardDelivery] = []
        #: per-shard count of group deliveries already merged into _log
        self._seen = [0] * len(self.groups)

    @staticmethod
    def _accepts_kwarg(cls: type[Deployment], name: str) -> bool:
        """Whether the backend constructor takes *name* (third-party
        backends need not — the service then simply skips the label)."""
        import inspect

        params = inspect.signature(cls.__init__).parameters
        return name in params or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in params.values())

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        for group in self.groups:
            group.start()

    def stop(self) -> None:
        for group in self.groups:
            group.stop()

    def __enter__(self) -> "ShardedService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.groups)

    @property
    def shards(self) -> range:
        return range(len(self.groups))

    def group(self, shard: int) -> Deployment:
        """The :class:`Deployment` of one shard (its group internals)."""
        return self.groups[shard]

    @property
    def members(self) -> tuple[tuple[int, int], ...]:
        """Every server of the service, addressed as ``(shard, pid)``."""
        return tuple((shard, pid)
                     for shard, group in enumerate(self.groups)
                     for pid in group.members)

    @property
    def alive_members(self) -> tuple[tuple[int, int], ...]:
        return tuple((shard, pid)
                     for shard, group in enumerate(self.groups)
                     for pid in group.alive_members)

    @property
    def n(self) -> int:
        """Total server count across all groups."""
        return sum(group.n for group in self.groups)

    def capabilities(self) -> frozenset[str]:
        """Capabilities every group's backend supports."""
        caps = [group.capabilities() for group in self.groups]
        return frozenset.intersection(*caps)

    # ------------------------------------------------------------------ #
    # Keyed client surface
    # ------------------------------------------------------------------ #
    def shard_of(self, key: Hashable) -> int:
        """The shard owning *key* (pure routing — no side effects)."""
        shard = self.partitioner.shard_of(key)
        if not 0 <= shard < len(self.groups):
            raise ValueError(f"partitioner routed {key!r} to shard "
                             f"{shard}, outside range(0, {len(self.groups)})")
        return shard

    def origin_of(self, key: Hashable) -> tuple[int, int]:
        """The ``(shard, pid)`` a submission of *key* enters at: the
        owning group, and within it a key-hash-chosen alive server (sticky
        per key, deterministic across backends and runs)."""
        shard = self.shard_of(key)
        return shard, self.origin_in_shard(shard, key)

    def origin_in_shard(self, shard: int, key: Hashable) -> int:
        """The key-sticky alive origin within an already-routed *shard*
        (callers that cached the shard — e.g. the client ingress layer —
        skip a second partitioner lookup)."""
        alive = self.groups[shard].alive_members
        if not alive:
            raise ValueError(f"shard {shard} has no alive member to "
                             f"accept key {key!r}")
        return alive[stable_key_hash(key) % len(alive)]

    def submit(self, key: Hashable, data: Any, *,
               nbytes: int = 64) -> ServiceHandle:
        """Enter a keyed request: route *key* to its owning group, submit
        *data* there, and return the tagged handle.  Resolution semantics
        are the group's (acked when the carrying round is A-delivered at
        the origin server).

        Submission failures caused by server death — the whole shard has
        no surviving member, or the routed origin died between routing
        and entry — surface as :class:`~repro.api.deployment
        .RequestCancelled` with the shard context, the same vocabulary a
        client sees when an accepted request's origin fails later (a raw
        backend ``ValueError`` used to leak here, so callers could not
        tell a routing bug from a fail-stop).
        """
        shard = self.shard_of(key)
        try:
            origin = self.origin_in_shard(shard, key)
            handle = self.groups[shard].submit(data, at=origin,
                                               nbytes=nbytes)
        except ValueError as err:
            raise RequestCancelled(
                f"shard {shard}: cannot submit key {key!r}: {err}"
            ) from err
        return ServiceHandle(key, shard, handle)

    # ------------------------------------------------------------------ #
    # Service-level operations
    # ------------------------------------------------------------------ #
    def run_rounds(self, k: int, *,
                   timeout: float = 30.0) -> list[ShardDelivery]:
        """Advance **all** groups by *k* agreement rounds; returns the
        shard-tagged deliveries that became visible during the call.

        On a shared-engine backend each of the *k* rounds is coordinated:
        every group fills its broadcast window first, then the single
        engine runs each group's round to completion — so all shards'
        rounds are concurrently in flight on one virtual clock and the
        service-wide round time equals (not G times) the group round
        time.  Other backends drive each group's own ``run_rounds``.
        """
        self.start()
        if self.engine is not None:
            for _ in range(k):
                for group in self.groups:
                    if group.alive_members:
                        group.fill_round()
                for group in self.groups:
                    if group.alive_members:
                        group.complete_round()
        else:
            for group in self.groups:
                if group.alive_members:
                    group.run_rounds(k, timeout=timeout)
        return self._merge_new_deliveries()

    def _merge_new_deliveries(self) -> list[ShardDelivery]:
        """Pull each group's not-yet-merged deliveries into the service
        log, shard-tagged; returns the fresh batch.

        The log is re-sorted after every merge: deliveries can also
        surface between merges (``handle.result()`` drives a single
        group), so a later batch may contain rounds that sort before
        already-merged entries of other shards — appending alone would
        break the documented ``(epoch, round, shard)`` order.
        """
        fresh: list[ShardDelivery] = []
        for shard, group in enumerate(self.groups):
            events = group.deliveries()
            for event in events[self._seen[shard]:]:
                fresh.append(ShardDelivery(shard=shard, event=event))
            self._seen[shard] = len(events)
        key = lambda d: (d.epoch, d.round, d.shard)  # noqa: E731
        fresh.sort(key=key)
        self._log.extend(fresh)
        self._log.sort(key=key)   # timsort: cheap on the sorted prefix
        return fresh

    def on_deliver(self, callback: Callable[[ShardDelivery], None]) -> None:
        """Subscribe to the shard-tagged delivery stream:
        ``callback(ShardDelivery)`` fires at every group's A-delivery of a
        round (first observation within that group), as it happens —
        unlike :meth:`deliveries`, which merges on demand."""
        for shard, group in enumerate(self.groups):
            group.on_deliver(
                lambda event, shard=shard: callback(
                    ShardDelivery(shard=shard, event=event)))

    def deliveries(self) -> tuple[ShardDelivery, ...]:
        """Every shard's delivered rounds, merged under shard tags.

        Within the merged view each shard's deliveries keep their total
        ``(epoch, round)`` order; across shards rounds interleave by
        round number (ties broken by shard id) — there is no cross-shard
        total order to preserve, by design.
        """
        self._merge_new_deliveries()
        return tuple(self._log)

    def fail(self, shard: int, pid: int) -> None:
        """Fail-stop server *pid* of group *shard* (other shards are
        unaffected — groups are independent failure domains)."""
        self.groups[shard].fail(pid)

    def join(self, shard: int, pid: int) -> None:
        """Re-admit server *pid* into group *shard* (backends advertising
        the ``"join"`` capability)."""
        self.groups[shard].join(pid)

    def check_agreement(self) -> bool:
        """Lemma 3.5, shard by shard: True when every group's replicas
        delivered identical ordered message sets."""
        return all(self.agreement_by_shard().values())

    def agreement_by_shard(self) -> dict[int, bool]:
        """The per-shard agreement verdicts behind
        :meth:`check_agreement`."""
        return {shard: group.check_agreement()
                for shard, group in enumerate(self.groups)}

    def snapshot(self) -> dict[int, Any]:
        """Compose the service state: ``{shard: agreed snapshot}``.

        Requires a *state_machine* factory at construction; each shard's
        snapshot is its replicas' converged state
        (:meth:`~repro.api.state_machine.ReplicatedStateMachine.assert_convergence`
        — divergence raises, it is a correctness violation)."""
        if not self.machines:
            raise ValueError(
                "no state machine configured; pass state_machine= to "
                "ShardedService to compose per-shard snapshots")
        return {shard: rsm.assert_convergence()
                for shard, rsm in sorted(self.machines.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedService backend={self.backend!r} "
                f"G={self.num_shards} n={self.n} "
                f"partitioner={type(self.partitioner).__name__}>")
