"""Client ingress: sessions with per-round batching, flow control, origin
failover, rate limits, awaitable handles, and a read-your-writes read path.

AllConcur's headline throughput (§5, Fig 10) comes from *batching*: requests
generated while a round is in flight "are buffered until the current
agreement round is completed; then, they are packed into a message that is
A-broadcast in the next round".  The deployment facade alone cannot express
that — ``Deployment.submit`` enters one protocol-level request per call —
and it ties client identity to a server pid, which contradicts the
"millions of users on a fixed server count" shape of the evaluation.

This module is the missing ingress half of the API:

:class:`Client`
    One batching/flow-control domain over a
    :class:`~repro.api.deployment.Deployment` or a
    :class:`~repro.api.service.ShardedService`.  It owns the request
    lifecycle end to end: buffering, per-round packing into **one batch
    message per origin server per round** (the §5 discipline, via the
    deployment's round-start hook), admission control, failover
    resubmission, and handle resolution from the *unpacked* batch on
    A-delivery.
:class:`ClientSession`
    One logical client: a stable string identity plus a per-session
    sequence number, so every request carries the globally unique,
    failover-stable ``(client, seq)`` id.  Arbitrarily many sessions
    multiplex onto the fixed server set.
:class:`ClientRequestHandle`
    The future of one session request — same poll / callback / blocking
    vocabulary as :class:`~repro.api.deployment.RequestHandle`, plus an
    :meth:`~ClientRequestHandle.future` bridge for async callers.  It
    survives origin failure: unacknowledged requests are transparently
    resubmitted through a surviving server, and the replicated-state-machine
    layer's ``(client, seq)`` dedup table makes the retry exactly-once.
    It only cancels when the whole group is gone.
:meth:`ClientSession.read`
    ``read(key, consistency="agreed")`` rides a no-op entry through an
    agreement round (its linearisation point) and then reads the replica;
    ``consistency="local"`` answers from the replica snapshot with no
    round — **read-your-writes**: the replica is only consulted once its
    applied round has reached the session's high-water delivered round,
    otherwise the read transparently escalates to an agreed read (the
    paper's locally-answered queries, §1.1, made safe for the session's
    own writes).

Flow control: a bounded in-flight budget (``max_in_flight``) counts every
buffered-or-unacknowledged request of the client; at the bound, ``submit``
either blocks (driving rounds until the budget frees — closed-loop
behaviour) or raises :class:`Overloaded` (``admission="reject"``), which is
the §5 note about bounding the inflow of requests to keep the system
stable, applied at the ingress edge.  Per-session **rate limits** bound
individual sessions the same way: a token bucket (``rate_limit`` tokens
refilled per delivered round, capacity ``burst``) is charged at admission,
and an empty bucket blocks or raises :class:`RateLimited` under the same
admission policy.

Scale: the client keeps its per-session state in a **flat session table**
— columnar arrays indexed by a dense session *slot* (origin, next seq,
outstanding count, buffered bytes, high-water delivered round) plus a
**dirty set** of slots with buffered work per shard — so the per-round
flush, the failover scan, and admission control cost O(dirty sessions) and
O(1) respectively, independent of the total session count C.  A million
idle sessions cost nothing per round; see ``repro.bench.ingress`` for the
C-sweep evidence (``BENCH_ingress.json``).
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Any, Callable, Hashable, Iterable, Optional, Union

from ..core.batching import (
    CLIENT_BATCH_TAG,
    ClientRequest,
    encode_client_batch,
)
from .deployment import DeliveryEvent, Deployment, RequestCancelled
from .service import ShardedService, stable_key_hash
from .state_machine import ReplicatedStateMachine

__all__ = ["Client", "ClientSession", "ClientRequestHandle", "Overloaded",
           "RateLimited"]


class Overloaded(RuntimeError):
    """Admission control rejected a submission: the client's in-flight
    budget is exhausted and either ``admission="reject"`` or driving
    rounds freed no capacity."""


class RateLimited(Overloaded):
    """The session's token bucket is empty and either
    ``admission="reject"`` or driving rounds refilled no token."""


class ClientRequestHandle:
    """The future of one session request, keyed on ``(client, seq)``.

    Unlike the protocol-level :class:`~repro.api.deployment.RequestHandle`
    (keyed on ``(origin, seq)``, cancelled when its origin fails), this
    handle's identity is origin-independent: when the origin server fails
    before acknowledging, the request is resubmitted through a surviving
    server under the same ``(client, seq)`` and the handle stays pending.
    It resolves at the first A-delivery whose unpacked batch contains the
    entry, and cancels only when no server of the owning group survives.
    """

    __slots__ = ("_client", "session", "slot", "seq", "data", "nbytes",
                 "routing_key", "noop", "shard_hint", "attempts", "origin",
                 "shard", "_event", "_cancelled", "_callbacks",
                 "_cancel_callbacks", "_env")

    def __init__(self, client: "Client", session: "ClientSession",
                 seq: int, data: Any, nbytes: int, *,
                 routing_key: Optional[Hashable] = None,
                 noop: bool = False) -> None:
        self._client = client
        self.session = session
        #: dense session-table slot of the owning session
        self.slot = session.slot
        self.seq = seq
        self.data = data
        self.nbytes = nbytes
        self.routing_key = routing_key
        self.noop = noop
        #: owning shard, computed once at admission (key→shard routing is
        #: static; only the origin *within* the shard depends on liveness).
        #: None on single-group targets.
        self.shard_hint: Optional[int] = None
        #: submission attempts (1 on first flush; +1 per failover resubmit)
        self.attempts = 0
        #: origin server the latest attempt entered at (None while buffered)
        self.origin: Optional[int] = None
        #: shard of the latest attempt (service targets; None on a group)
        self.shard: Optional[int] = None
        self._event: Optional[DeliveryEvent] = None
        self._cancelled: Optional[str] = None
        self._callbacks: Optional[
            list[Callable[["ClientRequestHandle"], None]]] = None
        self._cancel_callbacks: Optional[
            list[Callable[["ClientRequestHandle"], None]]] = None
        #: envelope the latest attempt rides in (client bookkeeping)
        self._env: Optional["_Envelope"] = None

    # -- identity ------------------------------------------------------- #
    @property
    def client_id(self) -> str:
        return self.session.client_id

    @property
    def key(self) -> tuple[str, int]:
        """The globally unique, failover-stable ``(client, seq)`` id."""
        return (self.session.client_id, self.seq)

    # -- state ---------------------------------------------------------- #
    @property
    def done(self) -> bool:
        return self._event is not None

    @property
    def cancelled(self) -> bool:
        return self._cancelled is not None

    @property
    def round(self) -> Optional[int]:
        return self._event.round if self._event is not None else None

    @property
    def delivery(self) -> Optional[DeliveryEvent]:
        return self._event

    def add_done_callback(
            self, callback: Callable[["ClientRequestHandle"], None]) -> None:
        if self._event is not None:
            callback(self)
        else:
            if self._callbacks is None:
                self._callbacks = []
            self._callbacks.append(callback)

    def add_cancel_callback(
            self, callback: Callable[["ClientRequestHandle"], None]) -> None:
        """Call ``callback(handle)`` if the handle is ever cancelled (now,
        if it already is) — the cancellation half of the future bridge."""
        if self._cancelled is not None:
            callback(self)
        else:
            if self._cancel_callbacks is None:
                self._cancel_callbacks = []
            self._cancel_callbacks.append(callback)

    def result(self, timeout: Optional[float] = None) -> DeliveryEvent:
        """Block until the request is agreed; drives the deployment (and
        with it the per-round flush) forward.  Raises
        :class:`~repro.api.deployment.RequestCancelled` when the owning
        group has no surviving server, :class:`TimeoutError` when the
        deadline expires or no progress is possible."""
        deadline = (None if timeout is None
                    else perf_counter() + timeout)
        while self._event is None and self._cancelled is None:
            remaining = None
            if deadline is not None:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    raise TimeoutError(f"request {self.key} not agreed "
                                       f"within {timeout}s")
            if not self._client._drive_one_round(timeout=remaining):
                break
        if self._cancelled is not None:
            raise RequestCancelled(self._cancelled)
        if self._event is None:
            raise TimeoutError(f"request {self.key} not agreed "
                               f"(no further progress)")
        return self._event

    def future(self) -> "asyncio.Future[DeliveryEvent]":
        """An :class:`asyncio.Future` resolving with the handle's
        :class:`~repro.api.deployment.DeliveryEvent` — the awaitable face
        of the request lifecycle.

        Bridged over the owning group's
        :meth:`~repro.api.deployment.Deployment.future_of`: on the TCP
        backend the future lives on the deployment's private event loop
        (the loop that runs inside every blocking facade call), on the
        simulator on a deployment-owned fallback loop that never needs to
        run for resolution — drive the deployment (``run_rounds`` /
        ``result()``) and the future is already completed when awaited.
        Cancellation (no surviving server in the group) surfaces as
        :class:`~repro.api.deployment.RequestCancelled`.
        """
        return self._client._future_for(self)

    def value(self, pid: Optional[int] = None) -> Any:
        """The state machine's ``apply`` output for this request at
        replica *pid* (requires a replicated state machine on the route;
        call after :meth:`result`)."""
        rsm = self._client._rsm_for(self.shard, self.routing_key)
        return rsm.client_result(self.client_id, self.seq, pid)

    # -- client plumbing ------------------------------------------------ #
    def _resolve(self, event: DeliveryEvent) -> None:
        if self._event is not None or self._cancelled is not None:
            return
        self._event = event
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def _cancel(self, reason: str) -> None:
        if self._event is None and self._cancelled is None:
            self._cancelled = reason
            callbacks, self._cancel_callbacks = self._cancel_callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (f"round={self.round}" if self.done
                 else "cancelled" if self.cancelled
                 else f"inflight@{self.origin}" if self.attempts
                 else "buffered")
        return f"<ClientRequestHandle {self.key} {state}>"


class ClientSession:
    """One logical client multiplexed onto the deployment.

    Created via :meth:`Client.session`; a thin, stable view over one row
    of the client's flat session table (the *slot*): identity, sequence
    counter, buffers, origin and rate-limit state all live in the client's
    columnar arrays, so C sessions cost C array entries — not C scans per
    round.  On a :class:`~repro.api.service.ShardedService` target every
    submission carries a *key* and routes through the partitioner; on a
    plain :class:`~repro.api.deployment.Deployment` the session is pinned
    to an origin server (chosen by client-id hash unless given), and moves
    to a surviving server if that origin fails.
    """

    __slots__ = ("client", "client_id", "slot", "resubmissions")

    def __init__(self, client: "Client", client_id: str,
                 slot: int) -> None:
        self.client = client
        self.client_id = client_id
        #: dense index of this session's row in the client's session table
        self.slot = slot
        #: requests resubmitted after an origin failure
        self.resubmissions = 0

    # ------------------------------------------------------------------ #
    @property
    def origin(self) -> Optional[int]:
        """Preferred origin server (deployment targets; reassigned on
        failover).  None on sharded-service targets (keys route)."""
        return self.client._col_origin[self.slot]

    @origin.setter
    def origin(self, pid: Optional[int]) -> None:
        self.client._col_origin[self.slot] = pid

    @property
    def pending(self) -> int:
        """Requests buffered, not yet packed into a round."""
        buffers = self.client._buffers[self.slot]
        return sum(len(entries) for entries in buffers.values())

    @property
    def outstanding(self) -> int:
        """Requests submitted and not yet agreed (buffered + in flight)."""
        return self.pending + self.client._col_outstanding[self.slot]

    @property
    def high_water_round(self) -> tuple[int, int]:
        """The ``(epoch, round)`` of the session's latest acknowledged
        write — the round a read-your-writes local read waits for."""
        slot = self.slot
        return (self.client._col_hw_epoch[slot],
                self.client._col_hw_round[slot])

    def submit(self, data: Any, *, key: Optional[Hashable] = None,
               nbytes: Optional[int] = None) -> ClientRequestHandle:
        """Buffer one request; it is packed into the next round's batch
        message (or an explicit :meth:`flush`).  *key* is required on
        sharded-service targets (it picks the owning group via the
        partitioner) and ignored for routing on single-group targets.
        Applies the client's admission control and the session's rate
        limit."""
        return self.client._admit(self, data, key=key,
                                  nbytes=nbytes, noop=False)

    def read(self, key: Hashable, *, consistency: str = "agreed",
             timeout: Optional[float] = None,
             pid: Optional[int] = None) -> Any:
        """Read *key* from the replicated state machine on the key's route.

        ``consistency="agreed"``
            Linearisable: flushes the session's buffer and rides a no-op
            entry through an agreement round — when that round is
            A-delivered, every write agreed before it (including this
            session's own) is applied; the value is then read from the
            replica.  Costs one round; returns after it completes.
        ``consistency="local"``
            Read-your-writes without a round in the common case: the
            replica's snapshot value is served directly once the replica
            has applied the session's high-water delivered round (every
            write this session has been acknowledged for is then visible);
            a replica that lags the session's own writes escalates the
            read to an agreed read instead of returning stale state.
            Passing an explicit *pid* opts out of the guarantee and
            returns that replica's current snapshot unconditionally (the
            paper's plain locally answered query).

        Requires a replicated state machine: the service's per-shard
        machines, or the ``rsm=`` given to :class:`Client`.
        """
        client = self.client
        if consistency == "local":
            rsm = client._rsm_for(None, key)
            if pid is not None:
                # expert mode: an explicit replica choice bypasses the
                # read-your-writes gate (and its escalation)
                return rsm.read_local(key, pid=pid)
            read_pid = self._local_read_pid()
            slot = self.slot
            high_water = (client._col_hw_epoch[slot],
                          client._col_hw_round[slot])
            if rsm.applied_marker(read_pid) >= high_water:
                client.local_reads_served += 1
                return rsm.read_local(key, pid=read_pid)
            client.local_reads_escalated += 1
            # fall through: escalate to an agreed read
        elif consistency != "agreed":
            raise ValueError(f"unknown consistency {consistency!r}; "
                             f"expected 'agreed' or 'local'")
        client._rsm_for(None, key)   # fail fast before the round
        barrier = client._admit(self, None, key=key, nbytes=1, noop=True)
        barrier.result(timeout)
        rsm = client._rsm_for(barrier.shard, key)
        return rsm.read_local(key, pid=pid)

    def _local_read_pid(self) -> Optional[int]:
        """Replica consulted by a local read: the session's origin where
        it is pinned and alive, else the RSM default (lowest alive)."""
        client = self.client
        origin = client._col_origin[self.slot]
        if (origin is not None and not client._is_service
                and origin in client.target.alive_members):
            return origin
        return None

    def flush(self) -> None:
        """Pack and submit this client's buffered requests now (all
        sessions of the owning :class:`Client` — batches are per origin
        server, shared across sessions)."""
        self.client.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClientSession {self.client_id!r} origin={self.origin} "
                f"pending={self.pending}>")


class _Envelope:
    """Bookkeeping for one submitted batch message: the underlying
    protocol handle, the client entries it carries, and a maintained count
    of entries still unresolved (so the failover scan garbage-collects a
    fully acknowledged envelope in O(1) instead of rescanning its
    entries)."""

    __slots__ = ("handle", "entries", "shard", "origin", "unresolved")

    def __init__(self, handle: Any, entries: list[ClientRequestHandle],
                 shard: Optional[int], origin: int) -> None:
        self.handle = handle        # RequestHandle (duck-typed .cancelled)
        self.entries = entries
        self.shard = shard
        self.origin = origin
        self.unresolved = len(entries)


class Client:
    """One batching / flow-control / failover domain over a deployment.

    Parameters
    ----------
    target:
        A :class:`~repro.api.deployment.Deployment` (single group) or a
        :class:`~repro.api.service.ShardedService` (keyed multi-group).
    max_batch_requests / max_batch_bytes:
        Per-origin, per-round packing caps (§5: a practical deployment
        "would bound the message size"); excess stays buffered for the
        next round.  None = unbounded.
    max_in_flight:
        Admission-control budget: the maximum buffered-plus-unacknowledged
        requests across all sessions.  None = unbounded.
    admission:
        At the budget (or an empty rate-limit bucket): ``"block"`` drives
        rounds until capacity frees, ``"reject"`` raises
        :class:`Overloaded` / :class:`RateLimited` immediately.
    rsm:
        The :class:`~repro.api.state_machine.ReplicatedStateMachine` reads
        resolve against (single-group targets; sharded services use their
        own per-shard machines).
    default_nbytes:
        Wire size accounted per request when ``submit`` gets no explicit
        ``nbytes``.

    Internally the client is a **flat session table**: per-session state
    lives in columnar arrays indexed by a dense slot (``_col_*``), buffered
    work is tracked in a per-shard *dirty set* of slots, and the in-flight
    budget is an O(1) maintained counter — so the per-round flush and the
    admission check scale with the sessions that actually have work, not
    with the total session count.
    """

    def __init__(self, target: Union[Deployment, ShardedService], *,
                 max_batch_requests: Optional[int] = None,
                 max_batch_bytes: Optional[int] = None,
                 max_in_flight: Optional[int] = None,
                 admission: str = "block",
                 rsm: Optional[ReplicatedStateMachine] = None,
                 default_nbytes: int = 8) -> None:
        if max_batch_requests is not None and max_batch_requests < 1:
            raise ValueError("max_batch_requests must be positive")
        if max_batch_bytes is not None and max_batch_bytes < 1:
            raise ValueError("max_batch_bytes must be positive")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        if admission not in ("block", "reject"):
            raise ValueError(f"unknown admission policy {admission!r}; "
                             f"expected 'block' or 'reject'")
        self.target = target
        self.max_batch_requests = max_batch_requests
        self.max_batch_bytes = max_batch_bytes
        self.max_in_flight = max_in_flight
        self.admission = admission
        self.default_nbytes = default_nbytes
        # narrowed views of the union target — exactly one is non-None,
        # so typed code paths need no repeated isinstance dispatch
        if isinstance(target, ShardedService):
            self._service: Optional[ShardedService] = target
            self._single: Optional[Deployment] = None
        else:
            self._service = None
            self._single = target
        self._is_service = self._service is not None
        self._rsm = rsm
        # ---- the flat session table (all slot-indexed) ---------------- #
        self._sessions: list[ClientSession] = []
        self._session_ids: set[str] = set()
        #: client-id interning: wire-carried string id -> dense slot (the
        #: only string lookup on the delivery hot path)
        self._slot_by_id: dict[str, int] = {}
        #: pinned origin pid (single-group targets; None on services)
        self._col_origin: list[Optional[int]] = []
        #: next per-session sequence number
        self._col_next_seq: list[int] = []
        #: submitted-but-unacknowledged entries per session
        self._col_outstanding: list[int] = []
        #: bytes currently buffered per session
        self._col_buffered_bytes: list[int] = []
        #: (epoch, round) of the session's latest acknowledged entry — the
        #: high-water mark read-your-writes local reads compare against
        self._col_hw_epoch: list[int] = []
        self._col_hw_round: list[int] = []
        #: per-slot buffered entries, grouped by owning shard (single-group
        #: targets use the one shard key None); entries stay in submission
        #: (seq) order
        self._buffers: list[dict[Optional[int],
                                 list[ClientRequestHandle]]] = []
        #: per-slot in-flight entries keyed by their *int* seq (slot
        #: interning keeps the hot-path dict keys ints; the string client
        #: id only crosses the wire)
        self._inflight: list[dict[int, ClientRequestHandle]] = []
        #: shard -> slots with buffered entries for that shard; the flush
        #: path walks exactly these (O(dirty), not O(C))
        self._dirty: dict[Optional[int], set[int]] = {}
        #: rate-limited slots only: slot -> (tokens/round, burst) & bucket
        self._rate: dict[int, tuple[float, float]] = {}
        self._tokens: dict[int, float] = {}
        #: O(1) admission counter (buffered + in flight across the table);
        #: the old O(C) scan survives as _in_flight_scan for debug asserts
        self._in_flight_count = 0
        #: submitted-unacknowledged total (fast "anything to resolve?")
        self._inflight_total = 0
        self._auto_id = 0
        self._envelopes: list[_Envelope] = []
        self._delivered_rounds = 0
        #: counters: batch messages submitted / entries packed / entries
        #: resubmitted after an origin failure
        self.batches_flushed = 0
        self.requests_flushed = 0
        self.resubmitted = 0
        #: read path observability: local reads served from the replica vs
        #: escalated to an agreed read by the read-your-writes gate
        self.local_reads_served = 0
        self.local_reads_escalated = 0
        #: cumulative wall-clock cost of the per-round flush path (the
        #: quantity BENCH_ingress.json tracks against the dirty count)
        self.flush_time_s = 0.0
        self.flush_calls = 0
        # One flush + one resolver subscription per group: the round-start
        # hook packs that group's buffered entries (the §5 boundary), the
        # delivery stream resolves handles from the unpacked batches.
        for shard, group in self._group_list():
            group.on_round_start(
                lambda shard=shard: self._flush_group(shard))
            group.on_deliver(
                lambda event, shard=shard: self._on_deliver(shard, event))

    # ------------------------------------------------------------------ #
    # Target plumbing
    # ------------------------------------------------------------------ #
    def _group_list(self) -> list[tuple[Optional[int], Deployment]]:
        if self._service is not None:
            return list(enumerate(self._service.groups))
        assert self._single is not None
        return [(None, self._single)]

    def _group_of(self, shard: Optional[int]) -> Deployment:
        if self._service is not None:
            assert shard is not None, "service routes carry a shard"
            return self._service.group(shard)
        assert self._single is not None
        return self._single

    def _rsm_for(self, shard: Optional[int],
                 key: Optional[Hashable]) -> ReplicatedStateMachine:
        """The replicated state machine reads and result look-ups resolve
        against: the service's per-shard machine (routing *key* when the
        shard is not yet known), or the client's ``rsm=``."""
        service = self._service
        if service is not None:
            if shard is None:
                if key is None:
                    raise ValueError("a sharded-service read needs a key")
                shard = service.shard_of(key)
            rsm = service.machines.get(shard)
            if rsm is None:
                raise ValueError(
                    f"shard {shard} has no state machine; construct the "
                    f"ShardedService with state_machine= to enable reads")
            return rsm
        if self._rsm is None:
            raise ValueError("no state machine configured; pass rsm= to "
                             "Client to enable reads and value look-ups")
        return self._rsm

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def session(self, client_id: Optional[str] = None, *,
                origin: Optional[int] = None,
                rate_limit: Optional[float] = None,
                burst: Optional[float] = None) -> ClientSession:
        """Open a logical client session.

        *client_id* defaults to ``"c<n>"`` from a monotonic per-client
        counter (stable across runs and backends — cross-backend workloads
        depend on it; ids already taken by explicit names are skipped, so
        interleaving auto and explicit ids never collides).
        *origin* pins a single-group session to a server; by default the
        origin is chosen by client-id hash over the alive members.
        Sharded-service sessions take no origin — every submission routes
        by key through the partitioner.
        *rate_limit* bounds the session to that many requests per
        delivered round (a token bucket charged at admission; *burst* is
        the bucket capacity, default ``max(rate_limit, 1)``); the bucket
        starts full.  Rounds are the deterministic clock shared by every
        backend, which keeps rate-limited workloads replayable.
        """
        registry: Optional[set[str]] = getattr(
            self.target, "_ingress_session_ids", None)
        if registry is None:
            registry = set()
            setattr(self.target, "_ingress_session_ids", registry)
        if client_id is None:
            # monotonic allocation, independent of the session-list length:
            # len()-based naming collided after interleaved explicit ids
            while True:
                client_id = f"c{self._auto_id}"
                self._auto_id += 1
                if client_id not in registry:
                    break
        # Uniqueness must hold across every Client on the same target:
        # handle resolution and RSM dedup key on the global (client, seq),
        # so two in-flight sessions sharing an id would cross-resolve each
        # other's requests and the dedup table would drop real writes.
        elif client_id in registry:
            raise ValueError(
                f"client id {client_id!r} already in use on this "
                f"deployment (session ids must be unique per target, "
                f"across all Client instances — name your sessions)")
        if origin is not None:
            if self._is_service:
                raise ValueError("sharded-service sessions route by key; "
                                 "origin= is only for single-group targets")
            if origin not in self.target.alive_members:
                raise ValueError(f"server {origin} is not an alive member")
        elif not self._is_service:
            origin = self._hash_origin(client_id)
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if burst is not None:
            if rate_limit is None:
                raise ValueError("burst needs a rate_limit")
            if burst < 1:
                raise ValueError("burst must be >= 1")
        slot = len(self._sessions)
        session = ClientSession(self, client_id, slot)
        # grow every column of the table by one row
        self._sessions.append(session)
        self._col_origin.append(origin)
        self._col_next_seq.append(0)
        self._col_outstanding.append(0)
        self._col_buffered_bytes.append(0)
        self._col_hw_epoch.append(-1)
        self._col_hw_round.append(-1)
        self._buffers.append({})
        self._inflight.append({})
        self._slot_by_id[client_id] = slot
        self._session_ids.add(client_id)
        registry.add(client_id)
        if rate_limit is not None:
            capacity = float(burst if burst is not None
                             else max(rate_limit, 1.0))
            self._rate[slot] = (float(rate_limit), capacity)
            self._tokens[slot] = capacity
        return session

    def _hash_origin(self, client_id: str) -> int:
        assert self._single is not None, "services route by key, not origin"
        alive = self._single.alive_members
        if not alive:
            raise ValueError("no alive member to pin the session to")
        return alive[stable_key_hash(client_id) % len(alive)]

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Requests counted against the budget: buffered + submitted but
        not yet agreed.  O(1): maintained incrementally at admission,
        resolution, cancellation, and requeue (sustained admission used to
        rescan every session, making a closed loop O(C²))."""
        return self._in_flight_count

    def _in_flight_scan(self) -> int:
        """The old O(C) full-table recount — kept as the debug oracle the
        tests assert the incremental counter against."""
        buffered = sum(len(entries)
                       for buffers in self._buffers
                       for entries in buffers.values())
        return buffered + sum(len(d) for d in self._inflight)

    def _admit(self, session: ClientSession, data: Any, *,
               key: Optional[Hashable], nbytes: Optional[int],
               noop: bool) -> ClientRequestHandle:
        if self._is_service and key is None:
            raise ValueError("sharded-service submissions need a key "
                             "(it picks the owning group)")
        slot = session.slot
        limit = self._rate.get(slot)
        if limit is not None:
            while self._tokens[slot] < 1.0:
                if self.admission == "reject":
                    raise RateLimited(
                        f"session {session.client_id!r} rate limited: "
                        f"bucket empty (rate={limit[0]}/round, "
                        f"burst={limit[1]})")
                if not self._drive_one_round():
                    raise RateLimited(
                        f"session {session.client_id!r} rate limited and "
                        f"driving a round refilled no token")
            self._tokens[slot] -= 1.0
        if self.max_in_flight is not None:
            while self._in_flight_count >= self.max_in_flight:
                if self.admission == "reject":
                    raise Overloaded(
                        f"client budget exhausted: {self._in_flight_count} "
                        f"in flight >= max_in_flight="
                        f"{self.max_in_flight}")
                if not self._drive_one_round():
                    raise Overloaded(
                        f"client budget exhausted "
                        f"({self._in_flight_count} in flight) and driving "
                        f"a round freed no capacity")
        seq = self._col_next_seq[slot]
        self._col_next_seq[slot] = seq + 1
        handle = ClientRequestHandle(
            self, session, seq, data,
            self.default_nbytes if nbytes is None else nbytes,
            routing_key=key, noop=noop)
        shard: Optional[int] = None
        if self._service is not None:
            shard = self._service.shard_of(key)
            handle.shard_hint = shard
        buffers = self._buffers[slot]
        entries = buffers.get(shard)
        if entries is None:
            entries = buffers[shard] = []
        entries.append(handle)
        self._col_buffered_bytes[slot] += handle.nbytes
        self._in_flight_count += 1
        dirty = self._dirty.get(shard)
        if dirty is None:
            dirty = self._dirty[shard] = set()
        dirty.add(slot)
        return handle

    def _drive_one_round(self, timeout: Optional[float] = None) -> bool:
        """Advance the target by one round; True when anything progressed
        (a round delivered or the budget freed) — the backbone of blocking
        ``submit`` and ``handle.result``."""
        before_rounds = self._delivered_rounds
        before_flight = self._in_flight_count
        if timeout is None:
            self.run_rounds(1)
        else:
            self.run_rounds(1, timeout=timeout)
        return (self._delivered_rounds > before_rounds
                or self._in_flight_count < before_flight)

    # ------------------------------------------------------------------ #
    # Batching and flushing
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Pack and submit every buffered request now, one batch message
        per origin server (the per-round hook does this automatically at
        every round boundary; an explicit flush is only needed to push
        entries into a round someone else is about to drive)."""
        for shard, _group in self._group_list():
            self._flush_group(shard)

    def _flush_group(self, shard: Optional[int]) -> None:
        """Pack the buffered entries routed to group *shard* into one
        envelope per origin server and submit them, honouring the
        per-origin packing caps (excess stays buffered).

        Walks only the *dirty* slots of this shard — sessions that
        actually have buffered entries — in slot order (= session creation
        order, which fixes the agreed packing order), so a round's flush
        costs O(dirty), not O(C)."""
        t0 = perf_counter()
        self._check_failover()
        dirty = self._dirty.get(shard)
        if dirty:
            self._pack_dirty(shard, dirty, sorted(dirty))
        self.flush_time_s += perf_counter() - t0
        self.flush_calls += 1

    def _flush_full_scan(self, shard: Optional[int]) -> None:
        """Differential oracle for the dirty-set flush: identical packing
        over a walk of *every* slot.  Clean slots contribute nothing, so
        the produced envelopes — and with them the agreed log — must be
        byte-identical; the hypothesis differential test drives one client
        through each path and compares."""
        t0 = perf_counter()
        self._check_failover()
        dirty = self._dirty.get(shard)
        if dirty is None:
            dirty = self._dirty[shard] = set()
        self._pack_dirty(shard, dirty, range(len(self._sessions)))
        self.flush_time_s += perf_counter() - t0
        self.flush_calls += 1

    def _pack_dirty(self, shard: Optional[int], dirty: set[int],
                    slots: Iterable[int]) -> None:
        """The packing walk shared by the dirty-set flush and its
        full-scan oracle.

        Per-origin accumulation preserves session creation order, then
        per-session seq order.  A cap closes the origin for the rest of
        the scan: skipping only the oversize entry and packing a later,
        smaller one would invert the per-session submission order in the
        agreed log."""
        per_origin: dict[int, list[ClientRequestHandle]] = {}
        per_origin_bytes: dict[int, int] = {}
        closed: set[int] = set()
        max_requests = self.max_batch_requests
        max_bytes = self.max_batch_bytes
        taken: set[int] = set()          # id()s of packed handles
        dropped: set[int] = set()        # id()s of cancelled handles
        for slot in slots:
            entries = self._buffers[slot].get(shard)
            if not entries:
                continue
            for handle in entries:
                route = self._route_of(handle)
                if route is None:
                    # cancelled (no surviving server): bookkeeping happens
                    # here, removal from the buffer below
                    dropped.add(id(handle))
                    self._col_buffered_bytes[slot] -= handle.nbytes
                    self._in_flight_count -= 1
                    continue
                _r_shard, origin = route
                if origin in closed:
                    continue
                chosen = per_origin.get(origin)
                if chosen is None:
                    chosen = per_origin[origin] = []
                    per_origin_bytes[origin] = 0
                if (max_requests is not None
                        and len(chosen) >= max_requests):
                    closed.add(origin)
                    continue
                nbytes = per_origin_bytes[origin]
                if (max_bytes is not None and chosen
                        and nbytes + handle.nbytes > max_bytes):
                    closed.add(origin)
                    continue
                chosen.append(handle)
                per_origin_bytes[origin] = nbytes + handle.nbytes
                taken.add(id(handle))
                self._col_buffered_bytes[slot] -= handle.nbytes
            if taken or dropped:
                kept = [h for h in entries
                        if id(h) not in taken and id(h) not in dropped]
                if kept:
                    self._buffers[slot][shard] = kept
                else:
                    del self._buffers[slot][shard]
                    dirty.discard(slot)
                taken.clear()
                dropped.clear()
        for origin in sorted(per_origin):
            self._submit_envelope(shard, origin, per_origin[origin])

    def _route_of(self, handle: ClientRequestHandle) \
            -> Optional[tuple[Optional[int], int]]:
        """Current ``(shard, origin)`` route of a buffered entry; None
        when no server survives to accept it (the handle is cancelled)."""
        service = self._service
        if service is not None:
            shard = handle.shard_hint
            assert shard is not None, "service admissions carry a shard"
            try:
                origin = service.origin_in_shard(shard, handle.routing_key)
            except ValueError as err:
                handle._cancel(
                    f"request {handle.key} cancelled: {err}")
                return None
            return shard, origin
        assert self._single is not None
        alive = self._single.alive_members
        if not alive:
            handle._cancel(f"request {handle.key} cancelled: no "
                           f"surviving server in the group")
            return None
        slot = handle.slot
        origin = self._col_origin[slot]
        if origin is None or origin not in alive:
            origin = self._hash_origin(handle.session.client_id)
            self._col_origin[slot] = origin
        return None, origin

    def _submit_envelope(self, shard: Optional[int], origin: int,
                         handles: list[ClientRequestHandle]) -> None:
        entries = [ClientRequest(client=h.session.client_id, seq=h.seq,
                                 data=h.data, nbytes=h.nbytes, noop=h.noop)
                   for h in handles]
        payload = encode_client_batch(entries)
        total = sum(e.nbytes for e in entries)
        group = self._group_of(shard)
        try:
            under = group.submit(payload, at=origin, nbytes=total)
        except ValueError:
            # The origin died between routing and submission (liveness can
            # advance inside submit on the TCP backend).  The handles were
            # already taken out of their buffers — put them back at the
            # front, in seq order, so the next flush reroutes them through
            # a surviving server instead of losing them.
            self._rebuffer_front(shard, handles)
            return
        envelope = _Envelope(under, handles, shard, origin)
        inflight = self._inflight
        outstanding = self._col_outstanding
        for h in handles:
            h.attempts += 1
            h.origin = origin
            h.shard = shard
            h._env = envelope
            inflight[h.slot][h.seq] = h
            outstanding[h.slot] += 1
        self._inflight_total += len(handles)
        self._envelopes.append(envelope)
        self.batches_flushed += 1
        self.requests_flushed += len(handles)

    def _rebuffer_front(self, shard: Optional[int],
                        handles: list[ClientRequestHandle]) -> None:
        """Return *handles* (taken out of their buffers for an envelope
        that could not be submitted, or orphaned by a failed origin) to
        the front of their sessions' buffers, in seq order — touching only
        the affected slots."""
        by_slot: dict[int, list[ClientRequestHandle]] = {}
        for h in handles:
            by_slot.setdefault(h.slot, []).append(h)
        dirty = self._dirty.get(shard)
        if dirty is None:
            dirty = self._dirty[shard] = set()
        for slot, front in by_slot.items():
            front.sort(key=lambda h: h.seq)
            buffers = self._buffers[slot]
            entries = buffers.get(shard)
            if entries is None:
                buffers[shard] = front
            else:
                entries[:0] = front
            self._col_buffered_bytes[slot] += sum(h.nbytes for h in front)
            dirty.add(slot)

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #
    def _check_failover(self) -> None:
        """Scan submitted envelopes: a cancelled underlying handle means
        the origin failed before acknowledging — its unresolved entries go
        back to the front of their sessions' buffers for transparent
        resubmission through a surviving server (the original copy may
        still have been agreed; the RSM dedup table keeps the retry
        exactly-once).  Fully resolved envelopes are garbage-collected in
        O(1) via their maintained unresolved count — the scan costs
        O(open envelopes), never O(in-flight entries)."""
        if not self._envelopes:
            return
        still_open: list[_Envelope] = []
        for env in self._envelopes:
            if env.unresolved <= 0:
                continue
            if not env.handle.cancelled:
                still_open.append(env)
                continue
            requeue: list[ClientRequestHandle] = []
            for h in env.entries:
                if not h.done and not h.cancelled:
                    if self._inflight[h.slot].pop(h.seq, None) is not None:
                        self._col_outstanding[h.slot] -= 1
                        self._inflight_total -= 1
                    h._env = None
                    h.session.resubmissions += 1
                    requeue.append(h)
            if requeue:
                self.resubmitted += len(requeue)
                self._rebuffer_front(env.shard, requeue)
        self._envelopes = still_open

    # ------------------------------------------------------------------ #
    # Delivery resolution
    # ------------------------------------------------------------------ #
    def _on_deliver(self, shard: Optional[int],
                    event: DeliveryEvent) -> None:
        self._delivered_rounds += 1
        # token-bucket refill: once per round on the target's clock (the
        # single group's deliveries; shard 0's on a service, since
        # run_rounds advances every group in lockstep)
        if self._tokens and (shard is None or shard == 0):
            rate = self._rate
            tokens = self._tokens
            for slot, (per_round, burst) in rate.items():
                refilled = tokens[slot] + per_round
                tokens[slot] = burst if refilled > burst else refilled
        if not self._inflight_total:
            return
        slot_by_id = self._slot_by_id
        inflight = self._inflight
        outstanding = self._col_outstanding
        hw_epoch = self._col_hw_epoch
        hw_round = self._col_hw_round
        epoch, round_no = event.epoch, event.round
        for _origin, batch in event.messages:
            for request in batch.requests:
                data = request.data
                # inlined is_client_batch + decode: the resolve path runs
                # once per delivered entry (10^5+ per round at the bench's
                # C), so it reads the raw envelope dicts instead of
                # materialising a ClientRequest per entry
                if not (isinstance(data, dict)
                        and data.get(CLIENT_BATCH_TAG) == 1):
                    continue
                for entry in data["reqs"]:
                    slot = slot_by_id.get(entry["c"])
                    if slot is None:
                        continue
                    handle = inflight[slot].pop(int(entry["s"]), None)
                    if handle is None:
                        continue
                    outstanding[slot] -= 1
                    self._inflight_total -= 1
                    self._in_flight_count -= 1
                    if (epoch, round_no) > (hw_epoch[slot],
                                            hw_round[slot]):
                        hw_epoch[slot] = epoch
                        hw_round[slot] = round_no
                    env = handle._env
                    if env is not None:
                        env.unresolved -= 1
                    handle._resolve(event)

    # ------------------------------------------------------------------ #
    # Awaitable bridge
    # ------------------------------------------------------------------ #
    def _future_for(self, handle: ClientRequestHandle) \
            -> "asyncio.Future[DeliveryEvent]":
        """Bridge a client handle onto the owning group's
        :meth:`~repro.api.deployment.Deployment.future_of` (the TCP
        backend resolves it on the deployment's event loop; other
        backends on the deployment-owned fallback loop)."""
        group = self._group_of(handle.shard_hint)
        return group.future_of(handle)

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def run_rounds(self, k: int, *, timeout: float = 30.0) -> list[Any]:
        """Advance the target *k* rounds; each round boundary packs and
        submits the sessions' buffers first (the round-start hook).
        Returns the target's delivery events (:class:`DeliveryEvent` on a
        group, :class:`~repro.api.service.ShardDelivery` on a service)."""
        return self.target.run_rounds(k, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Client target={type(self.target).__name__} "
                f"sessions={len(self._sessions)} "
                f"in_flight={self.in_flight}>")
