"""Client ingress: sessions with per-round batching, flow control, origin
failover, and a read path.

AllConcur's headline throughput (§5, Fig 10) comes from *batching*: requests
generated while a round is in flight "are buffered until the current
agreement round is completed; then, they are packed into a message that is
A-broadcast in the next round".  The deployment facade alone cannot express
that — ``Deployment.submit`` enters one protocol-level request per call —
and it ties client identity to a server pid, which contradicts the
"millions of users on a fixed server count" shape of the evaluation.

This module is the missing ingress half of the API:

:class:`Client`
    One batching/flow-control domain over a
    :class:`~repro.api.deployment.Deployment` or a
    :class:`~repro.api.service.ShardedService`.  It owns the request
    lifecycle end to end: buffering, per-round packing into **one batch
    message per origin server per round** (the §5 discipline, via the
    deployment's round-start hook), admission control, failover
    resubmission, and handle resolution from the *unpacked* batch on
    A-delivery.
:class:`ClientSession`
    One logical client: a stable string identity plus a per-session
    sequence number, so every request carries the globally unique,
    failover-stable ``(client, seq)`` id.  Arbitrarily many sessions
    multiplex onto the fixed server set.
:class:`ClientRequestHandle`
    The future of one session request — same poll / callback / blocking
    vocabulary as :class:`~repro.api.deployment.RequestHandle`, but it
    survives origin failure: unacknowledged requests are transparently
    resubmitted through a surviving server, and the replicated-state-machine
    layer's ``(client, seq)`` dedup table makes the retry exactly-once.
    It only cancels when the whole group is gone.
:meth:`ClientSession.read`
    ``read(key, consistency="agreed")`` rides a no-op entry through an
    agreement round (its linearisation point) and then reads the replica;
    ``consistency="local"`` returns the replica snapshot value with no
    round at all (the paper's locally-answered queries, §1.1).

Flow control: a bounded in-flight budget (``max_in_flight``) counts every
buffered-or-unacknowledged request of the client; at the bound, ``submit``
either blocks (driving rounds until the budget frees — closed-loop
behaviour) or raises :class:`Overloaded` (``admission="reject"``), which is
the §5 note about bounding the inflow of requests to keep the system
stable, applied at the ingress edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Union

from ..core.batching import (
    ClientRequest,
    decode_client_batch,
    encode_client_batch,
    is_client_batch,
)
from .deployment import DeliveryEvent, Deployment, RequestCancelled
from .service import ShardedService, stable_key_hash
from .state_machine import ReplicatedStateMachine

__all__ = ["Client", "ClientSession", "ClientRequestHandle", "Overloaded"]


class Overloaded(RuntimeError):
    """Admission control rejected a submission: the client's in-flight
    budget is exhausted and either ``admission="reject"`` or driving
    rounds freed no capacity."""


class ClientRequestHandle:
    """The future of one session request, keyed on ``(client, seq)``.

    Unlike the protocol-level :class:`~repro.api.deployment.RequestHandle`
    (keyed on ``(origin, seq)``, cancelled when its origin fails), this
    handle's identity is origin-independent: when the origin server fails
    before acknowledging, the request is resubmitted through a surviving
    server under the same ``(client, seq)`` and the handle stays pending.
    It resolves at the first A-delivery whose unpacked batch contains the
    entry, and cancels only when no server of the owning group survives.
    """

    def __init__(self, client: "Client", session: "ClientSession",
                 seq: int, data: Any, nbytes: int, *,
                 routing_key: Optional[Hashable] = None,
                 noop: bool = False) -> None:
        self._client = client
        self.session = session
        self.seq = seq
        self.data = data
        self.nbytes = nbytes
        self.routing_key = routing_key
        self.noop = noop
        #: owning shard, computed once at admission (key→shard routing is
        #: static; only the origin *within* the shard depends on liveness).
        #: None on single-group targets.
        self.shard_hint: Optional[int] = None
        #: submission attempts (1 on first flush; +1 per failover resubmit)
        self.attempts = 0
        #: origin server the latest attempt entered at (None while buffered)
        self.origin: Optional[int] = None
        #: shard of the latest attempt (service targets; None on a group)
        self.shard: Optional[int] = None
        self._event: Optional[DeliveryEvent] = None
        self._cancelled: Optional[str] = None
        self._callbacks: list[Callable[["ClientRequestHandle"], None]] = []

    # -- identity ------------------------------------------------------- #
    @property
    def client_id(self) -> str:
        return self.session.client_id

    @property
    def key(self) -> tuple[str, int]:
        """The globally unique, failover-stable ``(client, seq)`` id."""
        return (self.session.client_id, self.seq)

    # -- state ---------------------------------------------------------- #
    @property
    def done(self) -> bool:
        return self._event is not None

    @property
    def cancelled(self) -> bool:
        return self._cancelled is not None

    @property
    def round(self) -> Optional[int]:
        return self._event.round if self._event is not None else None

    @property
    def delivery(self) -> Optional[DeliveryEvent]:
        return self._event

    def add_done_callback(
            self, callback: Callable[["ClientRequestHandle"], None]) -> None:
        if self._event is not None:
            callback(self)
        else:
            self._callbacks.append(callback)

    def result(self, timeout: Optional[float] = None) -> DeliveryEvent:
        """Block until the request is agreed; drives the deployment (and
        with it the per-round flush) forward.  Raises
        :class:`~repro.api.deployment.RequestCancelled` when the owning
        group has no surviving server, :class:`TimeoutError` when the
        deadline expires or no progress is possible."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while self._event is None and self._cancelled is None:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"request {self.key} not agreed "
                                       f"within {timeout}s")
            if not self._client._drive_one_round(timeout=remaining):
                break
        if self._cancelled is not None:
            raise RequestCancelled(self._cancelled)
        if self._event is None:
            raise TimeoutError(f"request {self.key} not agreed "
                               f"(no further progress)")
        return self._event

    def value(self, pid: Optional[int] = None) -> Any:
        """The state machine's ``apply`` output for this request at
        replica *pid* (requires a replicated state machine on the route;
        call after :meth:`result`)."""
        rsm = self._client._rsm_for(self.shard, self.routing_key)
        return rsm.client_result(self.client_id, self.seq, pid)

    # -- client plumbing ------------------------------------------------ #
    def _resolve(self, event: DeliveryEvent) -> None:
        if self._event is not None or self._cancelled is not None:
            return
        self._event = event
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _cancel(self, reason: str) -> None:
        if self._event is None and self._cancelled is None:
            self._cancelled = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (f"round={self.round}" if self.done
                 else "cancelled" if self.cancelled
                 else f"inflight@{self.origin}" if self.attempts
                 else "buffered")
        return f"<ClientRequestHandle {self.key} {state}>"


class ClientSession:
    """One logical client multiplexed onto the deployment.

    Created via :meth:`Client.session`; holds the client identity, the
    per-session sequence counter, and the buffer of not-yet-flushed
    requests.  On a :class:`~repro.api.service.ShardedService` target every
    submission carries a *key* and routes through the partitioner; on a
    plain :class:`~repro.api.deployment.Deployment` the session is pinned
    to an origin server (chosen by client-id hash unless given), and moves
    to a surviving server if that origin fails.
    """

    def __init__(self, client: "Client", client_id: str, *,
                 origin: Optional[int] = None) -> None:
        self.client = client
        self.client_id = client_id
        #: preferred origin server (deployment targets; reassigned on
        #: failover)
        self.origin = origin
        self._next_seq = 0
        self._buffer: list[ClientRequestHandle] = []
        #: requests resubmitted after an origin failure
        self.resubmissions = 0

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Requests buffered, not yet packed into a round."""
        return len(self._buffer)

    @property
    def outstanding(self) -> int:
        """Requests submitted and not yet agreed (buffered + in flight)."""
        return self.pending + sum(
            1 for h in self.client._inflight.values() if h.session is self)

    def submit(self, data: Any, *, key: Optional[Hashable] = None,
               nbytes: Optional[int] = None) -> ClientRequestHandle:
        """Buffer one request; it is packed into the next round's batch
        message (or an explicit :meth:`flush`).  *key* is required on
        sharded-service targets (it picks the owning group via the
        partitioner) and ignored for routing on single-group targets.
        Applies the client's admission control."""
        return self.client._admit(self, data, key=key,
                                  nbytes=nbytes, noop=False)

    def read(self, key: Hashable, *, consistency: str = "agreed",
             timeout: Optional[float] = None,
             pid: Optional[int] = None) -> Any:
        """Read *key* from the replicated state machine on the key's route.

        ``consistency="agreed"``
            Linearisable: flushes the session's buffer and rides a no-op
            entry through an agreement round — when that round is
            A-delivered, every write agreed before it (including this
            session's own) is applied; the value is then read from the
            replica.  Costs one round; returns after it completes.
        ``consistency="local"``
            The replica's current snapshot value — no round, no ordering
            guarantee beyond what the replica already applied (the
            paper's locally answered queries).

        Requires a replicated state machine: the service's per-shard
        machines, or the ``rsm=`` given to :class:`Client`.
        """
        if consistency == "local":
            rsm = self.client._rsm_for(None, key)
            read_pid = pid if pid is not None else self._local_read_pid()
            return rsm.read_local(key, pid=read_pid)
        if consistency != "agreed":
            raise ValueError(f"unknown consistency {consistency!r}; "
                             f"expected 'agreed' or 'local'")
        self.client._rsm_for(None, key)   # fail fast before the round
        barrier = self.client._admit(self, None, key=key,
                                     nbytes=1, noop=True)
        barrier.result(timeout)
        rsm = self.client._rsm_for(barrier.shard, key)
        return rsm.read_local(key, pid=pid)

    def _local_read_pid(self) -> Optional[int]:
        """Replica consulted by a local read: the session's origin where
        it is pinned and alive, else the RSM default (lowest alive)."""
        if (self.origin is not None and not self.client._is_service
                and self.origin in self.client.target.alive_members):
            return self.origin
        return None

    def flush(self) -> None:
        """Pack and submit this client's buffered requests now (all
        sessions of the owning :class:`Client` — batches are per origin
        server, shared across sessions)."""
        self.client.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClientSession {self.client_id!r} origin={self.origin} "
                f"pending={self.pending}>")


@dataclass
class _Envelope:
    """Bookkeeping for one submitted batch message: the underlying
    protocol handle plus the client entries it carries."""

    handle: Any                       # RequestHandle (duck-typed .cancelled)
    entries: list[ClientRequestHandle] = field(default_factory=list)
    shard: Optional[int] = None
    origin: int = 0


class Client:
    """One batching / flow-control / failover domain over a deployment.

    Parameters
    ----------
    target:
        A :class:`~repro.api.deployment.Deployment` (single group) or a
        :class:`~repro.api.service.ShardedService` (keyed multi-group).
    max_batch_requests / max_batch_bytes:
        Per-origin, per-round packing caps (§5: a practical deployment
        "would bound the message size"); excess stays buffered for the
        next round.  None = unbounded.
    max_in_flight:
        Admission-control budget: the maximum buffered-plus-unacknowledged
        requests across all sessions.  None = unbounded.
    admission:
        At the budget: ``"block"`` drives rounds until capacity frees,
        ``"reject"`` raises :class:`Overloaded` immediately.
    rsm:
        The :class:`~repro.api.state_machine.ReplicatedStateMachine` reads
        resolve against (single-group targets; sharded services use their
        own per-shard machines).
    default_nbytes:
        Wire size accounted per request when ``submit`` gets no explicit
        ``nbytes``.
    """

    def __init__(self, target: Union[Deployment, ShardedService], *,
                 max_batch_requests: Optional[int] = None,
                 max_batch_bytes: Optional[int] = None,
                 max_in_flight: Optional[int] = None,
                 admission: str = "block",
                 rsm: Optional[ReplicatedStateMachine] = None,
                 default_nbytes: int = 8) -> None:
        if max_batch_requests is not None and max_batch_requests < 1:
            raise ValueError("max_batch_requests must be positive")
        if max_batch_bytes is not None and max_batch_bytes < 1:
            raise ValueError("max_batch_bytes must be positive")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        if admission not in ("block", "reject"):
            raise ValueError(f"unknown admission policy {admission!r}; "
                             f"expected 'block' or 'reject'")
        self.target = target
        self.max_batch_requests = max_batch_requests
        self.max_batch_bytes = max_batch_bytes
        self.max_in_flight = max_in_flight
        self.admission = admission
        self.default_nbytes = default_nbytes
        self._is_service = isinstance(target, ShardedService)
        self._rsm = rsm
        self._sessions: list[ClientSession] = []
        self._session_ids: set[str] = set()
        self._inflight: dict[tuple[str, int], ClientRequestHandle] = {}
        self._envelopes: list[_Envelope] = []
        self._delivered_rounds = 0
        #: counters: batch messages submitted / entries packed / entries
        #: resubmitted after an origin failure
        self.batches_flushed = 0
        self.requests_flushed = 0
        self.resubmitted = 0
        # One flush + one resolver subscription per group: the round-start
        # hook packs that group's buffered entries (the §5 boundary), the
        # delivery stream resolves handles from the unpacked batches.
        for shard, group in self._group_list():
            group.on_round_start(
                lambda shard=shard: self._flush_group(shard))
            group.on_deliver(
                lambda event, shard=shard: self._on_deliver(shard, event))

    # ------------------------------------------------------------------ #
    # Target plumbing
    # ------------------------------------------------------------------ #
    def _group_list(self) -> list[tuple[Optional[int], Deployment]]:
        if self._is_service:
            return list(enumerate(self.target.groups))
        return [(None, self.target)]

    def _rsm_for(self, shard: Optional[int],
                 key: Optional[Hashable]) -> ReplicatedStateMachine:
        """The replicated state machine reads and result look-ups resolve
        against: the service's per-shard machine (routing *key* when the
        shard is not yet known), or the client's ``rsm=``."""
        if self._is_service:
            if shard is None:
                if key is None:
                    raise ValueError("a sharded-service read needs a key")
                shard = self.target.shard_of(key)
            rsm = self.target.machines.get(shard)
            if rsm is None:
                raise ValueError(
                    f"shard {shard} has no state machine; construct the "
                    f"ShardedService with state_machine= to enable reads")
            return rsm
        if self._rsm is None:
            raise ValueError("no state machine configured; pass rsm= to "
                             "Client to enable reads and value look-ups")
        return self._rsm

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def session(self, client_id: Optional[str] = None, *,
                origin: Optional[int] = None) -> ClientSession:
        """Open a logical client session.

        *client_id* defaults to ``"c<n>"`` in creation order (stable
        across runs and backends — cross-backend workloads depend on it).
        *origin* pins a single-group session to a server; by default the
        origin is chosen by client-id hash over the alive members.
        Sharded-service sessions take no origin — every submission routes
        by key through the partitioner.
        """
        if client_id is None:
            client_id = f"c{len(self._sessions)}"
        # Uniqueness must hold across every Client on the same target:
        # handle resolution and RSM dedup key on the global (client, seq),
        # so two in-flight sessions sharing an id would cross-resolve each
        # other's requests and the dedup table would drop real writes.
        registry = getattr(self.target, "_ingress_session_ids", None)
        if registry is None:
            registry = set()
            self.target._ingress_session_ids = registry
        if client_id in registry:
            raise ValueError(
                f"client id {client_id!r} already in use on this "
                f"deployment (session ids must be unique per target, "
                f"across all Client instances — name your sessions)")
        if origin is not None:
            if self._is_service:
                raise ValueError("sharded-service sessions route by key; "
                                 "origin= is only for single-group targets")
            if origin not in self.target.alive_members:
                raise ValueError(f"server {origin} is not an alive member")
        elif not self._is_service:
            origin = self._hash_origin(client_id)
        session = ClientSession(self, client_id, origin=origin)
        self._sessions.append(session)
        self._session_ids.add(client_id)
        registry.add(client_id)
        return session

    def _hash_origin(self, client_id: str) -> int:
        alive = self.target.alive_members
        if not alive:
            raise ValueError("no alive member to pin the session to")
        return alive[stable_key_hash(client_id) % len(alive)]

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Requests counted against the budget: buffered + submitted but
        not yet agreed."""
        return len(self._inflight) + sum(
            len(s._buffer) for s in self._sessions)

    def _admit(self, session: ClientSession, data: Any, *,
               key: Optional[Hashable], nbytes: Optional[int],
               noop: bool) -> ClientRequestHandle:
        if self._is_service and key is None:
            raise ValueError("sharded-service submissions need a key "
                             "(it picks the owning group)")
        if self.max_in_flight is not None:
            while self.in_flight >= self.max_in_flight:
                if self.admission == "reject":
                    raise Overloaded(
                        f"client budget exhausted: {self.in_flight} "
                        f"in flight >= max_in_flight="
                        f"{self.max_in_flight}")
                if not self._drive_one_round():
                    raise Overloaded(
                        f"client budget exhausted ({self.in_flight} in "
                        f"flight) and driving a round freed no capacity")
        handle = ClientRequestHandle(
            self, session, session._next_seq, data,
            self.default_nbytes if nbytes is None else nbytes,
            routing_key=key, noop=noop)
        if self._is_service:
            handle.shard_hint = self.target.shard_of(key)
        session._next_seq += 1
        session._buffer.append(handle)
        return handle

    def _drive_one_round(self, timeout: Optional[float] = None) -> bool:
        """Advance the target by one round; True when anything progressed
        (a round delivered or the budget freed) — the backbone of blocking
        ``submit`` and ``handle.result``."""
        before_rounds = self._delivered_rounds
        before_flight = self.in_flight
        kwargs = {} if timeout is None else {"timeout": timeout}
        self.run_rounds(1, **kwargs)
        return (self._delivered_rounds > before_rounds
                or self.in_flight < before_flight)

    # ------------------------------------------------------------------ #
    # Batching and flushing
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Pack and submit every buffered request now, one batch message
        per origin server (the per-round hook does this automatically at
        every round boundary; an explicit flush is only needed to push
        entries into a round someone else is about to drive)."""
        for shard, _group in self._group_list():
            self._flush_group(shard)

    def _flush_group(self, shard: Optional[int]) -> None:
        """Pack the buffered entries routed to group *shard* into one
        envelope per origin server and submit them, honouring the
        per-origin packing caps (excess stays buffered)."""
        self._check_failover()
        # Route every buffered entry of this group; per-origin accumulation
        # preserves session creation order, then per-session seq order.
        # A cap closes the origin for the rest of the scan: skipping only
        # the oversize entry and packing a later, smaller one would invert
        # the per-session submission order in the agreed log.
        per_origin: dict[int, list[ClientRequestHandle]] = {}
        per_origin_bytes: dict[int, int] = {}
        closed: set[int] = set()
        taken: set[tuple[str, int]] = set()
        for session in self._sessions:
            for handle in session._buffer:
                if handle.shard_hint != shard:
                    continue
                route = self._route_of(handle)
                if route is None:
                    continue         # cancelled (no surviving server)
                _r_shard, origin = route
                if origin in closed:
                    continue
                chosen = per_origin.setdefault(origin, [])
                if (self.max_batch_requests is not None
                        and len(chosen) >= self.max_batch_requests):
                    closed.add(origin)
                    continue
                nbytes = per_origin_bytes.get(origin, 0)
                if (self.max_batch_bytes is not None and chosen
                        and nbytes + handle.nbytes > self.max_batch_bytes):
                    closed.add(origin)
                    continue
                chosen.append(handle)
                per_origin_bytes[origin] = nbytes + handle.nbytes
                taken.add(handle.key)
        if taken:
            for session in self._sessions:
                if any(h.key in taken for h in session._buffer):
                    session._buffer = [h for h in session._buffer
                                       if h.key not in taken]
        for origin in sorted(per_origin):
            self._submit_envelope(shard, origin, per_origin[origin])

    def _route_of(self, handle: ClientRequestHandle) \
            -> Optional[tuple[Optional[int], int]]:
        """Current ``(shard, origin)`` route of a buffered entry; None
        when no server survives to accept it (the handle is cancelled)."""
        if self._is_service:
            try:
                origin = self.target.origin_in_shard(
                    handle.shard_hint, handle.routing_key)
            except ValueError as err:
                handle._cancel(
                    f"request {handle.key} cancelled: {err}")
                self._forget(handle)
                return None
            return handle.shard_hint, origin
        session = handle.session
        alive = self.target.alive_members
        if not alive:
            handle._cancel(f"request {handle.key} cancelled: no "
                           f"surviving server in the group")
            self._forget(handle)
            return None
        if session.origin not in alive:
            session.origin = self._hash_origin(session.client_id)
        return None, session.origin

    def _forget(self, handle: ClientRequestHandle) -> None:
        """Drop a cancelled handle from every buffer."""
        buffer = handle.session._buffer
        if handle in buffer:
            buffer.remove(handle)

    def _submit_envelope(self, shard: Optional[int], origin: int,
                         handles: list[ClientRequestHandle]) -> None:
        entries = [ClientRequest(client=h.client_id, seq=h.seq,
                                 data=h.data, nbytes=h.nbytes, noop=h.noop)
                   for h in handles]
        payload = encode_client_batch(entries)
        total = sum(e.nbytes for e in entries)
        group = (self.target.group(shard) if self._is_service
                 else self.target)
        try:
            under = group.submit(payload, at=origin, nbytes=total)
        except ValueError:
            # The origin died between routing and submission (liveness can
            # advance inside submit on the TCP backend).  The handles were
            # already taken out of their session buffers — put them back
            # at the front, in seq order, so the next flush reroutes them
            # through a surviving server instead of losing them.
            by_session: dict[str, list[ClientRequestHandle]] = {}
            for h in handles:
                by_session.setdefault(h.client_id, []).append(h)
            for session in self._sessions:
                front = by_session.get(session.client_id)
                if front:
                    front.sort(key=lambda h: h.seq)
                    session._buffer = front + session._buffer
            return
        for h in handles:
            h.attempts += 1
            h.origin = origin
            h.shard = shard
            self._inflight[h.key] = h
        self._envelopes.append(_Envelope(handle=under, entries=handles,
                                         shard=shard, origin=origin))
        self.batches_flushed += 1
        self.requests_flushed += len(handles)

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #
    def _check_failover(self) -> None:
        """Scan submitted envelopes: a cancelled underlying handle means
        the origin failed before acknowledging — its unresolved entries go
        back to the front of their sessions' buffers for transparent
        resubmission through a surviving server (the original copy may
        still have been agreed; the RSM dedup table keeps the retry
        exactly-once).  Fully resolved envelopes are garbage-collected."""
        still_open: list[_Envelope] = []
        requeue: list[ClientRequestHandle] = []
        for env in self._envelopes:
            if all(h.done or h.cancelled for h in env.entries):
                continue
            if env.handle.cancelled:
                for h in env.entries:
                    if not h.done and not h.cancelled:
                        self._inflight.pop(h.key, None)
                        requeue.append(h)
                continue
            still_open.append(env)
        self._envelopes = still_open
        if requeue:
            self.resubmitted += len(requeue)
            by_session: dict[str, list[ClientRequestHandle]] = {}
            for h in requeue:
                h.session.resubmissions += 1
                by_session.setdefault(h.client_id, []).append(h)
            for session in self._sessions:
                front = by_session.get(session.client_id)
                if front:
                    front.sort(key=lambda h: h.seq)
                    session._buffer = front + session._buffer

    # ------------------------------------------------------------------ #
    # Delivery resolution
    # ------------------------------------------------------------------ #
    def _on_deliver(self, shard: Optional[int],
                    event: DeliveryEvent) -> None:
        self._delivered_rounds += 1
        if not self._inflight:
            return
        for _origin, batch in event.messages:
            for request in batch.requests:
                if not is_client_batch(request.data):
                    continue
                for entry in decode_client_batch(request.data):
                    handle = self._inflight.pop(entry.key, None)
                    if handle is not None:
                        handle._resolve(event)

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def run_rounds(self, k: int, *, timeout: float = 30.0):
        """Advance the target *k* rounds; each round boundary packs and
        submits the sessions' buffers first (the round-start hook).
        Returns the target's delivery events."""
        return self.target.run_rounds(k, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Client target={type(self.target).__name__} "
                f"sessions={len(self._sessions)} "
                f"in_flight={self.in_flight}>")
