"""Deployment adapter over the asyncio/TCP runtime.

:class:`TcpDeployment` wraps :class:`~repro.runtime.cluster.LocalCluster`
behind the transport-agnostic :class:`~repro.api.deployment.Deployment`
vocabulary.  The adapter **owns a private asyncio event loop** and drives it
inside the blocking facade calls, so a plain synchronous scenario script
runs unmodified against real sockets; async callers can additionally await
a request handle's :meth:`TcpDeployment.future_of`.

Ports are kernel-assigned (bind-to-port-0, published before any dial), so
any number of deployments can coexist in one process.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Coroutine, Optional, TypeVar, Union

from ..core.batching import Request
from ..core.config import AllConcurConfig
from ..graphs.digraph import Digraph
from ..runtime.cluster import LocalCluster
from ..runtime.node import DeliveredRound
from ..runtime.proc import ProcessCluster
from .deployment import (
    Deployment,
    DeliveryEvent,
    RequestCancelled,
    RequestHandle,
)

__all__ = ["TcpDeployment"]

_T = TypeVar("_T")


class TcpDeployment(Deployment):
    """An AllConcur deployment over localhost TCP sockets.

    ``runtime`` selects where the servers live: ``"inproc"`` (default)
    hosts every node in this process's private event loop
    (:class:`~repro.runtime.cluster.LocalCluster`); ``"process"`` gives
    each node its own OS process and event loop
    (:class:`~repro.runtime.proc.ProcessCluster`).  Both expose the same
    driving surface, so everything layered on the facade — sessions,
    shards, replicated state machines — runs unchanged on either.

    ``codec`` selects the wire image (``"binary"`` default, ``"json"``
    the differential oracle — see :mod:`repro.runtime.wire`).
    """

    name = "tcp"

    def __init__(self, graph: Digraph, *,
                 config: Optional[AllConcurConfig] = None,
                 host: str = "127.0.0.1",
                 heartbeat_period: float = 0.05,
                 heartbeat_timeout: float = 0.5,
                 enable_failure_detector: bool = False,
                 namespace: str = "",
                 runtime: str = "inproc",
                 codec: str = "binary",
                 mp_context: Optional[str] = None) -> None:
        super().__init__()
        self.cluster: Union[LocalCluster, ProcessCluster]
        if runtime == "inproc":
            self.cluster = LocalCluster(
                graph, host=host, config=config,
                heartbeat_period=heartbeat_period,
                heartbeat_timeout=heartbeat_timeout,
                enable_failure_detector=enable_failure_detector,
                namespace=namespace, codec=codec)
        elif runtime == "process":
            self.cluster = ProcessCluster(
                graph, host=host, config=config,
                heartbeat_period=heartbeat_period,
                heartbeat_timeout=heartbeat_timeout,
                enable_failure_detector=enable_failure_detector,
                namespace=namespace, codec=codec, mp_context=mp_context)
        else:
            raise ValueError(f"unknown runtime {runtime!r} "
                             f"(expected 'inproc' or 'process')")
        self.runtime = runtime
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # keyed by handle.key: (int, int) for protocol handles,
        # (str, int) for client ingress handles — the spaces never collide
        self._futures: dict[tuple[Any, int],
                            "asyncio.Future[DeliveryEvent]"] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def members(self) -> tuple[int, ...]:
        return self.cluster.members

    @property
    def alive_members(self) -> tuple[int, ...]:
        return self.cluster.alive_members

    def endpoints(self) -> dict[int, tuple[str, int]]:
        """Published ``pid -> (host, port)`` listener addresses (kernel
        ports become visible after :meth:`start`) — each deployment is
        its own disjoint port space."""
        return self.cluster.endpoints()

    def _run(self, coro: Coroutine[Any, Any, _T]) -> _T:
        assert self._loop is not None, "deployment not started"
        return self._loop.run_until_complete(coro)

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _do_start(self) -> None:
        # One-shot lifecycle: a stopped node set cannot be revived (the
        # RuntimeNodes' stop events and peer connections are torn down), so
        # a restart would silently hang — fail loudly instead.
        if self._closed:
            raise RuntimeError("TcpDeployment cannot be restarted after "
                               "stop(); create a new deployment")
        self._loop = asyncio.new_event_loop()
        self._run(self.cluster.start())
        for pid, node in self.cluster.nodes.items():
            node.on_deliver(
                lambda rec, pid=pid: self._on_node_deliver(pid, rec))

    def _on_node_deliver(self, pid: int, record: DeliveredRound) -> None:
        # the TCP runtime numbers rounds continuously: epoch stays 0
        self._observe(pid, record.round, record.messages, record.removed)

    def _do_stop(self) -> None:
        self._closed = True
        loop = self._loop
        assert loop is not None, "deployment not started"
        self._run(self.cluster.stop())
        # let transport connection_lost callbacks run before the loop dies
        self._run(asyncio.sleep(0.01))
        self._run(loop.shutdown_asyncgens())
        loop.close()
        self._loop = None

    def _next_seq(self, at: int) -> int:
        # one sequencer — the cluster's — so facade submissions and direct
        # LocalCluster.submit calls never collide on an (origin, seq) key
        return self.cluster.next_seq(at)

    def _do_submit(self, request: Request) -> None:
        self.start()
        self._run(self.cluster.submit_request(request))

    def _drive_until_done(self, handle: RequestHandle,
                          timeout: Optional[float]) -> None:
        deadline = time.monotonic() + (30.0 if timeout is None else timeout)
        while not handle.done and not handle.cancelled:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            try:
                self.run_rounds(1, timeout=remaining)
            except TimeoutError:
                return

    # ------------------------------------------------------------------ #
    # The unified vocabulary
    # ------------------------------------------------------------------ #
    def run_rounds(self, k: int, *,
                   timeout: float = 30.0) -> list[DeliveryEvent]:
        """Drive *k* rounds to completion at every live node (wall-clock
        *timeout* per awaited round).

        With round-start subscribers registered (the client ingress
        layer's per-round session flush), rounds are driven one at a time
        so every boundary fires its hook before the next broadcast; the
        hook-free path keeps the single ``cluster.run_rounds(k)`` call.
        """
        self.start()
        mark = len(self._log)
        if self._round_start_subscribers:
            for _ in range(k):
                self._fire_round_start()
                self._run(self.cluster.run_rounds(1, timeout=timeout))
        else:
            self._run(self.cluster.run_rounds(k, timeout=timeout))
        return self._log[mark:]

    def fail(self, pid: int) -> None:
        """Fail-stop server *pid*: its node is torn down and every monitor
        is notified deterministically (no dependence on heartbeat timing);
        pending handles submitted at it are cancelled."""
        self.start()
        self._run(self.cluster.fail(pid))
        self._cancel_handles_at(pid)
        for key, future in self._futures.items():
            if key[0] == pid and not future.done():
                future.set_exception(RequestCancelled(
                    f"request {key} cancelled: origin {pid} failed"))

    def check_agreement(self) -> bool:
        return self.cluster.agreement_holds()

    # ------------------------------------------------------------------ #
    # Async integration
    # ------------------------------------------------------------------ #
    def future_of(self, handle: Any) -> "asyncio.Future[DeliveryEvent]":
        """An :class:`asyncio.Future` (on the deployment's loop) that
        resolves with the handle's :class:`DeliveryEvent` — the awaitable
        face of the request lifecycle for async callers.

        Accepts protocol-level :class:`RequestHandle`\\ s and client
        ingress handles alike (duck-typed on ``add_done_callback`` /
        ``add_cancel_callback``); their key spaces never collide — client
        keys are ``(str, int)``, protocol keys ``(int, int)`` — so one
        registry serves both.  A client handle's future survives origin
        failover (the handle only cancels when the whole group is gone);
        cancellation surfaces as :class:`RequestCancelled`."""
        self.start()
        existing = self._futures.get(handle.key)
        if existing is not None:
            return existing
        loop = self._loop
        assert loop is not None, "deployment not started"
        future: "asyncio.Future[DeliveryEvent]" = loop.create_future()
        self._futures[handle.key] = future

        def fulfil(resolved: Any) -> None:
            if not future.done():
                future.set_result(resolved.delivery)

        def abort(cancelled: Any) -> None:
            if not future.done():
                future.set_exception(RequestCancelled(
                    f"request {cancelled.key} cancelled"))

        handle.add_done_callback(fulfil)
        handle.add_cancel_callback(abort)
        return future
