"""repro — a full Python reproduction of *AllConcur: Leaderless Concurrent
Atomic Broadcast* (Poke, Hoefler, Glass — HPDC 2017).

Subpackages
-----------
``repro.core``
    The AllConcur algorithm (Algorithm 1): sans-IO protocol core, tracking
    digraphs / early termination, round iteration, surviving-partition mode,
    plus bindings to the simulator.
``repro.graphs``
    Overlay digraphs: GS(n, d), binomial, de Bruijn; degree / diameter /
    connectivity / fault-diameter machinery and the reliability model.
``repro.sim``
    Deterministic discrete-event simulator with a LogP network model,
    fail-stop failure injection and heartbeat failure detectors.
``repro.baselines``
    Leader-based atomic broadcast (Libpaxos-style deployment) and unreliable
    all-to-all agreement (MPI_Allgather-style), for the paper's comparisons.
``repro.analysis``
    Closed-form LogP work/depth models, failure-detector accuracy, depth
    distribution and complexity formulas (§4).
``repro.workloads``
    Request generators for the paper's three application scenarios.
``repro.bench``
    Experiment harness regenerating every table and figure of §5.
``repro.runtime``
    A real asyncio/TCP deployment of the same protocol core.
``repro.api``
    The unified deployment API: a transport-agnostic facade (simulator or
    TCP behind one vocabulary), request futures and replicated state
    machines.

The subpackages are imported lazily on attribute access to keep
``import repro`` cheap.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

_SUBPACKAGES = (
    "analysis",
    "api",
    "baselines",
    "bench",
    "core",
    "graphs",
    "sim",
    "workloads",
    "runtime",
)

__all__ = list(_SUBPACKAGES) + ["__version__"]


def __getattr__(name: str) -> Any:
    if name in _SUBPACKAGES:
        module = import_module(f"{__name__}.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
