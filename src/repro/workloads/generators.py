"""Workload generators for the paper's three application scenarios (§1.1, §5).

* **Travel reservation systems** (Figure 8): each server generates 64-byte
  requests at a constant rate ``r`` (bounded by its query-answering rate).
* **Multiplayer video games** (Figure 9a): each server hosts one player who
  performs a bounded number of actions per minute (APM, 200 or 400); each
  action is a 40-byte state update.
* **Distributed exchanges** (Figure 9b): the whole system handles a global
  constant rate of 40-byte client orders, spread evenly over the servers.
* **Fixed batching factor** (Figure 10): every server A-broadcasts a
  fixed-size batch of 8-byte requests every round.

Request injection into the simulator is done with synthetic batches (counts
and bytes, not objects) so that multi-million-requests-per-second scenarios
stay simulable; the generators track fractional request accumulation so low
rates are represented exactly in expectation.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.cluster import SimCluster

__all__ = [
    "ConstantRateWorkload",
    "ApmWorkload",
    "GlobalRateWorkload",
    "FixedBatchWorkload",
    "KeyedWorkload",
]


@dataclass(frozen=True)
class ConstantRateWorkload:
    """Each server generates *rate_per_server* requests/s of
    *request_nbytes* bytes (the travel-reservation scenario)."""

    rate_per_server: float
    request_nbytes: int = 64
    #: period of the injection events; smaller = finer-grained arrival times
    injection_period: float = 50e-6

    def install(self, cluster: SimCluster, *, duration: float) -> None:
        """Install periodic request injection on every member for
        *duration* seconds of simulated time."""
        if self.rate_per_server < 0:
            raise ValueError("rate must be non-negative")
        if self.rate_per_server == 0:
            return
        for pid in cluster.members:
            _install_rate(cluster, pid, self.rate_per_server,
                          self.request_nbytes, self.injection_period,
                          duration)

    def per_round_batch(self, round_time: float) -> int:
        """Expected number of requests accumulated during one round."""
        return int(self.rate_per_server * round_time)


@dataclass(frozen=True)
class ApmWorkload:
    """Multiplayer-game workload: one player per server performing *apm*
    actions per minute, 40-byte updates (Figure 9a)."""

    apm: float = 200.0
    request_nbytes: int = 40
    injection_period: float = 1e-3

    @property
    def rate_per_server(self) -> float:
        return self.apm / 60.0

    def install(self, cluster: SimCluster, *, duration: float) -> None:
        ConstantRateWorkload(
            rate_per_server=self.rate_per_server,
            request_nbytes=self.request_nbytes,
            injection_period=self.injection_period,
        ).install(cluster, duration=duration)


@dataclass(frozen=True)
class GlobalRateWorkload:
    """Exchange workload: the system as a whole receives *total_rate*
    requests/s of 40-byte orders, spread evenly (Figure 9b)."""

    total_rate: float
    request_nbytes: int = 40
    injection_period: float = 50e-6

    def per_server_rate(self, n: int) -> float:
        if n < 1:
            raise ValueError("n must be positive")
        return self.total_rate / n

    def install(self, cluster: SimCluster, *, duration: float) -> None:
        rate = self.per_server_rate(len(cluster.members))
        ConstantRateWorkload(
            rate_per_server=rate,
            request_nbytes=self.request_nbytes,
            injection_period=self.injection_period,
        ).install(cluster, duration=duration)


@dataclass(frozen=True)
class FixedBatchWorkload:
    """Every server A-broadcasts exactly *batch_requests* requests of
    *request_nbytes* bytes per round (the batching-factor sweep, Figure 10)."""

    batch_requests: int
    request_nbytes: int = 8

    @property
    def message_nbytes(self) -> int:
        return self.batch_requests * self.request_nbytes

    def install(self, cluster: SimCluster, *, rounds: int) -> None:
        """Pre-load every server's queue so that the next *rounds* rounds
        each carry exactly one full batch (plus slack for the warmup and
        for every concurrently in-flight round of the pipeline window)."""
        if rounds < 1:
            raise ValueError("rounds must be positive")
        slack = 2 + cluster.config.pipeline_depth
        for pid in cluster.members:
            server = cluster.server(pid)
            server.queue.max_batch = self.batch_requests
            server.submit_synthetic(self.batch_requests * (rounds + slack),
                                    self.request_nbytes)

    def payload_fn(self):
        """Payload factory for the baseline clusters (leader / allgather)."""
        from ..core.batching import Batch

        batch = Batch.synthetic(self.batch_requests, self.request_nbytes)
        return lambda pid: batch


@dataclass(frozen=True)
class KeyedWorkload:
    """Seeded, deterministic stream of keyed requests for sharded services.

    Where the figure workloads above model *rates* (anonymous synthetic
    requests), a sharded service is exercised by *keys*: the partitioner
    routes each key to its owning group, so the key distribution decides
    the load balance across shards.  Two standard distributions:

    * ``"uniform"`` — every key equally likely (the balanced baseline of
      the shard-scaling sweep, :mod:`repro.bench.shards`);
    * ``"zipf"`` — key of rank r drawn with probability ∝ 1/r^s (the
      classic skewed-popularity model; hot keys concentrate load on the
      shards that own them).

    Instances are frozen; every ``keys()`` / ``requests()`` call replays
    the identical stream from *seed* (the cross-backend equality tests
    rely on this — the same stream is fed to the sim and the TCP
    service).
    """

    num_keys: int = 1024
    distribution: str = "uniform"
    #: Zipf exponent s (only used when distribution == "zipf")
    zipf_s: float = 1.2
    seed: int = 1
    key_prefix: str = "k"

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ValueError("num_keys must be positive")
        if self.distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown distribution "
                             f"{self.distribution!r}; "
                             f"expected 'uniform' or 'zipf'")
        if self.distribution == "zipf" and self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")

    def _zipf_cdf(self) -> list[float]:
        weights = [1.0 / (rank ** self.zipf_s)
                   for rank in range(1, self.num_keys + 1)]
        total = 0.0
        cdf = []
        for w in weights:
            total += w
            cdf.append(total)
        return [c / total for c in cdf]

    def keys(self, count: int) -> Iterator[str]:
        """Yield *count* keys (``"{prefix}{index}"``); the stream is a
        pure function of the workload parameters."""
        if count < 0:
            # validate here, not in the generator body, so the error
            # surfaces at the call site rather than on first iteration
            raise ValueError("count must be non-negative")
        return self._keys(count)

    def _keys(self, count: int) -> Iterator[str]:
        rng = random.Random(self.seed)
        if self.distribution == "uniform":
            for _ in range(count):
                yield f"{self.key_prefix}{rng.randrange(self.num_keys)}"
        else:
            cdf = self._zipf_cdf()
            for _ in range(count):
                idx = bisect.bisect_left(cdf, rng.random())
                yield f"{self.key_prefix}{idx}"

    def requests(self, count: int) -> Iterator[tuple[str, tuple]]:
        """Yield *count* ``(key, command)`` pairs where the command is a
        :class:`~repro.api.ReplicatedKVStore` write (``("set", key, i)``
        with the stream position as the value) — the ready-to-submit form
        used by the shard sweep and the sharded-kv example."""
        for i, key in enumerate(self.keys(count)):
            yield key, ("set", key, i)


def _install_rate(cluster: SimCluster, pid: int, rate: float,
                  request_nbytes: int, period: float, duration: float) -> None:
    """Schedule periodic synthetic-request injection for one server.

    Fractional requests are carried over between injections so the long-run
    rate is exact even when ``rate * period < 1``.
    """
    state = {"carry": 0.0}

    sim = cluster.sim
    per_tick = rate * period

    def inject() -> None:
        now = sim.now
        if now > duration:
            return
        amount = per_tick + state["carry"]
        whole = int(amount)
        state["carry"] = amount - whole
        if whole > 0:
            # flattened node.submit_synthetic (injection ticks outnumber
            # protocol messages at fine injection periods)
            node = cluster.nodes.get(pid)
            if node is not None and node._alive and not node.server.failed:
                node.server.queue.submit_synthetic(whole, request_nbytes)
        sim.post(now + period, inject)

    sim.post(sim.now + period, inject)
