"""Synthetic workload generators for the paper's application scenarios."""

from .generators import (
    ApmWorkload,
    ConstantRateWorkload,
    FixedBatchWorkload,
    GlobalRateWorkload,
)

__all__ = [
    "ConstantRateWorkload",
    "ApmWorkload",
    "GlobalRateWorkload",
    "FixedBatchWorkload",
]
