"""Synthetic workload generators for the paper's application scenarios,
plus closed-loop client populations over the ingress API."""

from .clients import ClosedLoopPopulation
from .generators import (
    ApmWorkload,
    ConstantRateWorkload,
    FixedBatchWorkload,
    GlobalRateWorkload,
    KeyedWorkload,
)

__all__ = [
    "ConstantRateWorkload",
    "ApmWorkload",
    "GlobalRateWorkload",
    "FixedBatchWorkload",
    "KeyedWorkload",
    "ClosedLoopPopulation",
]
