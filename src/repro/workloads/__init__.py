"""Synthetic workload generators for the paper's application scenarios."""

from .generators import (
    ApmWorkload,
    ConstantRateWorkload,
    FixedBatchWorkload,
    GlobalRateWorkload,
    KeyedWorkload,
)

__all__ = [
    "ConstantRateWorkload",
    "ApmWorkload",
    "GlobalRateWorkload",
    "FixedBatchWorkload",
    "KeyedWorkload",
]
