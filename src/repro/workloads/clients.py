"""Closed-loop client populations over the ingress API.

The figure workloads in :mod:`repro.workloads.generators` model open-loop
*rates* injected straight into server queues — right for the paper's
figures, wrong for exercising the client surface: a real population is a
set of logical clients that each keep a bounded number of requests
outstanding and only submit more as earlier ones are acknowledged (the
classic closed-loop model, and exactly how §5 describes request inflow
being bounded for stability).

:class:`ClosedLoopPopulation` drives C :class:`~repro.api.client
.ClientSession`\\ s over one :class:`~repro.api.client.Client`:

* every client keeps up to ``window`` requests outstanding, topping the
  window up at each :meth:`step` (one agreement round per step);
* commands are seeded, deterministic KV writes — the same population
  replays the identical submission stream on any backend, which is what
  the cross-backend equality tests feed to sim and TCP;
* on a sharded-service target the keys route through the partitioner; on
  a single-group target sessions pin round-robin across the alive servers
  (so a population saturates every origin, not just one).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Union

from ..api.client import Client, ClientRequestHandle, ClientSession

__all__ = ["ClosedLoopPopulation"]


class ClosedLoopPopulation:
    """C logical clients in a closed loop: submit up to *window* each,
    run a round, refill from what resolved.

    Parameters
    ----------
    client:
        The :class:`~repro.api.client.Client` ingress domain to drive
        (its target may be a single group or a sharded service).
    num_clients:
        Population size (sessions are named ``"<prefix><i>"`` — stable
        across backends and runs).
    window:
        Outstanding-requests bound per client (1 = strict request/reply).
    num_keys:
        Keyspace size; client *i*'s j-th request writes key
        ``"<prefix><i>k<j mod num_keys>"`` — per-client keyspaces keep the
        stream deterministic without a shared RNG.
    request_nbytes:
        Wire size accounted per request.
    pin_origins:
        On single-group targets, pin session *i* to alive member
        ``i mod n`` (round-robin) instead of the client-id hash; ignored
        on service targets (keys route there).
    prefix:
        Session-name prefix (lets several populations share one client).
    record_latency:
        Record per-request latency at resolution (via done callbacks):
        wall-clock seconds into :attr:`latencies_s` and agreement rounds
        into :attr:`latencies_rounds` — the p50/p99 source for
        ``repro.bench.ingress``.  Off by default (one closure per request
        is measurable at C = 10^5).
    """

    def __init__(self, client: Client, num_clients: int, *,
                 window: int = 1, num_keys: int = 64,
                 request_nbytes: int = 8, pin_origins: bool = True,
                 prefix: str = "c", record_latency: bool = False) -> None:
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        if window < 1:
            raise ValueError("window must be positive")
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        self.client = client
        self.window = window
        self.num_keys = num_keys
        self.request_nbytes = request_nbytes
        self.sessions: list[ClientSession] = []
        is_service = client._is_service
        alive = None if is_service else client.target.alive_members
        for i in range(num_clients):
            origin = None
            if not is_service and pin_origins and alive:
                origin = alive[i % len(alive)]
            self.sessions.append(
                client.session(f"{prefix}{i}", origin=origin))
        self._outstanding: dict[str, list[ClientRequestHandle]] = {
            s.client_id: [] for s in self.sessions}
        self._sent: dict[str, int] = {s.client_id: 0 for s in self.sessions}
        #: totals across the population
        self.submitted = 0
        self.resolved = 0
        self.cancelled = 0
        self._record = record_latency
        #: per-request latency samples, appended at resolution
        self.latencies_s: list[float] = []
        self.latencies_rounds: list[int] = []

    # ------------------------------------------------------------------ #
    def _command(self, session: ClientSession, j: int) -> tuple[str, list]:
        key = f"{session.client_id}k{j % self.num_keys}"
        # a list command is already JSON-canonical, so the submit
        # boundary's canonical_payload takes its identity fast path (a
        # tuple would force a full json round-trip per request); the wire
        # image — and with it the agreed log — is identical either way
        return key, ["set", key, j]

    def top_up(self) -> int:
        """Refill every client's window to *window* outstanding requests;
        returns how many new requests were submitted."""
        new = 0
        for session in self.sessions:
            pending = self._outstanding[session.client_id]
            pending[:] = [h for h in pending
                          if not h.done and not h.cancelled]
            while len(pending) < self.window:
                j = self._sent[session.client_id]
                key, command = self._command(session, j)
                handle = session.submit(command, key=key,
                                        nbytes=self.request_nbytes)
                if self._record:
                    handle.add_done_callback(self._latency_probe())
                self._sent[session.client_id] = j + 1
                pending.append(handle)
                new += 1
        self.submitted += new
        return new

    def step(self, rounds: int = 1, *, timeout: float = 30.0) -> int:
        """One closed-loop iteration: top the windows up, then drive
        *rounds* agreement rounds (the per-round hook packs the
        submissions into per-origin batches).  Returns the number of
        requests that resolved during the step."""
        before = self.resolved
        self.top_up()
        self.client.run_rounds(rounds, timeout=timeout)
        self._collect()
        return self.resolved - before

    def run(self, steps: int, *, rounds_per_step: int = 1,
            timeout: float = 30.0) -> int:
        """Run *steps* closed-loop iterations; returns total resolved."""
        for _ in range(steps):
            self.step(rounds_per_step, timeout=timeout)
        return self.resolved

    def _collect(self) -> None:
        for session in self.sessions:
            pending = self._outstanding[session.client_id]
            still = []
            for h in pending:
                if h.done:
                    self.resolved += 1
                elif h.cancelled:
                    self.cancelled += 1
                else:
                    still.append(h)
            pending[:] = still

    def _latency_probe(self):
        """One done callback capturing the submit instant in wall clock
        and in delivered rounds; fires inside the client's delivery
        resolution."""
        t0 = perf_counter()
        r0 = self.client._delivered_rounds

        def note(_handle: ClientRequestHandle) -> None:
            self.latencies_s.append(perf_counter() - t0)
            self.latencies_rounds.append(self.client._delivered_rounds - r0)

        return note

    @property
    def outstanding(self) -> int:
        return sum(len(v) for v in self._outstanding.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClosedLoopPopulation clients={len(self.sessions)} "
                f"window={self.window} submitted={self.submitted} "
                f"resolved={self.resolved}>")
