"""Reliability model for AllConcur deployments (§4.2.2, §4.4, Figure 5).

The paper estimates the probability of a server failing over a period ``Δ``
with an exponential lifetime model, ``p_f = 1 - exp(-Δ / MTTF)``, and the
system reliability as the probability that fewer than ``k(G)`` servers fail:

    ρ_G = Σ_{i=0}^{k(G)-1}  C(n, i) · p_f^i · (1 - p_f)^{n-i}

Reliability is reported in "nines": ``-log10(1 - ρ_G)``.  The default
parameters follow the paper: Δ = 24 hours and MTTF ≈ 2 years (TSUBAME2.5
failure history).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "HOURS", "DAYS", "YEARS",
    "failure_probability",
    "reliability",
    "unreliability",
    "nines",
    "reliability_nines",
    "required_connectivity",
    "ReliabilityModel",
]

#: Time units expressed in seconds (the library's canonical time unit).
HOURS = 3600.0
DAYS = 24 * HOURS
YEARS = 365.25 * DAYS

#: Paper defaults (§4.4): reliability evaluated over 24 hours with a server
#: MTTF of about two years.
DEFAULT_PERIOD = 24 * HOURS
DEFAULT_MTTF = 2 * YEARS


def failure_probability(period: float = DEFAULT_PERIOD,
                        mttf: float = DEFAULT_MTTF) -> float:
    """``p_f = 1 - exp(-Δ/MTTF)``: probability that one server fails during
    the period ``Δ`` under an exponential lifetime model."""
    if period < 0:
        raise ValueError("period must be non-negative")
    if mttf <= 0:
        raise ValueError("MTTF must be positive")
    return -math.expm1(-period / mttf)


def _log_binom_pmf(n: int, i: int, p: float) -> float:
    """log of ``C(n, i) p^i (1-p)^(n-i)`` computed in log-space."""
    if p <= 0.0:
        return 0.0 if i == 0 else -math.inf
    if p >= 1.0:
        return 0.0 if i == n else -math.inf
    return (math.lgamma(n + 1) - math.lgamma(i + 1) - math.lgamma(n - i + 1)
            + i * math.log(p) + (n - i) * math.log1p(-p))


def unreliability(n: int, k: int, p_f: float) -> float:
    """``1 - ρ_G``: probability of at least ``k`` failures among ``n``
    servers, i.e. the probability that the deployment exceeds its fault
    tolerance.  Computed as an upper-tail binomial sum in log space, which
    stays accurate far below double-precision round-off of ``ρ_G`` itself.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    total = 0.0
    for i in range(k, n + 1):
        term = math.exp(_log_binom_pmf(n, i, p_f))
        total += term
        # terms decay geometrically once i >> n*p_f; stop when negligible
        if term < total * 1e-18 and i > n * p_f + 10:
            break
    return min(total, 1.0)


def reliability(n: int, k: int, p_f: float) -> float:
    """``ρ_G = P(fewer than k failures among n servers)``."""
    return 1.0 - unreliability(n, k, p_f)


def nines(rho: float) -> float:
    """Reliability expressed in "nines": ``-log10(1 - ρ)``.

    ``rho == 1`` maps to ``inf``.
    """
    if rho >= 1.0:
        return math.inf
    if rho < 0.0:
        raise ValueError("reliability must be in [0, 1]")
    return -math.log10(1.0 - rho)


def reliability_nines(n: int, k: int, p_f: float) -> float:
    """Nines of reliability for ``n`` servers with connectivity ``k``."""
    u = unreliability(n, k, p_f)
    if u <= 0.0:
        return math.inf
    return -math.log10(u)


def required_connectivity(n: int, target_nines: float,
                          p_f: float, *, k_max: int | None = None) -> int:
    """Smallest vertex-connectivity ``k`` such that the deployment of ``n``
    servers reaches *target_nines* nines of reliability.

    This is the quantity that drives the degree choice of Table 3 (for the
    optimally connected ``GS(n, d)`` digraphs, ``k == d``).
    """
    if n < 1:
        raise ValueError("n must be positive")
    limit = k_max if k_max is not None else n
    for k in range(1, limit + 1):
        if reliability_nines(n, k, p_f) >= target_nines:
            return k
    raise ValueError(
        f"no connectivity up to {limit} reaches {target_nines} nines "
        f"for n={n}, p_f={p_f}")


@dataclass(frozen=True)
class ReliabilityModel:
    """Convenience bundle of the paper's reliability parameters.

    Attributes
    ----------
    period:
        Evaluation window Δ in seconds (default 24 hours).
    mttf:
        Server mean time to failure in seconds (default 2 years).
    target_nines:
        Reliability target (default 6 — "6-nines", as in Table 3/Figure 5).
    """

    period: float = DEFAULT_PERIOD
    mttf: float = DEFAULT_MTTF
    target_nines: float = 6.0

    @property
    def p_f(self) -> float:
        """Per-server failure probability over the evaluation window."""
        return failure_probability(self.period, self.mttf)

    def reliability(self, n: int, k: int) -> float:
        """ρ_G for ``n`` servers and connectivity ``k``."""
        return reliability(n, k, self.p_f)

    def nines(self, n: int, k: int) -> float:
        """Reliability nines for ``n`` servers and connectivity ``k``."""
        return reliability_nines(n, k, self.p_f)

    def required_connectivity(self, n: int) -> int:
        """Minimum connectivity to reach the target for ``n`` servers."""
        return required_connectivity(n, self.target_nines, self.p_f)
