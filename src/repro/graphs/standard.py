"""Standard overlay topologies used as baselines and for ablations.

The paper compares its ``GS(n, d)`` overlay against the binomial graph
(:mod:`repro.graphs.binomial`) and mentions the binary hypercube (§4.4).  A
complete digraph is the overlay of the textbook reliable-broadcast algorithm
(§2.1) and of the MPI_Allgather-style unreliable baseline; rings and
star/leader topologies appear in the leader-based comparison (§4.5).
"""

from __future__ import annotations

from .digraph import Digraph

__all__ = [
    "complete_digraph",
    "ring_digraph",
    "bidirectional_ring",
    "binary_hypercube",
    "star_digraph",
    "random_regular_digraph",
]


def complete_digraph(n: int) -> Digraph:
    """The complete digraph ``K_n``: every ordered pair is an edge.

    This is the overlay used by the simple reliable-broadcast algorithm of
    §2.1 and by the unreliable all-to-all baseline.
    """
    if n < 1:
        raise ValueError("n must be positive")
    edges = ((u, v) for u in range(n) for v in range(n) if u != v)
    return Digraph(n, edges, name=f"K({n})")


def ring_digraph(n: int) -> Digraph:
    """A unidirectional ring: ``i -> (i+1) mod n``.  Degree 1, diameter n-1."""
    if n < 2:
        raise ValueError("n must be at least 2")
    return Digraph(n, ((i, (i + 1) % n) for i in range(n)), name=f"Ring({n})")


def bidirectional_ring(n: int) -> Digraph:
    """A bidirectional ring: degree 2, diameter ``floor(n/2)``."""
    if n < 3:
        raise ValueError("n must be at least 3")
    edges = []
    for i in range(n):
        edges.append((i, (i + 1) % n))
        edges.append((i, (i - 1) % n))
    return Digraph(n, edges, name=f"BiRing({n})")


def binary_hypercube(dim: int) -> Digraph:
    """The binary hypercube with ``2**dim`` vertices, each edge in both
    directions.  Degree = connectivity = ``dim``, diameter = ``dim``.

    The paper cites it (§4.4) as the classic topology that binomial graphs
    beat on (fault) diameter.
    """
    if dim < 1:
        raise ValueError("dimension must be at least 1")
    n = 1 << dim
    edges = []
    for v in range(n):
        for b in range(dim):
            edges.append((v, v ^ (1 << b)))
    return Digraph(n, edges, name=f"Hypercube({dim})")


def star_digraph(n: int, center: int = 0) -> Digraph:
    """A star: the *center* has edges to and from every other vertex.

    This is the communication pattern of the leader-based deployment of
    Figure 1a (every server talks only to the leader).
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    if not 0 <= center < n:
        raise ValueError("center out of range")
    edges = []
    for v in range(n):
        if v != center:
            edges.append((center, v))
            edges.append((v, center))
    return Digraph(n, edges, name=f"Star({n})")


def random_regular_digraph(n: int, d: int, *, seed: int = 0,
                           max_tries: int = 200) -> Digraph:
    """A random ``d``-regular digraph (every in- and out-degree exactly
    ``d``), built by superimposing ``d`` random permutations without fixed
    points or duplicate edges.

    Used for ablation benchmarks ("how much does the carefully constructed
    GS(n,d) overlay matter versus an arbitrary regular overlay?").
    """
    import random

    if d < 1 or d >= n:
        raise ValueError("need 1 <= d < n")
    rng = random.Random(seed)
    for _ in range(max_tries):
        succ: list[set[int]] = [set() for _ in range(n)]
        ok = True
        for _ in range(d):
            perm = list(range(n))
            placed = False
            for _attempt in range(50):
                rng.shuffle(perm)
                if all(perm[v] != v and perm[v] not in succ[v]
                       for v in range(n)):
                    placed = True
                    break
            if not placed:
                ok = False
                break
            for v in range(n):
                succ[v].add(perm[v])
        if ok:
            edges = [(u, v) for u in range(n) for v in succ[u]]
            return Digraph(n, edges, name=f"RandomRegular({n},{d})")
    raise RuntimeError(
        f"could not build a random {d}-regular digraph on {n} vertices")
